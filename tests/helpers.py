"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(
    loss_fn: Callable[[], float], array: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of ``loss_fn`` w.r.t. ``array`` in place."""
    grad = np.zeros(array.shape, dtype=np.float64)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = loss_fn()
        array[index] = original - eps
        minus = loss_fn()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Max abs error normalized by the numeric gradient's scale."""
    scale = np.abs(numeric).max()
    if scale == 0:
        return float(np.abs(analytic).max())
    return float(np.abs(analytic - numeric).max() / scale)


def linear_probe_loss(module, x: np.ndarray, probe: np.ndarray):
    """A linear loss ``sum(output * probe)`` — non-degenerate for every layer."""

    def loss() -> float:
        return float((module.forward(x) * probe).sum())

    return loss
