"""Unit + property tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestIm2col:
    def test_shapes(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols, out_h, out_w = F.im2col(x, kernel=3, stride=1, padding=1)
        assert (out_h, out_w) == (8, 8)
        assert cols.shape == (2, 3 * 9, 64)

    def test_stride_reduces_output(self):
        x = np.ones((1, 1, 9, 9), dtype=np.float32)
        _, out_h, out_w = F.im2col(x, kernel=3, stride=2, padding=0)
        assert (out_h, out_w) == (4, 4)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        cols, out_h, out_w = F.im2col(x, 3, 1, 0)
        gemm = (w.reshape(3, -1) @ cols[0]).reshape(3, out_h, out_w)
        naive = np.zeros_like(gemm)
        for o in range(3):
            for i in range(out_h):
                for j in range(out_w):
                    naive[o, i, j] = (x[0, :, i : i + 3, j : j + 3] * w[o]).sum()
        np.testing.assert_allclose(gemm, naive, rtol=1e-4, atol=1e-4)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float64)
        cols, _, _ = F.im2col(x, 3, 2, 1)
        y = rng.standard_normal(cols.shape)
        back = F.col2im(y, x.shape, 3, 2, 1)
        np.testing.assert_allclose((cols * y).sum(), (x * back).sum(), rtol=1e-9)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, kernel=5, stride=1, padding=0)


class TestActivationHelpers:
    def test_sigmoid_extremes_are_stable(self):
        out = F.sigmoid(np.array([-1e4, 0.0, 1e4], dtype=np.float32))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7)).astype(np.float32)
        np.testing.assert_allclose(F.softmax(x).sum(axis=-1), 1.0, rtol=1e-5)

    def test_softmax_shift_invariant(self):
        x = np.random.default_rng(0).standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100), rtol=1e-4)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(1).standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(
            F.log_softmax(x), np.log(F.softmax(x)), rtol=1e-4, atol=1e-6
        )

    def test_one_hot_round_trip(self):
        labels = np.array([0, 2, 1])
        encoded = F.one_hot(labels, 3)
        assert encoded.shape == (3, 3)
        np.testing.assert_array_equal(encoded.argmax(axis=1), labels)

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)


class TestAdaptivePooling:
    def test_identity_when_sizes_match(self):
        x = np.random.default_rng(0).standard_normal((1, 2, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(F.adaptive_avg_pool2d(x, (4, 4)), x)

    def test_global_case_equals_mean(self):
        x = np.random.default_rng(1).standard_normal((2, 3, 5, 7)).astype(np.float32)
        out = F.adaptive_avg_pool2d(x, (1, 1))
        np.testing.assert_allclose(out[:, :, 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)

    def test_upsampling_replicates(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        out = F.adaptive_avg_pool2d(x, (4, 4))
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(out[0, 0, :2, :2], x[0, 0, 0, 0])

    @given(
        in_size=st.integers(1, 16),
        out_size=st.integers(1, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_splits_cover_input_exactly(self, in_size, out_size):
        splits = F.adaptive_pool_splits(in_size, out_size)
        assert len(splits) == out_size
        assert splits[0][0] == 0
        assert splits[-1][1] == in_size
        for start, end in splits:
            assert end > start

    def test_backward_preserves_gradient_mass(self):
        """Average pooling backward distributes each grad unit exactly once."""
        rng = np.random.default_rng(3)
        grad_out = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        grad_in = F.adaptive_avg_pool2d_backward(grad_out, (1, 1, 7, 7))
        # Each output cell's gradient is spread with weights summing to 1.
        np.testing.assert_allclose(grad_in.sum(), grad_out.sum(), rtol=1e-5)


@given(
    batch=st.integers(1, 3),
    channels=st.integers(1, 4),
    size=st.integers(3, 9),
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
)
@settings(max_examples=40, deadline=None)
def test_im2col_col2im_adjoint_property(batch, channels, size, kernel, stride, padding):
    """Adjoint identity holds for arbitrary conv geometry."""
    if size + 2 * padding < kernel:
        return
    rng = np.random.default_rng(batch * 100 + size)
    x = rng.standard_normal((batch, channels, size, size))
    cols, _, _ = F.im2col(x, kernel, stride, padding)
    y = rng.standard_normal(cols.shape)
    back = F.col2im(y, x.shape, kernel, stride, padding)
    np.testing.assert_allclose((cols * y).sum(), (x * back).sum(), rtol=1e-7)
