"""The fold-pass pipeline: matching, equivalence, cache invalidation.

These tests exercise :mod:`repro.nn.passes` directly — plan shapes and
eligibility rules, per-fold numerical equivalence against the plain
layer-by-layer path on every registered backend, and the version-keyed
fold caches (invalidation after optimizer steps, ``load_state_dict``
and BN running-stat refreshes; weakref eviction of discarded models).
"""

import gc

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import no_grad
from repro.nn.backend import list_backends, native_available
from repro.nn.passes import (
    BNReLUPass,
    ConvBNReLUPass,
    FoldCache,
    FoldedOp,
    LinearActivationPass,
    PassPipeline,
    default_pipeline,
)


def _x(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


def _randomize_bn(bn, seed=1):
    rng = np.random.default_rng(seed)
    n = bn.num_features
    bn.running_mean = rng.standard_normal(n).astype(np.float32)
    bn.running_var = (rng.random(n).astype(np.float32) + 0.5)
    bn.weight.data = rng.standard_normal(n).astype(np.float32)
    bn.bias.data = rng.standard_normal(n).astype(np.float32)
    return bn


def folding_backends():
    """Backends whose ``fold_pipeline()`` is live: fused + native."""
    params = []
    for name in list_backends():
        if nn.get_backend(name).fold_pipeline() is None:
            continue
        marks = []
        if name == "native" and not native_available():
            marks.append(pytest.mark.skip(reason="native extension unavailable"))
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(autouse=True)
def _clean_fold_caches():
    default_pipeline().clear_caches()
    yield
    default_pipeline().clear_caches()


def conv_bn_relu_block(bias=True, relu=True, seed=3):
    rng = np.random.default_rng(seed)
    conv = nn.Conv2d(3, 8, 3, padding=1, bias=bias, rng=rng)
    bn = _randomize_bn(nn.BatchNorm2d(8), seed=seed + 1)
    layers = [conv, bn] + ([nn.ReLU()] if relu else [])
    return nn.Sequential(*layers).eval()


class TestPlanning:
    def test_plan_interleaves_folds_and_modules(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, rng=rng),
            _randomize_bn(nn.BatchNorm2d(8)),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(8 * 6 * 6, 16, rng=rng),
            nn.Tanh(),
            _randomize_bn(nn.BatchNorm1d(16), seed=2),
            nn.ReLU(),
        ).eval()
        plan = default_pipeline().plan(model.layers)
        assert plan is not None
        kinds = [
            item.pass_name if type(item) is FoldedOp else type(item).__name__
            for item in plan
        ]
        assert kinds == [
            "conv_bn_relu",
            "Flatten",
            "linear_activation",
            "bn_relu",
        ]
        # Folds cover every original layer exactly once, in order.
        covered = []
        for item in plan:
            covered.extend(item.layers if type(item) is FoldedOp else [item])
        assert covered == model.layers

    def test_plan_none_when_nothing_matches(self):
        model = nn.Sequential(nn.Flatten(), nn.Identity())
        assert default_pipeline().plan(model.layers) is None

    def test_conv_bn_wins_over_bn_relu_at_shared_position(self):
        # Both conv_bn_relu and bn_relu could claim the BatchNorm; the
        # pipeline registers the longer pattern first so it wins.
        block = conv_bn_relu_block(relu=True)
        plan = default_pipeline().plan(block.layers)
        assert len(plan) == 1
        assert plan[0].pass_name == "conv_bn_relu"
        assert len(plan[0].layers) == 3

    def test_training_bn_blocks_conv_fold(self):
        block = conv_bn_relu_block().train()
        assert ConvBNReLUPass().match(block.layers, 0) is None

    def test_training_bn_blocks_bn_relu_fold(self):
        bn = _randomize_bn(nn.BatchNorm2d(4)).train()
        assert BNReLUPass().match([bn, nn.ReLU()], 0) is None

    def test_hook_blocks_fold(self):
        block = conv_bn_relu_block()
        block.layers[1].forward_hook = lambda layer, out: None
        assert ConvBNReLUPass().match(block.layers, 0) is None

    def test_channel_mismatch_blocks_conv_fold(self):
        rng = np.random.default_rng(0)
        conv = nn.Conv2d(3, 8, 3, rng=rng)
        bn = nn.BatchNorm2d(4).eval()
        assert ConvBNReLUPass().match([conv, bn], 0) is None

    def test_subclass_blocks_fold(self):
        class MyReLU(nn.ReLU):
            pass

        rng = np.random.default_rng(0)
        layers = [nn.Linear(4, 4, rng=rng), MyReLU()]
        assert LinearActivationPass().match(layers, 0) is None


class TestEquivalence:
    """Each fold matches the plain layer-by-layer path at atol<=1e-5."""

    @pytest.mark.parametrize("backend", folding_backends())
    @pytest.mark.parametrize("relu", [True, False])
    def test_conv_bn_fold(self, backend, relu):
        x = _x((4, 3, 10, 10), seed=7)
        block = conv_bn_relu_block(relu=relu)
        reference = block(x)  # grad-enabled: no folding
        with nn.use_backend(backend):
            with no_grad():
                out = block(x)
        np.testing.assert_allclose(out, reference, atol=1e-5)

    @pytest.mark.parametrize("backend", folding_backends())
    @pytest.mark.parametrize("dims", ["2d", "1d"])
    def test_bn_relu_fold(self, backend, dims):
        if dims == "2d":
            bn = _randomize_bn(nn.BatchNorm2d(6))
            x = _x((4, 6, 5, 5), seed=11)
        else:
            bn = _randomize_bn(nn.BatchNorm1d(6))
            x = _x((8, 6), seed=11)
        block = nn.Sequential(bn, nn.ReLU()).eval()
        reference = block(x)
        with nn.use_backend(backend):
            with no_grad():
                out = block(x)
        np.testing.assert_allclose(out, reference, atol=1e-5)

    @pytest.mark.parametrize("backend", folding_backends())
    @pytest.mark.parametrize(
        "activation", [nn.ReLU, nn.Tanh, nn.Sigmoid], ids=lambda a: a.__name__
    )
    def test_linear_activation_fold(self, backend, activation):
        rng = np.random.default_rng(13)
        block = nn.Sequential(nn.Linear(12, 7, rng=rng), activation()).eval()
        x = _x((5, 12), seed=13)
        reference = block(x)
        with nn.use_backend(backend):
            with no_grad():
                out = block(x)
        np.testing.assert_allclose(out, reference, atol=1e-5)

    def test_folded_layers_left_in_no_grad_state(self):
        x = _x((4, 3, 10, 10))
        block = conv_bn_relu_block()
        with nn.use_backend("fused"):
            with no_grad():
                block(x)
        with pytest.raises(RuntimeError, match="no-grad"):
            block.backward(np.ones((4, 8, 10, 10), dtype=np.float32))


class TestInvalidation:
    """Fold caches must never serve stale parameters."""

    def _run(self, block, x):
        with nn.use_backend("fused"):
            with no_grad():
                return block(x)

    def test_optimizer_step_invalidates_conv_fold(self):
        x = _x((2, 3, 8, 8), seed=17)
        block = conv_bn_relu_block(relu=False)
        conv = block.layers[0]
        before = self._run(block, x)
        optimizer = nn.SGD(block.parameters(), lr=0.5)
        optimizer.apply_gradient(
            conv.weight, np.ones_like(conv.weight.data)
        )
        after = self._run(block, x)
        expected = block(x)  # grad-enabled path reads the new weights
        np.testing.assert_allclose(after, expected, atol=1e-5)
        assert not np.allclose(after, before)

    def test_load_state_dict_invalidates_fold(self):
        x = _x((2, 3, 8, 8), seed=19)
        block = conv_bn_relu_block(relu=False)
        before = self._run(block, x)
        state = {
            name: value * 2.0 for name, value in block.state_dict().items()
        }
        block.load_state_dict(state)
        after = self._run(block, x)
        expected = block(x)
        np.testing.assert_allclose(after, expected, atol=1e-5)
        assert not np.allclose(after, before)

    def test_bn_stats_refresh_invalidates_fold(self):
        x = _x((4, 3, 8, 8), seed=23)
        block = conv_bn_relu_block(relu=False)
        bn = block.layers[1]
        before = self._run(block, x)
        version = bn.stats_version
        block.train()
        block(_x((4, 3, 8, 8), seed=29))  # refresh running stats
        block.eval()
        assert bn.stats_version > version
        after = self._run(block, x)
        expected = block(x)
        np.testing.assert_allclose(after, expected, atol=1e-5)
        assert not np.allclose(after, before)

    def test_bn_relu_cache_invalidates_on_weight_change(self):
        bn = _randomize_bn(nn.BatchNorm1d(6))
        block = nn.Sequential(bn, nn.ReLU()).eval()
        x = _x((8, 6), seed=31)
        before = self._run(block, x)
        bn.weight.data = bn.weight.data * 3.0
        bn.weight.bump_version()
        after = self._run(block, x)
        expected = block(x)
        np.testing.assert_allclose(after, expected, atol=1e-5)
        assert not np.allclose(after, before)


class TestFoldCache:
    def test_lookup_misses_on_version_change(self):
        cache = FoldCache()
        layer = nn.Identity()
        cache.store((layer,), (0,), "value")
        assert cache.lookup((layer,), (0,)) == "value"
        assert cache.lookup((layer,), (1,)) is None

    def test_weakref_eviction_after_gc(self):
        cache = FoldCache()
        layer = nn.Identity()
        cache.store((layer,), (0,), "value")
        assert len(cache) == 1
        del layer
        gc.collect()
        assert len(cache) == 0

    def test_pipeline_clear_caches(self):
        x = _x((2, 3, 8, 8))
        block = conv_bn_relu_block()
        with nn.use_backend("fused"):
            with no_grad():
                block(x)
        pipeline = default_pipeline()
        conv_pass = pipeline.passes[0]
        assert len(conv_pass.cache) == 1
        pipeline.clear_caches()
        assert len(conv_pass.cache) == 0

    def test_custom_pipeline_composition(self):
        pipeline = PassPipeline((LinearActivationPass(),))
        rng = np.random.default_rng(0)
        layers = [nn.Linear(4, 4, rng=rng), nn.ReLU()]
        plan = pipeline.plan(layers)
        assert len(plan) == 1 and plan[0].pass_name == "linear_activation"
        # conv+BN is not registered in this pipeline, so no fold there.
        block = conv_bn_relu_block()
        assert pipeline.plan(block.layers) is None
