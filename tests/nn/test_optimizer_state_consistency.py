"""Phase-GP's key optimizer property: per-parameter stepping must agree
with whole-model stepping, and mixing the two must keep state coherent.

ADA-GP interleaves whole-model steps (Phase BP) with immediate per-layer
``apply_gradient`` updates (Phase GP) on the *same* optimizer; if the two
paths maintained momentum/Adam state differently, training would diverge
in ways that have nothing to do with gradient prediction.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.module import Parameter
from repro.nn.optim import Adam, SGD


def _params(values):
    return [Parameter(np.array([v], dtype=np.float32)) for v in values]


class TestStepEquivalence:
    @given(
        grads=st.lists(st.floats(-2, 2), min_size=3, max_size=3),
        lr=st.floats(0.01, 0.5),
        momentum=st.floats(0.0, 0.95),
    )
    @settings(max_examples=30, deadline=None)
    def test_sgd_step_equals_per_param_steps(self, grads, lr, momentum):
        a = _params([1.0, 2.0, 3.0])
        b = _params([1.0, 2.0, 3.0])
        opt_a = SGD(a, lr=lr, momentum=momentum)
        opt_b = SGD(b, lr=lr, momentum=momentum)
        for p, g in zip(a, grads):
            p.grad = np.array([g], dtype=np.float32)
        for p, g in zip(b, grads):
            p.grad = np.array([g], dtype=np.float32)
        opt_a.step()
        for p in b:
            opt_b.step_param(p)
        for pa, pb in zip(a, b):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-6)

    @given(
        sequence=st.lists(st.floats(-1, 1), min_size=2, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_apply_gradient_equals_grad_then_step(self, sequence):
        """apply_gradient(g) == (grad=g; step()) for every step of a run."""
        a = _params([0.5])[0]
        b = _params([0.5])[0]
        opt_a = SGD([a], lr=0.1, momentum=0.9)
        opt_b = SGD([b], lr=0.1, momentum=0.9)
        for g in sequence:
            opt_a.apply_gradient(a, np.array([g], dtype=np.float32))
            b.grad = np.array([g], dtype=np.float32)
            opt_b.step()
        np.testing.assert_allclose(a.data, b.data, rtol=1e-6)

    def test_adam_mixed_paths_keep_time_step_coherent(self):
        """Alternating step()/apply_gradient must advance Adam's t once
        per update, not double-count."""
        p = _params([0.0])[0]
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        opt.apply_gradient(p, np.array([1.0], dtype=np.float32))
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        assert opt._t[id(p)] == 3

    def test_interleaved_phases_match_pure_sequence(self):
        """A BP-step / GP-apply / BP-step run equals the same gradient
        sequence applied purely through step()."""
        gradients = [0.3, -0.7, 0.2]
        a = _params([1.0])[0]
        opt_a = SGD([a], lr=0.05, momentum=0.9)
        a.grad = np.array([gradients[0]], dtype=np.float32)
        opt_a.step()
        opt_a.apply_gradient(a, np.array([gradients[1]], dtype=np.float32))
        a.grad = np.array([gradients[2]], dtype=np.float32)
        opt_a.step()

        b = _params([1.0])[0]
        opt_b = SGD([b], lr=0.05, momentum=0.9)
        for g in gradients:
            b.grad = np.array([g], dtype=np.float32)
            opt_b.step()
        np.testing.assert_allclose(a.data, b.data, rtol=1e-6)
