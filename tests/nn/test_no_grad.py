"""Tests for the forward-only (no-grad) execution mode.

Covers, per layer and per backend: bitwise equality of no-grad vs
grad-enabled training-mode forwards, verified cache absence, the
backward-after-no-grad error, workspace-pool cleanliness, and the
conv+BN(+ReLU) fold — now a pass in ``repro.nn.passes`` consumed by
every fast backend — with equivalence, invalidation on GP updates and
on running-stat refreshes, and hook/train-mode bail-outs.
(``tests/nn/test_passes.py`` covers the other folds and the pipeline
machinery itself.)
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.backend import FusedBackend
from repro.nn.module import NO_GRAD, is_grad_enabled, no_grad
from repro.nn.passes import default_pipeline


def _conv_fold_cache():
    pipeline = default_pipeline()
    return next(p for p in pipeline.passes if p.name == "conv_bn_relu").cache

BACKENDS = ["numpy", "fused"]
ATOL = 1e-5


def _x(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


def _layer_cases():
    """(name, layer factory, input shape, cache attrs) per layer type.

    The factory is called twice per test (grad / no-grad instance), so
    every rng is explicitly seeded to make the two instances identical.
    """
    return [
        ("conv3x3", lambda: nn.Conv2d(3, 6, 3, padding=1, rng=np.random.default_rng(1)), (4, 3, 9, 9), ["_cache_ctx"]),
        ("conv1x1", lambda: nn.Conv2d(5, 7, 1, rng=np.random.default_rng(2)), (4, 5, 6, 6), ["_cache_ctx"]),
        ("linear", lambda: nn.Linear(6, 4, rng=np.random.default_rng(3)), (8, 6), ["_cache_x"]),
        ("flatten", lambda: nn.Flatten(), (3, 4, 5), ["_cache_shape"]),
        ("maxpool_padded", lambda: nn.MaxPool2d(3, stride=2, padding=1), (3, 4, 9, 9), ["_cache"]),
        ("avgpool", lambda: nn.AvgPool2d(2), (3, 4, 8, 8), ["_x_shape"]),
        ("adaptive_pool", lambda: nn.AdaptiveAvgPool2d(3), (2, 4, 7, 7), ["_x_shape"]),
        ("global_pool", lambda: nn.GlobalAvgPool2d(), (2, 4, 5, 5), ["_x_shape"]),
        ("batchnorm2d", lambda: nn.BatchNorm2d(5), (6, 5, 4, 4), ["_cache"]),
        ("batchnorm1d", lambda: nn.BatchNorm1d(7), (12, 7), ["_cache"]),
        ("layernorm", lambda: nn.LayerNorm(9), (3, 6, 9), ["_cache"]),
        ("relu", lambda: nn.ReLU(), (4, 6), ["_mask"]),
        ("leaky_relu", lambda: nn.LeakyReLU(0.2), (4, 6), ["_mask"]),
        ("relu6", lambda: nn.ReLU6(), (4, 6), ["_mask"]),
        ("sigmoid", lambda: nn.Sigmoid(), (4, 6), ["_out"]),
        ("tanh", lambda: nn.Tanh(), (4, 6), ["_out"]),
        ("gelu", lambda: nn.GELU(), (4, 6), ["_x"]),
        ("dropout", lambda: nn.Dropout(0.4, rng=np.random.default_rng(4)), (16, 12), ["_mask"]),
        ("attention", lambda: nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(5)), (2, 5, 8), ["_cache"]),
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "name,factory,shape,cache_attrs",
    _layer_cases(),
    ids=[c[0] for c in _layer_cases()],
)
def test_no_grad_forward_bitwise_equal(backend, name, factory, shape, cache_attrs):
    """A no-grad forward returns the training-mode forward bit for bit."""
    x = _x(shape, seed=11)
    with nn.use_backend(backend):
        reference = factory()(x)
        layer = factory()
        with no_grad():
            out = layer(x)
    assert np.array_equal(reference, out)
    for attr in cache_attrs:
        assert getattr(layer, attr) is NO_GRAD, attr


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "name,factory,shape,cache_attrs",
    _layer_cases(),
    ids=[c[0] for c in _layer_cases()],
)
def test_backward_after_no_grad_raises(backend, name, factory, shape, cache_attrs):
    x = _x(shape, seed=3)
    with nn.use_backend(backend):
        layer = factory()
        with no_grad():
            out = layer(x)
        with pytest.raises(RuntimeError, match="no-grad"):
            layer.backward(np.ones_like(out))


class TestGradMode:
    def test_default_enabled_and_scope_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():  # reentrant
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_forward_hooks_still_fire(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        seen = []
        layer.forward_hook = lambda module, output: seen.append(output.shape)
        with no_grad():
            layer(_x((2, 4)))
        assert seen == [(2, 3)]

    def test_grad_forward_after_no_grad_restores_backward(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = _x((2, 4))
        with no_grad():
            layer(x)
        out = layer(x)
        layer.backward(np.ones_like(out))  # does not raise
        assert layer.weight.grad is not None

    def test_bn_training_stats_still_update_under_no_grad(self):
        """no_grad is orthogonal to train/eval: batch stats semantics."""
        bn = nn.BatchNorm2d(3)
        before = bn.running_mean.copy()
        version = bn.stats_version
        with no_grad():
            bn(_x((4, 3, 5, 5), seed=2) + 1.0)
        assert not np.array_equal(bn.running_mean, before)
        assert bn.stats_version == version + 1

    def test_dropout_consumes_same_rng_stream(self):
        """Training semantics under no_grad: identical mask draw."""
        a = nn.Dropout(0.5, rng=np.random.default_rng(7))
        b = nn.Dropout(0.5, rng=np.random.default_rng(7))
        x = _x((8, 8), seed=1)
        out_a = a(x)
        with no_grad():
            out_b = b(x)
        assert np.array_equal(out_a, out_b)


class TestModelLevel:
    def _model(self, seed=1):
        nn.init.reset_layer_rng(0)
        from repro.models import build_mini

        return build_mini("ResNet50", 10, rng=np.random.default_rng(seed))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_train_mode_model_forward_bitwise_equal(self, backend):
        x = _x((4, 3, 16, 16), seed=5)
        with nn.use_backend(backend):
            reference = self._model()(x)
            model = self._model()
            with no_grad():
                out = model(x)
        assert np.array_equal(reference, out)

    def test_no_grad_model_leaves_workspace_pool_clean(self):
        backend = FusedBackend()
        x = _x((4, 3, 16, 16), seed=5)
        with nn.use_backend(backend):
            model = self._model()
            with no_grad():
                model(x)
        assert backend.pool.outstanding == 0
        # Warm pool: a second no-grad forward allocates nothing new.
        backend.pool.reset_stats()
        with nn.use_backend(backend):
            with no_grad():
                model(x)
        assert backend.pool.misses == 0
        assert backend.pool.outstanding == 0

    def test_model_backward_after_no_grad_raises(self):
        model = self._model()
        with no_grad():
            out = model(_x((2, 3, 16, 16)))
        with pytest.raises(RuntimeError, match="no-grad"):
            model.backward(np.ones_like(out))


class TestFoldedConvBN:
    @pytest.fixture(autouse=True)
    def _clean_fold_caches(self):
        default_pipeline().clear_caches()
        yield
        default_pipeline().clear_caches()

    def _block(self, relu=True, bias=False, seed=0):
        nn.init.reset_layer_rng(seed)
        conv = nn.Conv2d(3, 8, 3, padding=1, bias=bias, rng=np.random.default_rng(1))
        bn = nn.BatchNorm2d(8)
        # Non-trivial running stats / affine params so folding is exercised.
        rng = np.random.default_rng(2)
        bn.running_mean = rng.standard_normal(8).astype(np.float32)
        bn.running_var = (rng.random(8).astype(np.float32) + 0.5)
        bn.weight.data = rng.standard_normal(8).astype(np.float32)
        bn.bias.data = rng.standard_normal(8).astype(np.float32)
        layers = [conv, bn] + ([nn.ReLU()] if relu else [])
        return nn.Sequential(*layers).eval()

    @pytest.mark.parametrize("relu", [True, False])
    @pytest.mark.parametrize("bias", [True, False])
    def test_folded_matches_unfused_reference(self, relu, bias):
        x = _x((4, 3, 10, 10), seed=9)
        block = self._block(relu=relu, bias=bias)
        reference = block(x)  # grad-enabled: layer-by-layer, no folding
        backend = FusedBackend()
        with nn.use_backend(backend):
            with no_grad():
                out = block(x)
        assert len(_conv_fold_cache()) == 1  # the fold path actually ran
        np.testing.assert_allclose(out, reference, atol=ATOL)

    def test_fold_invalidated_by_gp_update(self):
        x = _x((4, 3, 10, 10), seed=9)
        block = self._block()
        conv = block[0]
        backend = FusedBackend()
        with nn.use_backend(backend):
            with no_grad():
                stale = block(x)
            # A Phase-GP style predicted update through an optimizer.
            optimizer = nn.SGD([conv.weight], lr=0.5, momentum=0.0)
            optimizer.apply_gradient(
                conv.weight, np.ones_like(conv.weight.data)
            )
            with no_grad():
                refolded = block(x)
        reference = block(x)  # unfused, current weights
        np.testing.assert_allclose(refolded, reference, atol=ATOL)
        assert np.abs(refolded - stale).max() > 0.1

    def test_fold_invalidated_by_running_stats_refresh(self):
        x = _x((4, 3, 10, 10), seed=9)
        block = self._block()
        backend = FusedBackend()
        with nn.use_backend(backend):
            with no_grad():
                block(x)
            # A training-mode forward refreshes running stats.
            block.train()
            block(x + 1.0)
            block.eval()
            with no_grad():
                refolded = block(x)
        reference = block(x)
        np.testing.assert_allclose(refolded, reference, atol=ATOL)

    def test_no_fold_when_bn_in_training_mode(self):
        """Batch-stat normalization cannot fold; semantics win."""
        x = _x((4, 3, 10, 10), seed=9)
        block = self._block().train()
        reference_block = self._block().train()
        backend = FusedBackend()
        with nn.use_backend(backend):
            with no_grad():
                out = block(x)
            assert not len(_conv_fold_cache())
            reference = reference_block(x)
        assert np.array_equal(out, reference)

    def test_no_fold_when_hook_installed(self):
        """A forward hook needs the conv's own output; folding bails."""
        x = _x((4, 3, 10, 10), seed=9)
        block = self._block()
        seen = []
        block[0].forward_hook = lambda module, output: seen.append(output)
        backend = FusedBackend()
        with nn.use_backend(backend):
            with no_grad():
                block(x)
        assert not len(_conv_fold_cache())
        assert len(seen) == 1  # the conv output materialized for the hook

    def test_numpy_backend_never_folds(self):
        x = _x((4, 3, 10, 10), seed=9)
        block = self._block()
        reference = block(x)
        with nn.use_backend("numpy"):
            with no_grad():
                out = block(x)
        assert np.array_equal(out, reference)

    def test_pipeline_clear_caches_drops_fold(self):
        x = _x((4, 3, 10, 10), seed=9)
        block = self._block()
        backend = FusedBackend()
        with nn.use_backend(backend):
            with no_grad():
                block(x)
            assert len(_conv_fold_cache())
            default_pipeline().clear_caches()
            assert not len(_conv_fold_cache())


class TestParameterVersions:
    def test_optimizer_steps_bump_versions(self):
        for optimizer_cls in (nn.SGD, nn.Adam):
            param = nn.Parameter(np.ones(3, dtype=np.float32))
            optimizer = optimizer_cls([param], lr=0.1)
            assert param.version == 0
            param.accumulate_grad(np.ones(3, dtype=np.float32))
            optimizer.step()
            assert param.version == 1
            optimizer.apply_gradient(param, np.ones(3, dtype=np.float32))
            assert param.version == 2

    def test_load_state_dict_bumps_versions(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        state = layer.state_dict()
        before = layer.weight.version
        layer.load_state_dict(state)
        assert layer.weight.version == before + 1
