"""Tests for pooling and normalization layers, with gradchecks."""

import numpy as np
import pytest

from repro import nn
from tests.helpers import linear_probe_loss, max_relative_error, numerical_gradient

RNG = np.random.default_rng(7)


class TestMaxPool:
    def test_forward_matches_naive(self):
        x = RNG.standard_normal((1, 1, 4, 4)).astype(np.float32)
        out = nn.MaxPool2d(2)(x)
        expected = np.array(
            [[x[0, 0, i : i + 2, j : j + 2].max() for j in (0, 2)] for i in (0, 2)]
        )
        np.testing.assert_allclose(out[0, 0], expected)

    def test_backward_routes_to_argmax(self):
        pool = nn.MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        pool.forward(x)
        grad = pool.backward(np.array([[[[5.0]]]], dtype=np.float32))
        np.testing.assert_array_equal(grad, [[[[0, 0], [0, 5.0]]]])

    def test_gradcheck(self):
        pool = nn.MaxPool2d(2, stride=2)
        x = RNG.standard_normal((2, 2, 6, 6)).astype(np.float32)
        out = pool.forward(x)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        pool.forward(x)
        grad_in = pool.backward(probe)
        loss = linear_probe_loss(pool, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2

    def test_all_negative_window_with_padding(self):
        """Padded zeros must not beat real negative values."""
        pool = nn.MaxPool2d(3, stride=1, padding=1)
        x = -np.ones((1, 1, 3, 3), dtype=np.float32)
        out = pool(x)
        assert (out <= 0).all()

    def test_padded_real_zero_wins_over_negative(self):
        """Regression: window [-5, 0] must return 0, not -5.

        The old padding proxy (``cols == 0.0 -> -inf``) rewrote *real*
        zero activations (ubiquitous after ReLU) to -inf, so they could
        never win the max, and routed gradient into the padding ring
        where col2im drops it.
        """
        pool = nn.MaxPool2d(2, stride=2, padding=1)
        x = np.array([[[[-5.0, 0.0], [-1.0, -2.0]]]], dtype=np.float32)
        out = pool(x)
        np.testing.assert_array_equal(out[0, 0], [[-5.0, 0.0], [-1.0, -2.0]])
        grad = pool.backward(np.ones_like(out))
        # Each corner window holds exactly one real element: all four
        # units of gradient must reach the input, none lost to padding.
        np.testing.assert_array_equal(grad[0, 0], np.ones((2, 2)))

    @pytest.mark.parametrize("sign", [-1.0, 1.0])
    def test_gradcheck_with_padding(self, sign):
        """FD gradcheck with padded windows, all-negative and mixed."""
        pool = nn.MaxPool2d(3, stride=2, padding=1)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 2, 5, 5)).astype(np.float32)
        if sign < 0:
            x = -np.abs(x)  # every window all-negative
        out = pool.forward(x)
        probe = rng.standard_normal(out.shape).astype(np.float32)
        pool.forward(x)
        grad_in = pool.backward(probe)
        loss = linear_probe_loss(pool, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2

    def test_all_zero_windows_with_padding(self):
        """All-zero inputs (post-ReLU dead activations): output is 0 and
        the full gradient mass survives (ties make FD ill-defined, so
        assert conservation instead)."""
        pool = nn.MaxPool2d(3, stride=2, padding=1)
        x = np.zeros((1, 2, 5, 5), dtype=np.float32)
        out = pool(x)
        np.testing.assert_array_equal(out, np.zeros_like(out))
        grad_out = np.ones_like(out)
        grad_in = pool.backward(grad_out)
        assert np.isfinite(grad_in).all()
        assert grad_in.sum() == grad_out.sum()

    def test_excessive_padding_rejected(self):
        with pytest.raises(ValueError):
            nn.MaxPool2d(2, padding=2)


class TestAvgPool:
    def test_forward_is_mean(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = nn.AvgPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradcheck(self):
        pool = nn.AvgPool2d(2)
        x = RNG.standard_normal((1, 2, 4, 4)).astype(np.float32)
        out = pool.forward(x)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        pool.forward(x)
        grad_in = pool.backward(probe)
        loss = linear_probe_loss(pool, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2


class TestGlobalAndAdaptivePool:
    def test_global_equals_mean(self):
        x = RNG.standard_normal((2, 3, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(
            nn.GlobalAvgPool2d()(x), x.mean(axis=(2, 3)), rtol=1e-6
        )

    def test_global_gradcheck(self):
        pool = nn.GlobalAvgPool2d()
        x = RNG.standard_normal((2, 2, 3, 3)).astype(np.float32)
        probe = RNG.standard_normal((2, 2)).astype(np.float32)
        pool.forward(x)
        grad_in = pool.backward(probe)
        loss = linear_probe_loss(pool, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2

    def test_adaptive_gradcheck(self):
        pool = nn.AdaptiveAvgPool2d(3)
        x = RNG.standard_normal((1, 2, 7, 5)).astype(np.float32)
        out = pool.forward(x)
        assert out.shape == (1, 2, 3, 3)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        pool.forward(x)
        grad_in = pool.backward(probe)
        loss = linear_probe_loss(pool, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2


class TestBatchNorm2d:
    def test_normalizes_in_train_mode(self):
        bn = nn.BatchNorm2d(3)
        x = RNG.standard_normal((8, 3, 4, 4)).astype(np.float32) * 5 + 2
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        x = RNG.standard_normal((16, 2, 4, 4)).astype(np.float32)
        for _ in range(50):
            bn(x)
        bn.eval()
        out_eval = bn(x)
        bn.train()
        out_train = bn(x)
        np.testing.assert_allclose(out_eval, out_train, atol=0.2)

    def test_gradcheck_with_affine(self):
        bn = nn.BatchNorm2d(2)
        bn.weight.data = RNG.standard_normal(2).astype(np.float32)
        bn.bias.data = RNG.standard_normal(2).astype(np.float32)
        x = RNG.standard_normal((4, 2, 3, 3)).astype(np.float32)
        probe = RNG.standard_normal(x.shape).astype(np.float32)
        bn.forward(x)
        grad_in = bn.backward(probe)
        loss = linear_probe_loss(bn, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2
        bn.zero_grad()
        bn.forward(x)
        bn.backward(probe)
        assert max_relative_error(bn.weight.grad, numerical_gradient(loss, bn.weight.data)) < 2e-2

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(np.zeros((2, 4, 3, 3), dtype=np.float32))

    def test_running_var_stores_unbiased_estimate(self):
        """PyTorch semantics: running_var gets the n/(n-1) estimate."""
        bn = nn.BatchNorm2d(2, momentum=1.0)  # running stats = batch stats
        x = RNG.standard_normal((4, 2, 3, 3)).astype(np.float32) * 2 + 1
        bn(x)
        np.testing.assert_allclose(
            bn.running_var, x.var(axis=(0, 2, 3), ddof=1), rtol=1e-5
        )
        np.testing.assert_allclose(
            bn.running_mean, x.mean(axis=(0, 2, 3)), rtol=1e-5
        )

    def test_normalization_still_uses_biased_variance(self):
        bn = nn.BatchNorm2d(1, eps=0.0)
        x = RNG.standard_normal((8, 1, 2, 2)).astype(np.float32)
        out = bn(x)
        expected = (x - x.mean()) / np.sqrt(x.var())
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_gradcheck_eval_path(self):
        """Backward through the running-stats (eval) normalization."""
        bn = nn.BatchNorm2d(2)
        warm = RNG.standard_normal((8, 2, 3, 3)).astype(np.float32)
        for _ in range(3):
            bn(warm)
        bn.eval()
        x = RNG.standard_normal((4, 2, 3, 3)).astype(np.float32)
        probe = RNG.standard_normal(x.shape).astype(np.float32)
        bn.forward(x)
        grad_in = bn.backward(probe)
        loss = linear_probe_loss(bn, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2


class TestBatchNorm1dLayerNorm:
    def test_bn1d_running_var_unbiased(self):
        bn = nn.BatchNorm1d(3, momentum=1.0)
        x = RNG.standard_normal((6, 3)).astype(np.float32)
        bn(x)
        np.testing.assert_allclose(bn.running_var, x.var(axis=0, ddof=1), rtol=1e-5)

    def test_bn1d_gradcheck(self):
        bn = nn.BatchNorm1d(4)
        bn.weight.data = RNG.standard_normal(4).astype(np.float32)
        x = RNG.standard_normal((6, 4)).astype(np.float32)
        probe = RNG.standard_normal(x.shape).astype(np.float32)
        bn.forward(x)
        grad_in = bn.backward(probe)
        loss = linear_probe_loss(bn, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2

    def test_layernorm_normalizes_last_dim(self):
        ln = nn.LayerNorm(8)
        x = RNG.standard_normal((2, 3, 8)).astype(np.float32) * 3 + 1
        out = ln(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-4)

    def test_layernorm_gradcheck(self):
        ln = nn.LayerNorm(5)
        ln.weight.data = RNG.standard_normal(5).astype(np.float32)
        x = RNG.standard_normal((3, 4, 5)).astype(np.float32)
        probe = RNG.standard_normal(x.shape).astype(np.float32)
        ln.forward(x)
        grad_in = ln.backward(probe)
        loss = linear_probe_loss(ln, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = RNG.standard_normal((4, 4)).astype(np.float32)
        np.testing.assert_array_equal(drop(x), x)

    def test_train_mode_preserves_expectation(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 200), dtype=np.float32)
        out = drop(x)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((10, 10), dtype=np.float32)
        out = drop(x)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
