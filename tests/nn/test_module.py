"""Tests for Module/Parameter infrastructure and hooks."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter, predictable_layers


class TestParameter:
    def test_accumulate_allocates_then_adds(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        p.accumulate_grad(np.ones(3, dtype=np.float32))
        p.accumulate_grad(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(p.grad, 2.0)

    def test_shape_mismatch_rejected(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.ones(4, dtype=np.float32))

    def test_zero_grad_clears(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.accumulate_grad(np.ones(2, dtype=np.float32))
        p.zero_grad()
        assert p.grad is None

    def test_data_is_float32(self):
        p = Parameter(np.zeros(2, dtype=np.float64))
        assert p.data.dtype == np.float32


class TestModuleIntrospection:
    def _model(self):
        rng = np.random.default_rng(0)
        return nn.Sequential(
            nn.Conv2d(3, 4, 3, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 14 * 14, 5, rng=rng),
        )

    def test_named_parameters_unique(self):
        model = self._model()
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        assert len(names) == 6  # conv w+b, bn w+b, linear w+b

    def test_num_parameters(self):
        model = self._model()
        expected = 4 * 3 * 9 + 4 + 4 + 4 + 5 * 4 * 14 * 14 + 5
        assert model.num_parameters() == expected

    def test_train_eval_propagates(self):
        model = self._model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_round_trip(self):
        model = self._model()
        state = model.state_dict()
        clone = self._model()
        for p in clone.parameters():
            p.data += 1.0
        clone.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_state_dict_validates(self):
        model = self._model()
        state = model.state_dict()
        key = next(iter(state))
        bad = dict(state)
        bad[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(bad)
        del bad[key]
        with pytest.raises(KeyError):
            model.load_state_dict(bad)

    def test_predictable_layers_in_forward_order(self):
        model = self._model()
        layers = predictable_layers(model)
        assert [type(m).__name__ for m in layers] == ["Conv2d", "Linear"]


class TestForwardHook:
    def test_hook_fires_with_output(self):
        layer = nn.Linear(2, 3, rng=np.random.default_rng(0))
        captured = []
        layer.forward_hook = lambda mod, out: captured.append((mod, out.shape))
        x = np.zeros((4, 2), dtype=np.float32)
        layer(x)
        assert captured == [(layer, (4, 3))]

    def test_hook_fires_inside_sequential(self):
        rng = np.random.default_rng(1)
        inner = nn.Linear(2, 2, rng=rng)
        model = nn.Sequential(inner, nn.ReLU())
        calls = []
        inner.forward_hook = lambda mod, out: calls.append(1)
        model(np.zeros((1, 2), dtype=np.float32))
        assert calls == [1]

    def test_removing_hook_stops_calls(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(2))
        calls = []
        layer.forward_hook = lambda mod, out: calls.append(1)
        layer(np.zeros((1, 2), dtype=np.float32))
        layer.forward_hook = None
        layer(np.zeros((1, 2), dtype=np.float32))
        assert calls == [1]

    def test_zero_grad_clears_all(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(3)))
        x = np.ones((1, 2), dtype=np.float32)
        out = model.forward(x)
        model.backward(np.ones_like(out))
        assert all(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())
