"""Tests for composite blocks, attention, embeddings, and activations."""

import numpy as np
import pytest

from repro import nn
from repro.nn.layers.attention import causal_mask, padding_mask
from tests.helpers import linear_probe_loss, max_relative_error, numerical_gradient

RNG = np.random.default_rng(11)


class TestResidual:
    def test_identity_shortcut_adds(self):
        block = nn.Residual(nn.Identity())
        x = RNG.standard_normal((2, 3)).astype(np.float32)
        np.testing.assert_allclose(block(x), 2 * x)

    def test_gradcheck_with_projection(self):
        rng = np.random.default_rng(0)
        block = nn.Residual(
            nn.Sequential(nn.Linear(4, 4, rng=rng), nn.Tanh()),
            nn.Linear(4, 4, rng=rng),
        )
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        probe = RNG.standard_normal((3, 4)).astype(np.float32)
        block.forward(x)
        grad_in = block.backward(probe)
        loss = linear_probe_loss(block, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2

    def test_shape_mismatch_raises(self):
        block = nn.Residual(nn.Linear(4, 3, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError):
            block(np.zeros((2, 4), dtype=np.float32))


class TestConcatBranches:
    def test_concatenates_on_channels(self):
        rng = np.random.default_rng(1)
        block = nn.ConcatBranches(
            [nn.Conv2d(2, 3, 1, rng=rng), nn.Conv2d(2, 5, 1, rng=rng)]
        )
        x = RNG.standard_normal((2, 2, 4, 4)).astype(np.float32)
        assert block(x).shape == (2, 8, 4, 4)

    def test_gradcheck(self):
        rng = np.random.default_rng(2)
        block = nn.ConcatBranches(
            [nn.Conv2d(2, 2, 1, rng=rng), nn.Conv2d(2, 3, 3, padding=1, rng=rng)]
        )
        x = RNG.standard_normal((1, 2, 4, 4)).astype(np.float32)
        out = block.forward(x)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        block.forward(x)
        grad_in = block.backward(probe)
        loss = linear_probe_loss(block, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2

    def test_empty_branches_rejected(self):
        with pytest.raises(ValueError):
            nn.ConcatBranches([])


class TestDenseConcat:
    def test_output_prepends_input(self):
        rng = np.random.default_rng(3)
        block = nn.DenseConcat(nn.Conv2d(2, 3, 3, padding=1, rng=rng))
        x = RNG.standard_normal((1, 2, 4, 4)).astype(np.float32)
        out = block(x)
        assert out.shape == (1, 5, 4, 4)
        np.testing.assert_array_equal(out[:, :2], x)

    def test_gradcheck(self):
        rng = np.random.default_rng(4)
        block = nn.DenseConcat(nn.Conv2d(2, 2, 1, rng=rng))
        x = RNG.standard_normal((2, 2, 3, 3)).astype(np.float32)
        out = block.forward(x)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        block.forward(x)
        grad_in = block.backward(probe)
        loss = linear_probe_loss(block, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2


class TestActivations:
    @pytest.mark.parametrize(
        "layer", [nn.ReLU(), nn.LeakyReLU(0.1), nn.ReLU6(), nn.Sigmoid(),
                  nn.Tanh(), nn.GELU()]
    )
    def test_gradcheck(self, layer):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        probe = RNG.standard_normal((3, 5)).astype(np.float32)
        layer.forward(x)
        grad_in = layer.backward(probe)
        loss = linear_probe_loss(layer, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2

    def test_relu6_clips(self):
        out = nn.ReLU6()(np.array([-1.0, 3.0, 9.0], dtype=np.float32))
        np.testing.assert_array_equal(out, [0.0, 3.0, 6.0])


class TestAttention:
    def test_self_attention_shape(self):
        mha = nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = RNG.standard_normal((2, 5, 8)).astype(np.float32)
        assert mha.attend(x, x, x).shape == (2, 5, 8)

    def test_rejects_bad_head_split(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(7, 2)

    def test_causal_mask_blocks_future(self):
        mha = nn.MultiHeadAttention(4, 1, rng=np.random.default_rng(1))
        x = RNG.standard_normal((1, 4, 4)).astype(np.float32)
        mask = causal_mask(4)
        mha.attend(x, x, x, mask)
        _q, _k, _v, attn, _scale = mha._cache
        # Upper triangle (future positions) must carry ~zero weight.
        assert attn[0, 0][np.triu_indices(4, k=1)].max() < 1e-6

    def test_padding_mask_shape_and_values(self):
        ids = np.array([[5, 6, 0, 0]])
        mask = padding_mask(ids, pad_id=0)
        assert mask.shape == (1, 1, 1, 4)
        np.testing.assert_array_equal(mask[0, 0, 0], [1, 1, 0, 0])

    def test_gradcheck_self_attention(self):
        mha = nn.MultiHeadAttention(6, 3, rng=np.random.default_rng(2))
        x = RNG.standard_normal((2, 4, 6)).astype(np.float32)
        out = mha.attend(x, x, x)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        mha.attend(x, x, x)
        d_q, d_k, d_v = mha.backward_attend(probe)
        grad_in = d_q + d_k + d_v

        def loss() -> float:
            return float((mha.attend(x, x, x) * probe).sum())

        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2

    def test_backward_attend_gradcheck_per_input(self):
        """FD-check d_query, d_key and d_value independently."""
        mha = nn.MultiHeadAttention(4, 2, rng=np.random.default_rng(5))
        rng = np.random.default_rng(6)
        q = rng.standard_normal((2, 3, 4)).astype(np.float32)
        k = rng.standard_normal((2, 3, 4)).astype(np.float32)
        v = rng.standard_normal((2, 3, 4)).astype(np.float32)
        probe = rng.standard_normal((2, 3, 4)).astype(np.float32)
        mha.attend(q, k, v)
        d_q, d_k, d_v = mha.backward_attend(probe)

        def loss() -> float:
            return float((mha.attend(q, k, v) * probe).sum())

        for analytic, array in ((d_q, q), (d_k, k), (d_v, v)):
            assert max_relative_error(analytic, numerical_gradient(loss, array)) < 2e-2

    def test_default_rng_projections_differ(self):
        """Regression: q/k/v/out built without an rng must not collide.

        Before the per-layer seed-sequence policy, every Linear defaulted
        to a fresh ``default_rng(0)``, making all four projections
        bit-identical.
        """
        mha = nn.MultiHeadAttention(8, 2)
        weights = [
            mha.q_proj.weight.data,
            mha.k_proj.weight.data,
            mha.v_proj.weight.data,
            mha.out_proj.weight.data,
        ]
        for i in range(len(weights)):
            for j in range(i + 1, len(weights)):
                assert not np.array_equal(weights[i], weights[j])

    def test_gradcheck_cross_attention_memory(self):
        mha = nn.MultiHeadAttention(4, 2, rng=np.random.default_rng(3))
        q = RNG.standard_normal((1, 3, 4)).astype(np.float32)
        memory = RNG.standard_normal((1, 5, 4)).astype(np.float32)
        out = mha.attend(q, memory, memory)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        mha.attend(q, memory, memory)
        _d_q, d_k, d_v = mha.backward_attend(probe)
        grad_memory = d_k + d_v

        def loss() -> float:
            return float((mha.attend(q, memory, memory) * probe).sum())

        assert max_relative_error(grad_memory, numerical_gradient(loss, memory)) < 2e-2


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        ids = np.array([[1, 2], [3, 1]])
        out = emb(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 0], emb.weight.data[1])

    def test_backward_scatters_gradients(self):
        emb = nn.Embedding(5, 3, rng=np.random.default_rng(1))
        ids = np.array([[0, 0, 2]])
        emb(ids)
        grad = np.ones((1, 3, 3), dtype=np.float32)
        emb.backward(grad)
        np.testing.assert_allclose(emb.weight.grad[0], 2.0)  # id 0 used twice
        np.testing.assert_allclose(emb.weight.grad[2], 1.0)
        np.testing.assert_allclose(emb.weight.grad[1], 0.0)

    def test_out_of_range_rejected(self):
        emb = nn.Embedding(5, 3)
        with pytest.raises(ValueError):
            emb(np.array([[7]]))

    def test_positional_encoding_adds_fixed_table(self):
        pe = nn.PositionalEncoding(8, max_len=16)
        x = np.zeros((1, 4, 8), dtype=np.float32)
        out = pe(x)
        np.testing.assert_array_equal(out[0], pe.table[:4])
        with pytest.raises(ValueError):
            pe(np.zeros((1, 17, 8), dtype=np.float32))
