"""Tests for the pluggable compute-backend layer.

Covers the registry/selection machinery, the per-op equivalence matrix
against the NumPy reference (atol <= 1e-5) over *every* registered
backend, per-backend numeric gradchecks for the five op families the
predictor path depends on, the FusedBackend workspace pool, the
``one_hot`` validation fix, the vectorized adaptive pooling, and
``Module.clear_caches``.  The native compiled backend rides the same
matrices and is auto-skipped where its extension cannot build.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.backend import (
    ConvCtx,
    FusedBackend,
    NativeBackend,
    NativeUnavailableError,
    NumpyBackend,
    backend_scope,
    current_backend,
    get_backend,
    list_backends,
    native_available,
    register_backend,
    resolve_backend,
    use_backend,
)

from tests.helpers import linear_probe_loss, max_relative_error, numerical_gradient

RNG = np.random.default_rng(7)

BACKENDS = ["numpy", "fused"]
ATOL = 1e-5


def backend_params(exclude=()):
    """Every registered backend as pytest params, native auto-skipped
    when its extension cannot build on this host."""
    params = []
    for name in list_backends():
        if name in exclude:
            continue
        marks = []
        if name == "native" and not native_available():
            marks.append(
                pytest.mark.skip(reason="native extension unavailable")
            )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


def _x(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


# ----------------------------------------------------------------------
# Registry and selection.
# ----------------------------------------------------------------------
class TestSelection:
    def test_builtin_backends_registered(self):
        assert {"numpy", "fused", "native"} <= set(list_backends())

    def test_list_backends_sorted_and_deterministic(self):
        names = list_backends()
        assert names == sorted(names)
        assert names == list_backends()

    def test_get_backend_is_singleton(self):
        assert get_backend("fused") is get_backend("fused")

    def test_unknown_backend_raises_listing_registered(self):
        with pytest.raises(ValueError, match="unknown backend") as excinfo:
            get_backend("cuda")
        message = str(excinfo.value)
        assert "registered" in message
        for name in list_backends():
            assert name in message

    def test_native_resolves_or_raises_unavailable(self):
        if native_available():
            assert isinstance(get_backend("native"), NativeBackend)
        else:
            with pytest.raises(NativeUnavailableError):
                get_backend("native")

    def test_resolve_passthrough(self):
        backend = FusedBackend()
        assert resolve_backend(backend) is backend
        assert resolve_backend(None) is None
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_use_backend_global_and_context(self):
        assert current_backend().name == "numpy"
        handle = use_backend("fused")
        assert current_backend().name == "fused"
        use_backend("numpy")
        assert current_backend().name == "numpy"
        with use_backend("fused"):
            assert current_backend().name == "fused"
        assert current_backend().name == "numpy"
        del handle

    def test_backend_scope_nests_and_restores(self):
        with backend_scope("fused"):
            assert current_backend().name == "fused"
            with backend_scope("numpy"):
                assert current_backend().name == "numpy"
            with backend_scope(None):  # no-op scope inherits
                assert current_backend().name == "fused"
        assert current_backend().name == "numpy"

    def test_register_third_backend(self):
        class TracingBackend(NumpyBackend):
            name = "tracing-test"

        register_backend("tracing-test", TracingBackend)
        try:
            assert isinstance(get_backend("tracing-test"), TracingBackend)
        finally:
            from repro.nn.backend import base

            base._FACTORIES.pop("tracing-test", None)
            base._INSTANCES.pop("tracing-test", None)


# ----------------------------------------------------------------------
# Per-op equivalence matrix: every registered backend vs the reference.
# ----------------------------------------------------------------------
def _layer_cases():
    """(name, layer factory, input shape) for the equivalence matrix."""
    return [
        ("conv3x3", lambda: nn.Conv2d(3, 6, 3, padding=1, rng=np.random.default_rng(1)), (4, 3, 9, 9)),
        ("conv1x1", lambda: nn.Conv2d(5, 7, 1, rng=np.random.default_rng(2)), (4, 5, 6, 6)),
        ("conv_strided", lambda: nn.Conv2d(3, 4, 3, stride=2, padding=1, rng=np.random.default_rng(3)), (2, 3, 11, 11)),
        ("linear", lambda: nn.Linear(6, 4, rng=np.random.default_rng(4)), (8, 6)),
        ("linear_seq", lambda: nn.Linear(5, 3, rng=np.random.default_rng(5)), (2, 7, 5)),
        ("maxpool_padded", lambda: nn.MaxPool2d(3, stride=2, padding=1), (3, 4, 9, 9)),
        ("avgpool", lambda: nn.AvgPool2d(2), (3, 4, 8, 8)),
        ("adaptive_pool", lambda: nn.AdaptiveAvgPool2d(3), (2, 4, 7, 7)),
        ("batchnorm2d", lambda: nn.BatchNorm2d(5), (6, 5, 4, 4)),
        ("batchnorm1d", lambda: nn.BatchNorm1d(7), (12, 7)),
        ("layernorm", lambda: nn.LayerNorm(9), (3, 6, 9)),
        ("attention", lambda: nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(6)), (2, 5, 8)),
    ]


def _run_layer(backend, factory, x):
    """(output, input grad, param grads) for one layer on ``backend``."""
    nn.init.reset_layer_rng(99)
    layer = factory()
    with use_backend(backend):
        out = layer(x.copy())
        probe_rng = np.random.default_rng(12)
        probe = probe_rng.standard_normal(out.shape).astype(np.float32)
        layer.zero_grad()
        grad_in = layer.backward(probe.copy())
    grads = {name_: p.grad for name_, p in layer.named_parameters()}
    return out, grad_in, grads


@pytest.mark.parametrize("backend", backend_params(exclude=("numpy",)))
@pytest.mark.parametrize("name,factory,shape", _layer_cases())
def test_backend_matches_numpy(backend, name, factory, shape):
    """Forward, input-grad and parameter-grad equivalence at atol<=1e-5
    for every registered backend against the NumPy reference."""
    x = _x(shape, seed=11)
    out_n, gin_n, grads_n = _run_layer("numpy", factory, x)
    out_b, gin_b, grads_b = _run_layer(backend, factory, x)
    np.testing.assert_allclose(out_b, out_n, atol=ATOL, rtol=1e-5)
    np.testing.assert_allclose(gin_b, gin_n, atol=ATOL, rtol=1e-5)
    assert grads_n.keys() == grads_b.keys()
    for key in grads_n:
        np.testing.assert_allclose(
            grads_b[key], grads_n[key], atol=ATOL, rtol=1e-4, err_msg=key
        )


@pytest.mark.skipif(
    not native_available(), reason="native extension unavailable"
)
@pytest.mark.parametrize(
    "name,factory,shape",
    [
        case
        for case in _layer_cases()
        if case[0].startswith("linear") or case[0] == "conv_strided"
    ],
)
def test_native_opt_in_kernels_match_numpy(name, factory, shape):
    """The opt-in C paths (``REPRO_NATIVE_LINEAR=1`` GEMMs,
    ``REPRO_NATIVE_STRIDED=1`` strided convs) stay correct even though
    default dispatch keeps them on BLAS."""
    backend = NativeBackend()
    backend._c_linear = True
    backend._c_strided = True
    x = _x(shape, seed=11)
    out_n, gin_n, grads_n = _run_layer("numpy", factory, x)
    out_b, gin_b, grads_b = _run_layer(backend, factory, x)
    np.testing.assert_allclose(out_b, out_n, atol=ATOL, rtol=1e-5)
    np.testing.assert_allclose(gin_b, gin_n, atol=ATOL, rtol=1e-5)
    for key in grads_n:
        np.testing.assert_allclose(
            grads_b[key], grads_n[key], atol=ATOL, rtol=1e-4, err_msg=key
        )


# ----------------------------------------------------------------------
# Numeric gradchecks per backend (conv, linear, maxpool, attention, bn).
# ----------------------------------------------------------------------
def _gradcheck_cases():
    return [
        ("conv", lambda: nn.Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(21)), (2, 2, 5, 5)),
        ("conv1x1", lambda: nn.Conv2d(3, 4, 1, rng=np.random.default_rng(22)), (2, 3, 4, 4)),
        ("linear", lambda: nn.Linear(4, 3, rng=np.random.default_rng(23)), (5, 4)),
        ("maxpool", lambda: nn.MaxPool2d(2), (2, 2, 6, 6)),
        ("attention", lambda: nn.MultiHeadAttention(6, 2, rng=np.random.default_rng(24)), (2, 3, 6)),
        ("batchnorm", lambda: nn.BatchNorm2d(3), (3, 3, 4, 4)),
    ]


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("op,factory,shape", _gradcheck_cases())
def test_gradcheck_matrix(backend, op, factory, shape):
    """Analytic gradients agree with central differences on every
    registered backend."""
    nn.init.reset_layer_rng(31)
    layer = factory()
    x = _x(shape, seed=41)
    with use_backend(backend):
        out = layer.forward(x)
        probe = np.random.default_rng(42).standard_normal(out.shape).astype(np.float32)
        layer.zero_grad()
        # Re-run forward so caches match the probe evaluation exactly.
        layer.forward(x)
        grad_in = layer.backward(probe)
        loss = linear_probe_loss(layer, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2
        for _, param in layer.named_parameters():
            if param.grad is None:
                continue
            numeric = numerical_gradient(loss, param.data)
            if np.abs(numeric).max() < 1e-3:
                # Mathematically-zero gradients (attention k_proj bias:
                # softmax is shift-invariant along keys) leave only fp32
                # noise in the central difference — compare absolutely.
                assert np.abs(param.grad - numeric).max() < 1e-3
            else:
                assert max_relative_error(param.grad, numeric) < 2e-2


# ----------------------------------------------------------------------
# Workspace pool.
# ----------------------------------------------------------------------
class TestWorkspacePool:
    def test_forward_backward_recycles_one_buffer(self):
        backend = FusedBackend()
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(1))
        x = _x((2, 3, 8, 8))
        with use_backend(backend):
            for _ in range(4):
                out = conv(x)
                conv.zero_grad()
                conv.backward(np.ones_like(out))
        # First batch allocates (cols + grad_cols share one shape slot);
        # every later batch is all pool hits.
        assert backend.pool.misses <= 2
        assert backend.pool.hits >= 6

    def test_interleaved_layers_get_distinct_buffers(self):
        """fwd A, fwd B, bwd B, bwd A (pipeline-style in-flight overlap)
        must not alias workspaces across the two layers."""
        nn.init.reset_layer_rng(3)
        conv_a = nn.Conv2d(3, 4, 3, padding=1)
        conv_b = nn.Conv2d(3, 4, 3, padding=1)
        x_a, x_b = _x((2, 3, 8, 8), 1), _x((2, 3, 8, 8), 2)
        probe = _x((2, 3, 8, 8), 3)  # unused; keep rng parity

        def run(backend_name):
            nn.init.reset_layer_rng(3)
            a = nn.Conv2d(3, 4, 3, padding=1)
            b = nn.Conv2d(3, 4, 3, padding=1)
            with use_backend(backend_name):
                out_a, out_b = a(x_a), b(x_b)
                a.zero_grad(), b.zero_grad()
                gin_b = b.backward(np.ones_like(out_b))
                gin_a = a.backward(np.ones_like(out_a))
            return out_a, out_b, gin_a, gin_b, a.weight.grad, b.weight.grad

        for got, want in zip(run("fused"), run("numpy")):
            np.testing.assert_allclose(got, want, atol=ATOL, rtol=1e-5)

    def test_second_backward_on_released_ctx_raises(self):
        """Backward twice without a forward must fail loudly, not read a
        recycled workspace another layer may have overwritten."""
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(4))
        x = _x((2, 3, 8, 8))
        with use_backend(FusedBackend()):
            out = conv(x)
            conv.zero_grad()
            conv.backward(np.ones_like(out))
            with pytest.raises(RuntimeError, match="released context"):
                conv.backward(np.ones_like(out))

    def test_ctx_release_is_idempotent(self):
        backend = FusedBackend()
        x = _x((1, 2, 5, 5))
        with use_backend(backend):
            _, ctx = backend.conv2d_forward(
                x, _x((3, 2, 3, 3), 1), None, 1, 1
            )
        assert ctx.pooled
        ctx.release()
        parked = sum(len(v) for v in backend.pool._free.values())
        ctx.release()
        assert sum(len(v) for v in backend.pool._free.values()) == parked

    def test_pointwise_fast_path_skips_im2col(self):
        """1x1 stride-1 conv must not touch the pool: its cols are a view."""
        backend = FusedBackend()
        conv = nn.Conv2d(4, 6, 1, rng=np.random.default_rng(2))
        x = _x((2, 4, 5, 5))
        with use_backend(backend):
            conv(x)
        assert backend.pool.misses == 0
        assert conv._cache_ctx.cols.base is x  # reshape view, no copy

    def test_pool_bounds_parked_buffers(self):
        pool = FusedBackend(max_buffers_per_shape=2).pool
        buffers = [pool.acquire((3, 3), np.float32) for _ in range(5)]
        for buf in buffers:
            pool.release(buf)
        assert sum(len(v) for v in pool._free.values()) == 2

    def test_clear_caches_returns_workspace_to_pool(self):
        """Forward-only (Phase-GP style) batches hand their conv
        workspaces back through Module.clear_caches."""
        backend = FusedBackend()
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(1))
        x = _x((2, 3, 8, 8))
        with use_backend(backend):
            conv(x)  # forward only: buffer stays checked out
            assert sum(len(v) for v in backend.pool._free.values()) == 0
            conv.clear_caches()
            assert sum(len(v) for v in backend.pool._free.values()) == 1
            conv(x)
        assert backend.pool.hits >= 1


# ----------------------------------------------------------------------
# im2col out= plumbing.
# ----------------------------------------------------------------------
class TestIm2colOut:
    def test_out_buffer_receives_columns(self):
        x = _x((2, 3, 6, 6))
        ref, oh, ow = F.im2col(x, 3, 1, 1)
        buf = np.empty_like(ref)
        got, oh2, ow2 = F.im2col(x, 3, 1, 1, out=buf)
        assert got is buf and (oh, ow) == (oh2, ow2)
        np.testing.assert_array_equal(got, ref)

    def test_out_shape_mismatch_raises(self):
        x = _x((2, 3, 6, 6))
        with pytest.raises(ValueError, match="out buffer"):
            F.im2col(x, 3, 1, 1, out=np.empty((1, 1, 1), dtype=np.float32))


# ----------------------------------------------------------------------
# one_hot validation (satellite fix).
# ----------------------------------------------------------------------
class TestOneHotValidation:
    def test_multidim_labels_raise(self):
        with pytest.raises(ValueError, match="1-D label vector"):
            F.one_hot(np.zeros((4, 3), dtype=np.int64), 5)

    def test_empty_labels_raise(self):
        with pytest.raises(ValueError, match="empty"):
            F.one_hot(np.array([], dtype=np.int64), 5)
        with pytest.raises(ValueError, match="empty"):
            F.one_hot(np.zeros((0, 1), dtype=np.int64), 5)

    def test_column_vector_flattens(self):
        encoded = F.one_hot(np.array([[2], [0]]), 3)
        np.testing.assert_array_equal(
            encoded, [[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]
        )

    def test_row_vector_raises(self):
        """(1, N) is a mis-shaped batch, not a column vector — flattening
        it would silently change the batch size from 1 to N."""
        with pytest.raises(ValueError, match="1-D label vector"):
            F.one_hot(np.array([[0, 1, 2]]), 5)

    def test_float_labels_raise(self):
        with pytest.raises(ValueError, match="integer labels"):
            F.one_hot(np.array([0.0, 1.0]), 3)

    def test_valid_labels_unchanged(self):
        encoded = F.one_hot(np.array([1, 0, 2]), 3)
        assert encoded.shape == (3, 3)
        np.testing.assert_array_equal(encoded.argmax(axis=1), [1, 0, 2])


# ----------------------------------------------------------------------
# Vectorized adaptive pooling (satellite).
# ----------------------------------------------------------------------
def _loop_adaptive_pool(x, out_hw):
    """The pre-vectorization double-loop reference."""
    out_h, out_w = out_hw
    batch, channels, height, width = x.shape
    rows = F.adaptive_pool_splits(height, out_h)
    cols = F.adaptive_pool_splits(width, out_w)
    out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
    for i, (r0, r1) in enumerate(rows):
        for j, (c0, c1) in enumerate(cols):
            out[:, :, i, j] = x[:, :, r0:r1, c0:c1].mean(axis=(2, 3))
    return out


def _loop_adaptive_pool_backward(grad_out, input_shape):
    _, _, height, width = input_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    rows = F.adaptive_pool_splits(height, out_h)
    cols = F.adaptive_pool_splits(width, out_w)
    grad_in = np.zeros(input_shape, dtype=grad_out.dtype)
    for i, (r0, r1) in enumerate(rows):
        for j, (c0, c1) in enumerate(cols):
            area = (r1 - r0) * (c1 - c0)
            grad_in[:, :, r0:r1, c0:c1] += grad_out[:, :, i : i + 1, j : j + 1] / area
    return grad_in


class TestAdaptivePoolVectorized:
    # (in_h, in_w, out_h, out_w): tiling, unequal-tiling, overlapping
    # (5->3, 7->4), and expanding (2->3) windows.
    SIZES = [
        (8, 8, 2, 2),
        (6, 4, 3, 2),
        (5, 5, 3, 3),
        (7, 9, 4, 3),
        (2, 2, 3, 3),
        (4, 4, 4, 4),
    ]

    @pytest.mark.parametrize("h,w,oh,ow", SIZES)
    def test_forward_matches_loop_reference(self, h, w, oh, ow):
        x = _x((2, 3, h, w), seed=h * 10 + w)
        np.testing.assert_allclose(
            F.adaptive_avg_pool2d(x, (oh, ow)),
            _loop_adaptive_pool(x, (oh, ow)),
            atol=1e-6,
        )

    @pytest.mark.parametrize("h,w,oh,ow", SIZES)
    def test_backward_matches_loop_reference(self, h, w, oh, ow):
        grad = _x((2, 3, oh, ow), seed=h + w)
        np.testing.assert_allclose(
            F.adaptive_avg_pool2d_backward(grad, (2, 3, h, w)),
            _loop_adaptive_pool_backward(grad, (2, 3, h, w)),
            atol=1e-6,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_layer_gradcheck(self, backend):
        layer = nn.AdaptiveAvgPool2d(3)
        x = _x((2, 2, 5, 5), seed=9)
        with use_backend(backend):
            out = layer.forward(x)
            probe = np.random.default_rng(10).standard_normal(out.shape)
            probe = probe.astype(np.float32)
            grad_in = layer.backward(probe)
            loss = linear_probe_loss(layer, x, probe)
            assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2


# ----------------------------------------------------------------------
# Module.clear_caches (satellite).
# ----------------------------------------------------------------------
class TestClearCaches:
    def _model(self):
        nn.init.reset_layer_rng(5)
        return nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Dropout(0.5),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 3),
        )

    def test_clears_every_layer_cache(self):
        model = self._model()
        out = model(_x((2, 3, 8, 8)))
        model.backward(np.ones_like(out))
        conv, bn, relu, pool, drop, flat, linear = list(model)
        assert conv._cache_ctx is not None and bn._cache is not None
        model.clear_caches()
        assert conv._cache_ctx is None
        assert bn._cache is None
        assert relu._mask is None
        assert pool._cache is None
        assert drop._mask is None
        assert flat._cache_shape is None
        assert linear._cache_x is None

    def test_backward_after_clear_requires_forward(self):
        model = self._model()
        out = model(_x((2, 3, 8, 8)))
        model.clear_caches()
        with pytest.raises(RuntimeError):
            model.backward(np.ones_like(out))

    def test_parameters_and_grads_survive(self):
        model = self._model()
        out = model(_x((2, 3, 8, 8)))
        model.backward(np.ones_like(out))
        grads = {k: p.grad.copy() for k, p in model.named_parameters()}
        model.clear_caches()
        for key, param in model.named_parameters():
            np.testing.assert_array_equal(param.grad, grads[key])
