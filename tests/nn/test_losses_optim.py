"""Tests for loss functions, optimizers, and LR schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.module import Parameter
from repro.nn.optim import Adam, SGD, MultiStepLR, ReduceLROnPlateau
from tests.helpers import numerical_gradient

RNG = np.random.default_rng(13)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        loss, _ = nn.CrossEntropyLoss()(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_uniform_prediction_log_classes(self):
        logits = np.zeros((4, 8), dtype=np.float32)
        loss, _ = nn.CrossEntropyLoss()(logits, np.zeros(4, dtype=np.int64))
        np.testing.assert_allclose(loss, np.log(8), rtol=1e-5)

    def test_gradient_matches_numerical(self):
        logits = RNG.standard_normal((3, 5)).astype(np.float32)
        targets = np.array([1, 4, 0])
        ce = nn.CrossEntropyLoss()
        _, grad = ce(logits, targets)
        num = numerical_gradient(lambda: ce(logits, targets)[0], logits, eps=1e-3)
        np.testing.assert_allclose(grad, num, atol=2e-3)

    def test_ignore_index_masks_positions(self):
        logits = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        targets = np.array([[1, 0, 2], [3, 0, 0]])
        ce = nn.CrossEntropyLoss(ignore_index=0)
        _, grad = ce(logits, targets)
        assert np.abs(grad[0, 1]).max() == 0
        assert np.abs(grad[1, 1]).max() == 0
        assert np.abs(grad[0, 0]).max() > 0

    def test_all_ignored_returns_zero(self):
        ce = nn.CrossEntropyLoss(ignore_index=0)
        loss, grad = ce(np.zeros((1, 2, 3), dtype=np.float32), np.zeros((1, 2), dtype=np.int64))
        assert loss == 0.0
        assert np.abs(grad).max() == 0

    def test_gradient_sums_to_zero_per_row(self):
        """Softmax CE gradient rows sum to zero (probability simplex)."""
        logits = RNG.standard_normal((6, 9)).astype(np.float32)
        _, grad = nn.CrossEntropyLoss()(logits, RNG.integers(0, 9, 6))
        np.testing.assert_allclose(grad.sum(axis=-1), 0, atol=1e-6)


class TestOtherLosses:
    def test_mse_zero_at_target(self):
        x = RNG.standard_normal((3, 3)).astype(np.float32)
        loss, grad = nn.MSELoss()(x, x.copy())
        assert loss == 0
        assert np.abs(grad).max() == 0

    def test_mse_gradient(self):
        pred = RNG.standard_normal((4, 2)).astype(np.float32)
        target = RNG.standard_normal((4, 2)).astype(np.float32)
        mse = nn.MSELoss()
        _, grad = mse(pred, target)
        num = numerical_gradient(lambda: mse(pred, target)[0], pred)
        np.testing.assert_allclose(grad, num, atol=1e-3)

    def test_smooth_l1_quadratic_then_linear(self):
        loss_fn = nn.SmoothL1Loss(beta=1.0)
        small, _ = loss_fn(np.array([0.5]), np.array([0.0]))
        large, _ = loss_fn(np.array([3.0]), np.array([0.0]))
        np.testing.assert_allclose(small, 0.125)
        np.testing.assert_allclose(large, 2.5)

    def test_bce_matches_manual(self):
        logits = np.array([0.0], dtype=np.float32)
        loss, _ = nn.BCEWithLogitsLoss()(logits, np.array([1.0], dtype=np.float32))
        np.testing.assert_allclose(loss, np.log(2), rtol=1e-5)

    def test_bce_stable_at_extremes(self):
        logits = np.array([1e4, -1e4], dtype=np.float32)
        loss, grad = nn.BCEWithLogitsLoss()(logits, np.array([1.0, 0.0], dtype=np.float32))
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert nn.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(200 / 3)


class TestSGD:
    def test_plain_sgd_step(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0)
        p.grad = np.array([2.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = SGD([p], lr=1.0, momentum=0.5)
        for _ in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        # v1 = 1 -> p=-1; v2 = 0.5+1=1.5 -> p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay(self):
        p = Parameter(np.array([10.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 1.0])

    def test_apply_gradient_preserves_existing_grad(self):
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0)
        p.grad = np.array([7.0], dtype=np.float32)
        opt.apply_gradient(p, np.array([1.0], dtype=np.float32))
        np.testing.assert_allclose(p.data, [-0.1])
        np.testing.assert_allclose(p.grad, [7.0])  # untouched

    def test_apply_gradient_shares_momentum_state(self):
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = SGD([p], lr=1.0, momentum=0.5)
        opt.apply_gradient(p, np.array([1.0], dtype=np.float32))
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [-2.5])  # same as two chained steps

    def test_validation(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """Adam's bias correction makes the first step ~lr * sign(grad)."""
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-4)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.grad = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_per_param_time_steps_are_independent(self):
        p1 = Parameter(np.array([0.0], dtype=np.float32))
        p2 = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.array([1.0], dtype=np.float32)
        opt.step_param(p1)
        assert opt._t[id(p1)] == 1
        assert id(p2) not in opt._t


class TestSchedulers:
    def test_multistep_decays_at_milestones(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([p], lr=1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 1.0, 0.1, 0.1, 0.01])

    def test_plateau_reduces_after_patience(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([p], lr=1.0)
        sched = ReduceLROnPlateau(opt, patience=2, factor=0.5)
        sched.step(1.0)
        for _ in range(4):
            sched.step(1.0)  # no improvement
        assert opt.lr == 0.5

    def test_plateau_resets_on_improvement(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([p], lr=1.0)
        sched = ReduceLROnPlateau(opt, patience=2)
        sched.step(1.0)
        sched.step(0.5)
        sched.step(0.25)
        assert opt.lr == 1.0

    def test_plateau_max_mode(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([p], lr=1.0)
        sched = ReduceLROnPlateau(opt, mode="max", patience=0, factor=0.1)
        sched.step(10.0)
        sched.step(5.0)  # worse in max mode
        assert opt.lr == pytest.approx(0.1)

    def test_validation(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            MultiStepLR(opt, milestones=[4, 2])
        with pytest.raises(ValueError):
            ReduceLROnPlateau(opt, mode="sideways")


@given(lr=st.floats(1e-4, 1e-1), steps=st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_sgd_descends_convex_loss(lr, steps):
    """Property: SGD on a convex quadratic never increases the loss."""
    p = Parameter(np.array([3.0], dtype=np.float32))
    opt = SGD([p], lr=lr, momentum=0.0)
    prev = float(p.data[0] ** 2)
    for _ in range(steps):
        p.grad = 2 * p.data
        opt.step()
        current = float(p.data[0] ** 2)
        assert current <= prev + 1e-6
        prev = current
