"""Tests for Linear, Conv2d, Flatten, Sequential — including gradchecks."""

import numpy as np
import pytest

from repro import nn

from tests.helpers import linear_probe_loss, max_relative_error, numerical_gradient


RNG = np.random.default_rng(42)


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(RNG.standard_normal((4, 5)).astype(np.float32))
        assert out.shape == (4, 3)

    def test_forward_matches_manual(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = RNG.standard_normal((2, 3)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(x), expected, rtol=1e-6)

    def test_sequence_input(self):
        layer = nn.Linear(4, 6, rng=np.random.default_rng(0))
        x = RNG.standard_normal((2, 7, 4)).astype(np.float32)
        assert layer(x).shape == (2, 7, 6)

    def test_backward_gradcheck(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(1))
        x = RNG.standard_normal((5, 4)).astype(np.float32)
        probe = RNG.standard_normal((5, 3)).astype(np.float32)
        layer.forward(x)
        grad_in = layer.backward(probe)
        loss = linear_probe_loss(layer, x, probe)
        assert max_relative_error(layer.weight.grad, numerical_gradient(loss, layer.weight.data)) < 1e-2
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2

    def test_sequence_backward_gradcheck(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(2))
        x = RNG.standard_normal((2, 4, 3)).astype(np.float32)
        probe = RNG.standard_normal((2, 4, 2)).astype(np.float32)
        layer.forward(x)
        grad_in = layer.backward(probe)
        loss = linear_probe_loss(layer, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2

    def test_rejects_wrong_width(self):
        layer = nn.Linear(4, 3)
        with pytest.raises(ValueError):
            layer(np.zeros((2, 5), dtype=np.float32))

    def test_predictable_interface(self):
        layer = nn.Linear(4, 3)
        assert layer.output_units() == 3
        assert layer.gradient_size() == 5  # 4 weights + bias
        assert nn.Linear(4, 3, bias=False).gradient_size() == 4


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_backward_gradcheck(self, stride, padding):
        conv = nn.Conv2d(2, 3, 3, stride=stride, padding=padding,
                         rng=np.random.default_rng(3))
        x = RNG.standard_normal((2, 2, 7, 7)).astype(np.float32)
        out = conv.forward(x)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        conv.zero_grad()
        conv.forward(x)
        grad_in = conv.backward(probe)
        loss = linear_probe_loss(conv, x, probe)
        assert max_relative_error(conv.weight.grad, numerical_gradient(loss, conv.weight.data)) < 2e-2
        assert max_relative_error(conv.bias.grad, numerical_gradient(loss, conv.bias.data)) < 2e-2
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 2e-2

    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(RNG.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert out.shape == (2, 8, 8, 8)

    def test_rejects_wrong_channels(self):
        conv = nn.Conv2d(3, 8, 3)
        with pytest.raises(ValueError):
            conv(np.zeros((1, 4, 8, 8), dtype=np.float32))

    def test_gradient_accumulates_across_backwards(self):
        conv = nn.Conv2d(1, 1, 3, rng=np.random.default_rng(4))
        x = RNG.standard_normal((1, 1, 5, 5)).astype(np.float32)
        out = conv.forward(x)
        conv.backward(np.ones_like(out))
        first = conv.weight.grad.copy()
        conv.forward(x)
        conv.backward(np.ones_like(out))
        np.testing.assert_allclose(conv.weight.grad, 2 * first, rtol=1e-5)

    def test_predictable_interface(self):
        conv = nn.Conv2d(8, 16, 3)
        assert conv.output_units() == 16
        assert conv.gradient_size() == 8 * 9 + 1


class TestFlattenSequential:
    def test_flatten_round_trip(self):
        flat = nn.Flatten()
        x = RNG.standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = flat(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape

    def test_sequential_composes_forward_and_backward(self):
        rng = np.random.default_rng(5)
        seq = nn.Sequential(
            nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng)
        )
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        out = seq.forward(x)
        probe = RNG.standard_normal(out.shape).astype(np.float32)
        seq.forward(x)
        grad_in = seq.backward(probe)
        loss = linear_probe_loss(seq, x, probe)
        assert max_relative_error(grad_in, numerical_gradient(loss, x)) < 1e-2

    def test_sequential_indexing(self):
        seq = nn.Sequential(nn.ReLU(), nn.Flatten())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert [type(m).__name__ for m in seq] == ["ReLU", "Flatten"]

    def test_identity_passthrough(self):
        layer = nn.Identity()
        x = RNG.standard_normal((2, 2)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            nn.Flatten().backward(np.zeros((1, 4), dtype=np.float32))
        with pytest.raises(RuntimeError):
            nn.Linear(2, 2).backward(np.zeros((1, 2), dtype=np.float32))


class TestDefaultLayerRng:
    """The per-layer default rng policy (seed-sequence spawn per layer)."""

    def test_same_shape_layers_never_collide(self):
        assert not np.array_equal(
            nn.Linear(6, 6).weight.data, nn.Linear(6, 6).weight.data
        )
        assert not np.array_equal(
            nn.Conv2d(2, 3, 3).weight.data, nn.Conv2d(2, 3, 3).weight.data
        )

    def test_explicit_rng_still_reproducible(self):
        a = nn.Linear(4, 4, rng=np.random.default_rng(9)).weight.data
        b = nn.Linear(4, 4, rng=np.random.default_rng(9)).weight.data
        np.testing.assert_array_equal(a, b)

    def test_reset_layer_rng_restores_the_stream(self):
        from repro.nn import init

        init.reset_layer_rng(123)
        a = nn.Linear(4, 4).weight.data.copy()
        init.reset_layer_rng(123)
        b = nn.Linear(4, 4).weight.data.copy()
        init.reset_layer_rng()
        np.testing.assert_array_equal(a, b)
