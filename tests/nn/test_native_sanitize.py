"""The sanitizer build variant: distinct flags, hash and artifact path.

These are pure command-line/hash tests — no compiler needed — plus one
compile test gated on a toolchain being present.
"""

import pytest

from repro.nn.backend import native_build as nb


def test_sanitize_flags_in_command():
    cmd = nb._command("gcc", openmp=False, sanitize=True)
    assert "-fsanitize=address,undefined" in cmd
    assert "-fno-omit-frame-pointer" in cmd
    plain = nb._command("gcc", openmp=False, sanitize=False)
    assert "-fsanitize=address,undefined" not in plain


def test_sanitize_variant_has_distinct_hash_and_path():
    plain = nb.source_hash("gcc", openmp=True, sanitize=False)
    san = nb.source_hash("gcc", openmp=True, sanitize=True)
    assert plain != san
    plain_path = nb.lib_path("gcc", openmp=True, sanitize=False)
    san_path = nb.lib_path("gcc", openmp=True, sanitize=True)
    assert plain_path != san_path
    assert san_path.name.endswith("-san.so")
    assert not plain_path.name.endswith("-san.so")


def test_sanitize_env_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
    assert not nb.sanitize_enabled()
    monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "1")
    assert nb.sanitize_enabled()


def test_sanitize_build_compiles():
    if nb.find_compiler() is None or nb._disabled():
        pytest.skip("no C compiler available")
    path = nb.build(sanitize=True)
    assert path.exists()
    assert path.name.endswith("-san.so")
    # The plain variant is a different artifact; building one never
    # clobbers the other.
    plain = nb.build(sanitize=False)
    assert plain != path
