"""Documentation consistency + cross-module property tests."""

import pathlib
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import AcceleratorConfig, AcceleratorModel, AdaGPDesign
from repro.core import HeuristicSchedule
from repro.models import CLASSIFICATION_MODELS, spec_for

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDocs:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_top_level_docs_exist(self, name):
        assert (REPO / name).stat().st_size > 1000

    def test_design_md_experiment_index_points_at_real_modules(self):
        text = (REPO / "DESIGN.md").read_text()
        for module in re.findall(r"experiments\.(\w+)", text):
            assert (REPO / "src" / "repro" / "experiments" / f"{module}.py").exists(), module

    def test_design_md_bench_targets_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for bench in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert (REPO / "benchmarks" / bench).exists(), bench

    def test_readme_examples_exist(self):
        text = (REPO / "README.md").read_text()
        for example in re.findall(r"examples/(\w+\.py)", text):
            assert (REPO / "examples" / example).exists(), example

    def test_every_source_module_has_a_docstring(self):
        import ast

        missing = []
        for path in (REPO / "src").rglob("*.py"):
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None and path.stat().st_size > 0:
                missing.append(str(path))
        assert missing == []


class TestCrossModuleInvariants:
    @given(
        model=st.sampled_from(CLASSIFICATION_MODELS),
        batch=st.sampled_from([1, 8, 32, 128]),
    )
    @settings(max_examples=15, deadline=None)
    def test_gp_batch_never_dearer_than_bp_batch(self, model, batch):
        """Skipping backward must help for every model at every batch."""
        accelerator = AcceleratorModel()
        spec = spec_for(model, "Cifar10")
        for design in AdaGPDesign:
            gp = accelerator.phase_gp_batch(spec, batch, design).cycles
            bp = accelerator.phase_bp_batch(spec, batch, design).cycles
            assert gp < bp

    @given(rows=st.integers(4, 32), cols=st.integers(4, 32))
    @settings(max_examples=10, deadline=None)
    def test_bigger_arrays_never_slow_the_baseline(self, rows, cols):
        spec = spec_for("VGG13", "Cifar10")
        small = AcceleratorModel(AcceleratorConfig(rows=rows, cols=cols))
        big = AcceleratorModel(AcceleratorConfig(rows=rows * 2, cols=cols * 2))
        assert (
            big.baseline_batch(spec, 8).cycles
            <= small.baseline_batch(spec, 8).cycles
        )

    @given(warmup=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_speedup_monotone_in_warmup(self, warmup):
        """More warm-up epochs can only reduce the end-to-end speedup."""
        accelerator = AcceleratorModel()
        spec = spec_for("ResNet50", "Cifar10")
        shorter = accelerator.speedup(
            spec, AdaGPDesign.MAX, HeuristicSchedule(warmup_epochs=warmup), 40, 10
        )
        longer = accelerator.speedup(
            spec, AdaGPDesign.MAX, HeuristicSchedule(warmup_epochs=warmup + 5), 40, 10
        )
        assert longer <= shorter + 1e-9

    def test_traffic_components_nonnegative_for_all_models(self):
        accelerator = AcceleratorModel()
        for name in CLASSIFICATION_MODELS:
            spec = spec_for(name, "Cifar10")
            cost = accelerator.phase_gp_batch(spec, 8, AdaGPDesign.LOW)
            assert cost.traffic.dram_read > 0
            assert cost.traffic.dram_write > 0
            assert cost.traffic.sram > 0
