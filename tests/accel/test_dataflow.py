"""Tests for the systolic-array cycle models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import AcceleratorConfig, DataflowKind
from repro.accel.dataflow import (
    gemm_cycles,
    gemm_cycles_is,
    gemm_cycles_os,
    gemm_cycles_ws,
    layer_backward_cycles,
    layer_forward_cycles,
    rs_conv_cycles,
    utilization,
)
from repro.models.specs import LayerKind, LayerSpec, SpecBuilder

CFG = AcceleratorConfig()  # 12 x 15 = 180 PEs, WS


def _conv_spec(in_ch=64, out_ch=64, k=3, size=28, stride=1, pad=1):
    builder = SpecBuilder("t", (in_ch, size, size))
    builder.conv(out_ch, k, stride=stride, padding=pad)
    return builder.build().layers[0]


class TestGemmCycles:
    def test_single_fold_ws(self):
        """GEMM fitting the array exactly: one fold of fill+stream+drain."""
        cycles = gemm_cycles_ws(m=15, k=12, n=100, rows=12, cols=15)
        assert cycles == 12 + (100 + 12 + 15 - 2)

    def test_folds_multiply(self):
        one = gemm_cycles_ws(15, 12, 100, 12, 15)
        four = gemm_cycles_ws(30, 24, 100, 12, 15)
        assert four == 4 * one

    def test_os_streams_reduction(self):
        cycles = gemm_cycles_os(m=12, k=500, n=15, rows=12, cols=15)
        assert cycles == 500 + 12 + 15 - 2 + 12

    def test_is_streams_weights(self):
        cycles = gemm_cycles_is(m=300, k=12, n=15, rows=12, cols=15)
        assert cycles == 12 + (300 + 12 + 15 - 2)

    def test_dispatch_matches_direct(self):
        assert gemm_cycles(20, 30, 40, CFG) == gemm_cycles_ws(20, 30, 40, 12, 15)
        os_cfg = CFG.with_dataflow(DataflowKind.OUTPUT_STATIONARY)
        assert gemm_cycles(20, 30, 40, os_cfg) == gemm_cycles_os(20, 30, 40, 12, 15)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            gemm_cycles(0, 1, 1, CFG)

    @given(
        m=st.integers(1, 200), k=st.integers(1, 200), n=st.integers(1, 500)
    )
    @settings(max_examples=60, deadline=None)
    def test_cycles_bounded_below_by_ideal(self, m, k, n):
        """No dataflow can beat perfect PE utilization."""
        for flow in (gemm_cycles_ws, gemm_cycles_os, gemm_cycles_is):
            cycles = flow(m, k, n, 12, 15)
            assert cycles >= m * k * n / 180

    @given(m=st.integers(1, 64), k=st.integers(1, 64), n=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_cycles_monotone_in_n(self, m, k, n):
        assert gemm_cycles_ws(m, k, n + 1, 12, 15) >= gemm_cycles_ws(m, k, n, 12, 15)


class TestLayerCycles:
    def test_backward_roughly_twice_forward(self):
        """The paper's BW ~ 2x FW assumption should emerge for big convs."""
        spec = _conv_spec(in_ch=128, out_ch=128, size=28)
        fw = layer_forward_cycles(spec, 32, CFG)
        bw = layer_backward_cycles(spec, 32, CFG)
        assert 1.6 < bw / fw < 2.4

    def test_pool_layers_are_cheap(self):
        builder = SpecBuilder("t", (64, 28, 28))
        builder.pool(2)
        pool = builder.build().layers[0]
        conv = _conv_spec()
        assert layer_forward_cycles(pool, 32, CFG) < layer_forward_cycles(
            conv, 32, CFG
        ) / 100

    def test_rs_conv_uses_logical_pe_mapping(self):
        spec = _conv_spec(size=28)
        rs_cfg = CFG.with_dataflow(DataflowKind.ROW_STATIONARY)
        cycles = rs_conv_cycles(spec, 1, rs_cfg)
        logical = spec.kernel_size * spec.out_h
        folds = -(-logical // 180)
        expected = folds * (3 * 28 * 64 * 64) + (12 + 15 - 2)
        assert cycles == expected

    def test_rs_rejects_non_conv(self):
        fc = LayerSpec(name="fc", kind=LayerKind.LINEAR, in_channels=10,
                       out_channels=10, out_h=1, out_w=1)
        with pytest.raises(ValueError):
            rs_conv_cycles(fc, 1, CFG)

    def test_utilization_bounded(self):
        spec = _conv_spec(in_ch=256, out_ch=256, size=14)
        for flow in DataflowKind:
            cfg = CFG.with_dataflow(flow)
            u = utilization(spec, 32, cfg)
            assert 0.0 < u <= 1.0

    def test_batch_scales_forward_work(self):
        spec = _conv_spec()
        one = layer_forward_cycles(spec, 1, CFG)
        thirty_two = layer_forward_cycles(spec, 32, CFG)
        assert 20 < thirty_two / one <= 33


class TestAcceleratorConfig:
    def test_num_pes(self):
        assert CFG.num_pes == 180

    def test_with_dataflow_preserves_other_fields(self):
        other = CFG.with_dataflow(DataflowKind.ROW_STATIONARY)
        assert other.rows == CFG.rows
        assert other.dataflow == DataflowKind.ROW_STATIONARY

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(rows=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(dram_bandwidth_bytes_per_cycle=0)
