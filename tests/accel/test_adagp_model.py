"""Tests for the end-to-end accelerator cost model and its invariants."""

import pytest

from repro.accel import (
    AcceleratorConfig,
    AcceleratorModel,
    AdaGPDesign,
    DataflowKind,
)
from repro.accel.adagp import _overlapped
from repro.core import HeuristicSchedule
from repro.models import spec_for

MODEL = AcceleratorModel()
SCHEDULE = HeuristicSchedule()  # paper defaults: L=10, 4:1/3:1/2:1/1:1


class TestBatchCosts:
    def test_gp_batch_cheaper_than_bp_batch(self):
        spec = spec_for("VGG13", "Cifar10")
        for design in AdaGPDesign:
            bp = MODEL.phase_bp_batch(spec, 32, design)
            gp = MODEL.phase_gp_batch(spec, 32, design)
            assert gp.cycles < bp.cycles / 2

    def test_bp_phase_slower_than_plain_baseline(self):
        """Phase BP adds predictor work on top of ordinary backprop."""
        spec = spec_for("VGG13", "Cifar10")
        base = MODEL.baseline_batch(spec, 32)
        for design in (AdaGPDesign.LOW, AdaGPDesign.EFFICIENT):
            bp = MODEL.phase_bp_batch(spec, 32, design)
            assert bp.cycles > base.cycles

    def test_max_hides_predictor_latency(self):
        spec = spec_for("VGG13", "Cifar10")
        eff = MODEL.phase_bp_batch(spec, 32, AdaGPDesign.EFFICIENT)
        max_ = MODEL.phase_bp_batch(spec, 32, AdaGPDesign.MAX)
        assert max_.cycles < eff.cycles

    def test_low_pays_weight_streaming(self):
        spec = spec_for("VGG13", "Cifar10")
        eff = MODEL.phase_gp_batch(spec, 32, AdaGPDesign.EFFICIENT)
        low = MODEL.phase_gp_batch(spec, 32, AdaGPDesign.LOW)
        assert low.cycles > eff.cycles
        assert low.traffic.dram_read > eff.traffic.dram_read

    def test_gp_traffic_below_baseline(self):
        """§6.6.2: GP batches skip the entire backward traffic."""
        spec = spec_for("VGG13", "ImageNet")
        base = MODEL.baseline_batch(spec, 32)
        gp = MODEL.phase_gp_batch(spec, 32, AdaGPDesign.EFFICIENT)
        assert gp.traffic.dram_total < base.traffic.dram_total * 0.6


class TestSpeedups:
    @pytest.mark.parametrize("dataset", ["Cifar10", "ImageNet"])
    def test_design_ordering(self, dataset):
        """MAX >= Efficient >= LOW for every model."""
        for name in ("VGG13", "ResNet50", "MobileNet-V2"):
            spec = spec_for(name, dataset)
            low = MODEL.speedup(spec, AdaGPDesign.LOW, SCHEDULE, 90, 20)
            eff = MODEL.speedup(spec, AdaGPDesign.EFFICIENT, SCHEDULE, 90, 20)
            max_ = MODEL.speedup(spec, AdaGPDesign.MAX, SCHEDULE, 90, 20)
            assert low <= eff <= max_

    def test_speedup_in_paper_range(self):
        """Paper: MAX averages ~1.46-1.48x, up to ~1.58x."""
        speedups = []
        for name in ("ResNet50", "VGG13", "DenseNet121", "MobileNet-V2"):
            spec = spec_for(name, "ImageNet")
            speedups.append(MODEL.speedup(spec, AdaGPDesign.MAX, SCHEDULE, 90, 20))
        mean = sum(speedups) / len(speedups)
        assert 1.3 < mean < 1.6
        assert max(speedups) < 1.75

    def test_all_dataflows_give_speedup(self):
        spec = spec_for("ResNet50", "Cifar10")
        for flow in DataflowKind:
            model = AcceleratorModel(AcceleratorConfig(dataflow=flow))
            assert model.speedup(spec, AdaGPDesign.MAX, SCHEDULE, 90, 20) > 1.2

    def test_no_warmup_all_gp_approaches_three_x(self):
        """With pure GP (never backprop) the bound is ~3x (paper §1)."""
        all_gp = HeuristicSchedule(warmup_epochs=0, ladder=(), final_ratio=(1, 0))
        spec = spec_for("VGG16", "ImageNet")
        speedup = MODEL.speedup(spec, AdaGPDesign.MAX, all_gp, 90, 20)
        assert 2.4 < speedup < 3.2

    def test_more_warmup_means_less_speedup(self):
        spec = spec_for("ResNet50", "Cifar10")
        fast = MODEL.speedup(spec, AdaGPDesign.MAX, HeuristicSchedule(warmup_epochs=5), 90, 20)
        slow = MODEL.speedup(spec, AdaGPDesign.MAX, HeuristicSchedule(warmup_epochs=60), 90, 20)
        assert slow < fast


class TestCharacterization:
    def test_fig16_structure(self):
        spec = spec_for("VGG13", "Cifar10")
        rows = MODEL.layer_characterization(spec, AdaGPDesign.EFFICIENT, 32)
        conv_rows = [r for r in rows if r.name.startswith("conv")]
        assert len(conv_rows) == 10
        for row in conv_rows:
            assert row.phase_gp < row.baseline  # GP skips backward
            assert row.phase_bp >= row.baseline  # BP adds predictor work


class TestOverlap:
    def test_fully_hidden_aux(self):
        assert _overlapped([10, 10, 10], [1, 1, 1]) == 31  # 10+10+10 + last 1

    def test_aux_longer_than_next_layer_stalls(self):
        # layer2 waits for layer1's aux (20 > 10).
        assert _overlapped([10, 10], [20, 5]) == 10 + 20 + 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _overlapped([1], [1, 2])
