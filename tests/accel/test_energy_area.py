"""Tests for the traffic/energy model and the FPGA/ASIC cost tables."""

import pytest

from repro.accel import (
    AdaGPDesign,
    Traffic,
    area_overhead,
    asic_area,
    asic_power,
    energy_saving,
    equal_resource_pe_bonus,
    fpga_power,
    fpga_resources,
    traffic_energy,
    training_energy,
)
from repro.accel.memory import (
    layer_backward_traffic,
    layer_forward_traffic,
    layer_gp_update_traffic,
)
from repro.accel.config import AcceleratorConfig
from repro.models import spec_for
from repro.models.specs import SpecBuilder

CFG = AcceleratorConfig()


def _conv_spec():
    builder = SpecBuilder("t", (16, 8, 8))
    builder.conv(32, 3, padding=1)
    return builder.build().layers[0]


class TestTraffic:
    def test_traffic_adds_and_scales(self):
        a = Traffic(dram_read=1, dram_write=2, sram=3)
        b = Traffic(dram_read=10, dram_write=20, sram=30)
        assert (a + b).dram_total == 33
        assert a.scaled(4).sram == 12

    def test_forward_traffic_components(self):
        spec = _conv_spec()
        t = layer_forward_traffic(spec, 4, CFG)
        weights = 32 * 16 * 9 * 2
        inputs = 16 * 64 * 4 * 2
        outputs = 32 * 64 * 4 * 2
        assert t.dram_read == weights + inputs
        assert t.dram_write == outputs

    def test_backward_traffic_exceeds_forward(self):
        spec = _conv_spec()
        fw = layer_forward_traffic(spec, 4, CFG)
        bw = layer_backward_traffic(spec, 4, CFG)
        assert bw.dram_total > fw.dram_total

    def test_gp_update_touches_only_weights(self):
        spec = _conv_spec()
        t = layer_gp_update_traffic(spec, 4, CFG)
        assert t.dram_read == 0
        assert t.dram_write == spec.weight_params * 2


class TestEnergy:
    def test_traffic_energy_conversion(self):
        e = traffic_energy(Traffic(dram_read=10**12, dram_write=0, sram=0))
        assert e.dram_joules == pytest.approx(50.0)
        assert e.total_joules == pytest.approx(50.0)

    def test_energy_saving_in_paper_range(self):
        """Paper: ~34% average memory-energy saving."""
        savings = [
            energy_saving(
                spec_for(name, "ImageNet"), AdaGPDesign.EFFICIENT,
                epochs=90, batches_per_epoch=20,
            )
            for name in ("VGG13", "ResNet50", "DenseNet121")
        ]
        mean = sum(savings) / len(savings)
        assert 0.25 < mean < 0.45

    def test_baseline_uses_no_design(self):
        from repro.core import HeuristicSchedule

        spec = spec_for("VGG13", "Cifar10")
        base = training_energy(spec, None, epochs=2, batches_per_epoch=10)
        # All-warm-up runs cost slightly MORE than baseline (predictor
        # training traffic) — the saving comes from GP batches.
        warmup_only = training_energy(
            spec, AdaGPDesign.EFFICIENT, epochs=2, batches_per_epoch=10,
            schedule=HeuristicSchedule(warmup_epochs=10),
        )
        assert warmup_only.total_joules > base.total_joules
        with_gp = training_energy(
            spec, AdaGPDesign.EFFICIENT, epochs=2, batches_per_epoch=10,
            schedule=HeuristicSchedule(warmup_epochs=0),
        )
        assert with_gp.total_joules < base.total_joules


class TestFpgaTables:
    def test_baseline_matches_paper_table4a(self):
        r = fpga_resources(None)
        assert r.clb_luts == 472004
        assert r.clb_registers == 31402
        assert r.ramb36 == 1327
        assert r.ramb18 == 514
        assert r.dsp48 == 166

    def test_designs_match_paper_table4a(self):
        assert fpga_resources(AdaGPDesign.LOW).clb_luts == 489286
        assert fpga_resources(AdaGPDesign.EFFICIENT).clb_luts == 493171
        assert fpga_resources(AdaGPDesign.EFFICIENT).ramb36 == 2407
        assert fpga_resources(AdaGPDesign.MAX).clb_luts == 494080
        assert fpga_resources(AdaGPDesign.MAX).dsp48 == 246
        assert fpga_resources(AdaGPDesign.MAX).clb_registers == 37452

    def test_power_totals_match_paper_table4b(self):
        assert fpga_power(None).total == pytest.approx(3.712, abs=2e-3)
        assert fpga_power(AdaGPDesign.LOW).total == pytest.approx(3.745, abs=2e-3)
        assert fpga_power(AdaGPDesign.EFFICIENT).total == pytest.approx(3.844, abs=2e-3)
        assert fpga_power(AdaGPDesign.MAX).total == pytest.approx(3.856, abs=2e-3)

    def test_power_overheads_match_paper_percentages(self):
        """Paper §6.6.1: +0.8%, +3.5%, +3.8% on-chip power."""
        base = fpga_power(None).total
        assert fpga_power(AdaGPDesign.LOW).total / base - 1 == pytest.approx(0.008, abs=2e-3)
        assert fpga_power(AdaGPDesign.MAX).total / base - 1 == pytest.approx(0.038, abs=2e-3)


class TestAsicTables:
    def test_baseline_matches_paper_table5a(self):
        a = asic_area(None)
        assert a.combinational == 2331250
        assert a.total == 2982691

    def test_design_areas_match_paper_table5a(self):
        assert asic_area(AdaGPDesign.LOW).total == 3035954
        assert asic_area(AdaGPDesign.EFFICIENT).total == 3062890
        assert asic_area(AdaGPDesign.MAX).total == 3231136

    def test_area_overheads_match_paper_percentages(self):
        """Paper: +1.7%, +2.6%, +8.3% total area."""
        assert area_overhead(AdaGPDesign.LOW) == pytest.approx(0.017, abs=2e-3)
        assert area_overhead(AdaGPDesign.EFFICIENT) == pytest.approx(0.026, abs=2e-3)
        assert area_overhead(AdaGPDesign.MAX) == pytest.approx(0.083, abs=2e-3)

    def test_asic_power_magnitudes(self):
        base = asic_power(None)
        assert base.total == pytest.approx(2.24e5, rel=0.01)
        assert asic_power(AdaGPDesign.MAX).total > base.total

    def test_equal_resource_bonus(self):
        assert equal_resource_pe_bonus(AdaGPDesign.MAX, "fpga") == pytest.approx(0.10)
        assert equal_resource_pe_bonus(AdaGPDesign.MAX, "asic") == pytest.approx(0.11)
        assert 0 < equal_resource_pe_bonus(AdaGPDesign.LOW, "asic") < 0.11
        with pytest.raises(ValueError):
            equal_resource_pe_bonus(AdaGPDesign.MAX, "gpu")
