"""Backend-aware calibration of the cycle model (accel/calibrate.py)."""

import json

import numpy as np
import pytest

from repro.accel import (
    AcceleratorConfig,
    CalibrationReport,
    OpCalibration,
    calibrate,
    calibrate_from_bench,
    calibrated_config,
)
from repro.accel.calibrate import OP_CYCLE_MODELS


CONFIG = AcceleratorConfig()


def _synthetic_timings(fused_ms):
    """A BENCH_engine-shaped op table with chosen fused timings."""
    return {
        op: {"numpy_ms": 2.0 * ms, "fused_ms": ms}
        for op, ms in fused_ms.items()
    }


class TestOpCalibration:
    def test_implied_mhz_is_cycles_over_time(self):
        cycles = OP_CYCLE_MODELS["linear_fwd"](CONFIG)
        # 1 ms for `cycles` cycles -> cycles kHz = cycles/1e3 MHz.
        op = OpCalibration.from_timing("linear_fwd", 1.0, CONFIG)
        assert op.model_cycles == cycles
        assert op.implied_mhz == pytest.approx(cycles / 1e3)

    def test_nonpositive_timing_raises(self):
        with pytest.raises(ValueError):
            OpCalibration.from_timing("linear_fwd", 0.0, CONFIG)


class TestCalibrate:
    def test_median_aggregate_and_cost_scale(self):
        # Pick timings so each op's implied MHz is exactly
        # cycles / (ms * 1e3); with three ops the aggregate is the
        # middle value and cost_scale is aggregate / per-op.
        timings = _synthetic_timings(
            {"linear_fwd": 1.0, "conv1x1_fwd": 2.0, "attn_scores": 0.5}
        )
        report = calibrate(timings, config=CONFIG)
        implied = {
            op: OP_CYCLE_MODELS[op](CONFIG) / (ms * 1e3)
            for op, ms in (
                ("linear_fwd", 1.0),
                ("conv1x1_fwd", 2.0),
                ("attn_scores", 0.5),
            )
        }
        assert report.implied_mhz == pytest.approx(
            sorted(implied.values())[1]
        )
        scale = report.cost_scale()
        for op, mhz in implied.items():
            assert scale[op] == pytest.approx(report.implied_mhz / mhz)
        # The median op's scale is exactly 1 — the model is calibrated
        # around it.
        median_op = min(
            implied, key=lambda op: abs(implied[op] - report.implied_mhz)
        )
        assert scale[median_op] == pytest.approx(1.0)

    def test_even_count_aggregate_is_midpoint(self):
        timings = _synthetic_timings({"linear_fwd": 1.0, "conv1x1_fwd": 1.0})
        report = calibrate(timings, config=CONFIG)
        values = sorted(op.implied_mhz for op in report.ops)
        assert report.implied_mhz == pytest.approx(0.5 * sum(values))

    def test_unknown_ops_skipped_and_backend_column(self):
        timings = _synthetic_timings({"linear_fwd": 1.0})
        timings["exotic_op"] = {"fused_ms": 3.0}  # no cycle model: skipped
        report = calibrate(timings, config=CONFIG, backend="numpy")
        assert [op.op for op in report.ops] == ["linear_fwd"]
        # numpy column is 2x the fused one -> half the implied MHz.
        fused = calibrate(timings, config=CONFIG, backend="fused")
        assert report.implied_mhz == pytest.approx(fused.implied_mhz / 2.0)

    def test_no_calibratable_ops_raises(self):
        with pytest.raises(ValueError, match="no calibratable ops"):
            calibrate({"exotic_op": {"fused_ms": 1.0}}, config=CONFIG)

    def test_seconds_for_cycles_round_trip(self):
        timings = _synthetic_timings({"linear_fwd": 1.0})
        report = calibrate(timings, config=CONFIG)
        cycles = OP_CYCLE_MODELS["linear_fwd"](CONFIG)
        # The calibrating op itself maps back onto its measured time.
        assert report.seconds_for_cycles(cycles) == pytest.approx(1e-3)


class TestBenchFile:
    def test_calibrate_from_synthetic_bench_file(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(
            json.dumps(
                {
                    "fused_gate": {
                        "ops": _synthetic_timings(
                            {"linear_fwd": 1.0, "bn_moments": 0.4}
                        )
                    },
                    "meta": {"python": "3.11"},
                }
            )
        )
        report = calibrate_from_bench(path)
        assert {op.op for op in report.ops} == {"linear_fwd", "bn_moments"}
        assert report.backend == "fused"
        assert np.isfinite(report.implied_mhz)

    def test_missing_section_raises(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({"meta": {}}))
        with pytest.raises(ValueError, match="fused_gate"):
            calibrate_from_bench(path)


class TestCalibratedConfig:
    def test_frequency_replaced_everything_else_kept(self):
        timings = _synthetic_timings({"linear_fwd": 1.0})
        report = calibrate(timings, config=CONFIG)
        config = calibrated_config(report, CONFIG)
        assert config.frequency_mhz == pytest.approx(report.implied_mhz)
        assert config.rows == CONFIG.rows
        assert config.cols == CONFIG.cols
        assert config.dataflow == CONFIG.dataflow

    def test_report_on_real_record_when_present(self):
        """Calibrating the repo's own BENCH_engine.json must work."""
        from pathlib import Path

        record = Path(__file__).resolve().parents[2] / "BENCH_engine.json"
        if not record.exists():
            pytest.skip("no BENCH_engine.json at repo root")
        report = calibrate_from_bench(record)
        assert report.implied_mhz > 0
        assert len(report.ops) >= 4
