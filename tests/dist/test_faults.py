"""Fault-injection tests: the "faulted ≡ unfaulted" parity rung.

A seeded :class:`ChaosTransport` turns every distributed failure mode
into a deterministic fixture.  The acceptance property (ISSUE 9): under
the identity codec, a run with injected kills / timeouts / corruption /
duplicates is *bitwise identical* — History and final state — to the
unfaulted run, because recovery rebuilds a rank from the retained
phase-boundary state plus a replay of its accepted-command log.

Past the rebuild budget the contract weakens by design: a permanently
forfeited rank re-shards the batch layout, so the run is no longer
unfaulted-bitwise — but it *is* bitwise-reproducible across identical
fault schedules, finishes with finite losses, and degrades to serial
below ``min_workers`` instead of aborting.
"""

import os
import pickle

import numpy as np
import pytest

from repro import nn
from repro.core import HeuristicSchedule
from repro.data import synthetic_images
from repro.dist import (
    ChaosTransport,
    Fault,
    LocalTransport,
    PayloadCorrupt,
    WorkerDied,
    WorkerTimeout,
    chaos,
    corrupt_frame,
    ddp_engine,
    dp_strategy,
    frame_payload,
    list_transports,
    resolve_transport,
    shutdown,
    unframe_payload,
)
from repro.nn.losses import CrossEntropyLoss, accuracy


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _split():
    return synthetic_images(3, 48, 24, image_size=8, seed=0)


def _run(transport, codec="identity", workers=2, epochs=3, **kwargs):
    """One short BP+GP fit; returns (History, state bytes, strategy)."""
    split = _split()
    engine = ddp_engine(
        _model(0),
        CrossEntropyLoss(),
        workers=workers,
        transport=transport,
        codec=codec,
        lr=0.05,
        metric_fn=accuracy,
        # Warm-up epoch is all-BP; later epochs interleave 2 GP per BP,
        # so both phases (and both boundary syncs) see traffic.
        schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
        retry_backoff=0.0,  # chaos timeouts are schedule-driven, not waits
        **kwargs,
    )
    history = engine.fit(
        lambda: split.train.batches(16, rng=np.random.default_rng(1)),
        lambda: split.val.batches(24, shuffle=False),
        epochs,
    )
    state = pickle.dumps(engine.state_dict())
    strategy = dp_strategy(engine)
    shutdown(engine)
    return history, state, strategy


@pytest.fixture(scope="module")
def unfaulted():
    """The clean-run baseline every faulted run must reproduce bitwise
    (LocalTransport; the Local ≡ Process rung makes it transport-free)."""
    history, state, _ = _run("local")
    return history, state


# Matrix rows: each targets one fault kind at a specific command in a
# specific phase (op="compute" → BP gradient gather, op="gp" → a GP run).
MATRIX = [
    ("kill", "compute"),
    ("kill", "gp"),
    ("delay", "compute"),
    ("delay", "gp"),
    ("drop", "compute"),
    ("drop", "gp"),
    ("corrupt", "compute"),
    ("corrupt", "gp"),
    ("duplicate", "compute"),
    ("duplicate", "gp"),
]

# Recovery action the ledger must show for each kind (duplicates are
# absorbed by sequence dedup without touching the recovery machinery).
EXPECT_REBUILD = {"kill": True, "delay": False, "drop": True, "corrupt": True}


class TestFaultMatrixLocal:
    @pytest.mark.parametrize("kind,op", MATRIX, ids=[f"{k}-{o}" for k, o in MATRIX])
    def test_faulted_equals_unfaulted_bitwise(self, unfaulted, kind, op):
        wrapper = ChaosTransport("local", faults=[Fault(kind, rank=1, op=op, nth=1)])
        history, state, strategy = _run(wrapper)
        h0, s0 = unfaulted
        assert [e.kind for e in wrapper.events] == [kind]  # it really fired
        assert history == h0
        assert state == s0
        if kind != "duplicate":
            totals = strategy.comm.totals()
            assert totals["faults"] >= 1
            assert (totals["rebuilds"] >= 1) == EXPECT_REBUILD[kind]

    def test_fault_ledger_records_kind_and_rank(self, unfaulted):
        wrapper = ChaosTransport(
            "local", faults=[Fault("kill", rank=1, op="compute", nth=0)]
        )
        _, _, strategy = _run(wrapper)
        died = [f for f in strategy.fault_log if f["kind"] == "died"]
        assert died and died[0]["rank"] == 1

    def test_multiple_faults_one_run_still_bitwise(self, unfaulted):
        wrapper = ChaosTransport(
            "local",
            faults=[
                Fault("kill", rank=1, op="compute", nth=0),
                Fault("delay", rank=1, op="gp", nth=1),
                Fault("duplicate", rank=1, op="apply", nth=2),
            ],
        )
        history, state, _ = _run(wrapper)
        h0, s0 = unfaulted
        assert len(wrapper.events) == 3
        assert history == h0
        assert state == s0


@pytest.mark.skipif(os.cpu_count() < 2, reason="process chaos wants 2+ cores")
class TestFaultMatrixProcess:
    """The same contract over real processes: kills are SIGKILL, drops
    burn real (tiny) deadlines.  Two cells, not the full matrix — the
    chaos layer is transport-agnostic and Local ≡ Process is already a
    parity gate."""

    @pytest.mark.parametrize(
        "kind,op", [("kill", "compute"), ("delay", "gp")], ids=["kill-bp", "delay-gp"]
    )
    def test_faulted_equals_unfaulted_bitwise(self, unfaulted, kind, op):
        wrapper = ChaosTransport(
            "process", faults=[Fault(kind, rank=1, op=op, nth=1)]
        )
        history, state, _ = _run(wrapper, timeout=20.0)
        h0, s0 = unfaulted
        assert [e.kind for e in wrapper.events] == [kind]
        assert history == h0
        assert state == s0


class TestAdaCompRecovery:
    def test_residual_reset_is_deterministic(self):
        """AdaComp faulted runs are not unfaulted-bitwise (the rebuilt
        rank's residuals restart from the boundary, not from genesis) —
        but two identical fault schedules must reproduce each other
        bitwise, which is what makes chaos runs debuggable."""
        spec = [Fault("kill", rank=1, op="compute", nth=2)]
        h1, s1, _ = _run(ChaosTransport("local", faults=spec), codec="adacomp")
        h2, s2, _ = _run(ChaosTransport("local", faults=spec), codec="adacomp")
        assert h1 == h2
        assert s1 == s2

    def test_adacomp_faulted_still_trains(self):
        history, _, strategy = _run(
            ChaosTransport("local", faults=[Fault("kill", rank=1, op="compute", nth=1)]),
            codec="adacomp",
        )
        assert np.isfinite(history.train_loss).all()
        assert strategy.comm.totals()["rebuilds"] >= 1


class TestPermanentLoss:
    def test_forfeit_degrades_to_serial_below_min_workers(self):
        """With no rebuild budget, the first kill permanently forfeits
        the rank; a 2-rank world then drops below the floor and degrades
        to serial with a warning instead of aborting the fit."""
        wrapper = ChaosTransport(
            "local", faults=[Fault("kill", rank=1, op="compute", nth=1)]
        )
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            history, _, strategy = _run(wrapper, max_rebuilds=0)
        assert strategy._serial
        assert strategy._active == [0]
        assert np.isfinite(history.train_loss).all()
        forfeits = [f for f in strategy.fault_log if f["kind"] == "forfeit"]
        assert [f["rank"] for f in forfeits] == [1]

    def test_three_rank_world_reshards_over_survivors(self):
        """Losing one of three ranks re-shards over the other two (above
        the default floor of 2) and keeps training parallel."""
        wrapper = ChaosTransport(
            "local", faults=[Fault("kill", rank=2, op="compute", nth=1)]
        )
        with pytest.warns(RuntimeWarning, match="permanently lost"):
            history, _, strategy = _run(wrapper, workers=3, max_rebuilds=0)
        assert not strategy._serial
        assert strategy._active == [0, 1]
        assert np.isfinite(history.train_loss).all()

    def test_min_workers_floor_is_honoured(self):
        wrapper = ChaosTransport(
            "local", faults=[Fault("kill", rank=2, op="compute", nth=1)]
        )
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            _, _, strategy = _run(wrapper, workers=3, max_rebuilds=0, min_workers=3)
        assert strategy._serial

    def test_forfeited_runs_reproduce_each_other(self):
        spec = lambda: ChaosTransport(  # noqa: E731 - tiny local fixture
            "local", faults=[Fault("kill", rank=1, op="compute", nth=3)]
        )
        h1, s1, _ = _run(spec(), max_rebuilds=0)
        h2, s2, _ = _run(spec(), max_rebuilds=0)
        assert h1 == h2
        assert s1 == s2


class TestChaosTransportUnit:
    """The injector itself, against a raw transport."""

    class EchoWorker:
        def __init__(self, rank):
            self.rank = rank

        def handle(self, cmd):
            reply = {"rank": self.rank, "value": cmd.get("value")}
            if "seq" in cmd:
                reply["seq"] = cmd["seq"]
            return reply

    @staticmethod
    def _factory(rank):
        return TestChaosTransportUnit.EchoWorker(rank)

    def _chaos(self, **kwargs):
        wrapper = ChaosTransport("local", world_size=2, **kwargs)
        wrapper.start(self._factory)
        return wrapper

    def test_kill_raises_worker_died_and_respawn_recovers(self):
        wrapper = self._chaos(faults=[Fault("kill", rank=1)])
        wrapper.submit(1, {"op": "echo", "value": 7, "seq": 0})
        with pytest.raises(WorkerDied):
            wrapper.collect(1)
        assert not wrapper.alive(1)
        wrapper.respawn_rank(1)
        wrapper.submit(1, {"op": "echo", "value": 8, "seq": 1})
        assert wrapper.collect(1)["value"] == 8

    def test_delay_parks_then_delivers(self):
        wrapper = self._chaos(faults=[Fault("delay", rank=1)])
        wrapper.submit(1, {"op": "echo", "value": 7, "seq": 0})
        with pytest.raises(WorkerTimeout):
            wrapper.collect(1)
        assert wrapper.collect(1)["value"] == 7  # the parked real reply

    def test_drop_times_out_until_next_submit(self):
        wrapper = self._chaos(faults=[Fault("drop", rank=1)])
        wrapper.submit(1, {"op": "echo", "value": 7, "seq": 0})
        for _ in range(3):  # retries fail fast, no deadline burned
            with pytest.raises(WorkerTimeout):
                wrapper.collect(1)
        wrapper.submit(1, {"op": "echo", "value": 8, "seq": 1})
        assert wrapper.collect(1)["value"] == 8

    def test_corrupt_travels_the_real_crc_path(self):
        wrapper = self._chaos(faults=[Fault("corrupt", rank=1)])
        wrapper.submit(1, {"op": "echo", "value": 7, "seq": 0})
        with pytest.raises(PayloadCorrupt):
            wrapper.collect(1)

    def test_duplicate_delivers_then_replays_stale(self):
        wrapper = self._chaos(faults=[Fault("duplicate", rank=1)])
        wrapper.submit(1, {"op": "echo", "value": 7, "seq": 0})
        first = wrapper.collect(1)
        assert first["seq"] == 0
        wrapper.submit(1, {"op": "echo", "value": 8, "seq": 1})
        stale = wrapper.collect(1)
        assert stale["seq"] == 0  # the duplicate, in front of the queue
        assert wrapper.collect(1)["seq"] == 1

    def test_rate_schedule_is_seed_deterministic(self):
        def events(seed):
            wrapper = self._chaos(rates={"delay": 0.5}, seed=seed)
            for i in range(20):
                wrapper.submit(1, {"op": "echo", "value": i, "seq": i})
                try:
                    wrapper.collect(1)
                except WorkerTimeout:
                    wrapper.collect(1)  # parked reply
            return [(e.kind, e.collect_index) for e in wrapper.events]

        assert events(3) == events(3)
        assert events(3) != events(4)
        assert events(3)  # 50% over 20 collects: it actually fired

    def test_rule_list_is_not_consumed_across_runs(self):
        rules = [Fault("delay", rank=1, nth=1)]
        for _ in range(2):  # same list twice: nth must not be eaten
            wrapper = self._chaos(faults=rules)
            wrapper.submit(1, {"op": "echo", "value": 0, "seq": 0})
            wrapper.collect(1)
            wrapper.submit(1, {"op": "echo", "value": 1, "seq": 1})
            with pytest.raises(WorkerTimeout):
                wrapper.collect(1)
            assert wrapper.collect(1)["value"] == 1

    def test_fault_counts_summarize_ledger(self):
        wrapper = self._chaos(faults=[Fault("delay", rank=1), Fault("duplicate", rank=1)])
        wrapper.submit(1, {"op": "echo", "value": 0, "seq": 0})
        with pytest.raises(WorkerTimeout):
            wrapper.collect(1)
        wrapper.collect(1)
        wrapper.submit(1, {"op": "echo", "value": 1, "seq": 1})
        wrapper.collect(1)
        counts = wrapper.fault_counts()
        assert counts["delay"] == 1 and counts["duplicate"] == 1

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("gamma-ray")
        with pytest.raises(ValueError, match="unknown fault kind"):
            ChaosTransport("local", rates={"gamma-ray": 1.0})

    def test_registry_and_world_binding(self):
        assert "chaos" in list_transports()
        resolved = resolve_transport("chaos", 3)
        assert isinstance(resolved, ChaosTransport)
        assert resolved.world_size == 3
        late = chaos("local")
        assert late.world_size is None
        assert resolve_transport(late, 2) is late
        assert late.world_size == 2
        with pytest.raises(ValueError, match="rebind"):
            late.bind_world(4)

    def test_corrupt_frame_defeats_the_crc(self):
        frame = frame_payload({"hello": "world"})
        assert unframe_payload(frame) == {"hello": "world"}
        with pytest.raises(PayloadCorrupt):
            unframe_payload(corrupt_frame(frame))


class TestRecoveryAccounting:
    def test_recovery_bytes_stay_out_of_sync_bytes(self, unfaulted):
        """GP epochs must still account zero steady-state comm even when
        recovery shipped state mid-epoch — the fault columns are kept
        separate precisely so the comm story stays honest."""
        wrapper = ChaosTransport(
            "local", faults=[Fault("kill", rank=1, op="compute", nth=1)]
        )
        _, _, strategy = _run(wrapper)
        clean = _run("local")[2]
        totals = strategy.comm.totals()
        assert totals["recovery_bytes"] > 0
        assert totals["sync_bytes"] == clean.comm.totals()["sync_bytes"]
        assert totals["recovery_s"] > 0

    def test_clean_runs_report_zero_faults(self):
        _, _, strategy = _run("local")
        totals = strategy.comm.totals()
        assert totals["faults"] == 0
        assert totals["retries"] == 0
        assert totals["rebuilds"] == 0
        assert totals["recovery_bytes"] == 0
