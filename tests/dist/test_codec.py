"""Gradient codec tests: round-trips, AdaComp adversarial tensors,
residual carry-over determinism, and wire-byte accounting."""

import numpy as np
import pytest

from repro.dist import (
    AdaCompCodec,
    Codec,
    IdentityCodec,
    decode,
    decode_sum,
    resolve_codec,
)
from repro.dist.codec import HEADER_BYTES

RNG = np.random.default_rng(7)


class TestIdentityCodec:
    def test_round_trip_is_bitwise(self):
        for shape in [(8, 4, 3, 3), (100,), (5, 7), (1,)]:
            grad = RNG.standard_normal(shape).astype(np.float32)
            enc = IdentityCodec().encode(0, grad)
            out = decode(enc)
            assert out.shape == grad.shape
            assert out.tobytes() == grad.tobytes()

    def test_wire_accounting_is_dense(self):
        grad = RNG.standard_normal((16, 16)).astype(np.float32)
        enc = IdentityCodec().encode(0, grad)
        assert enc.dense_bytes == grad.nbytes
        assert enc.wire_bytes == HEADER_BYTES + grad.nbytes

    def test_spawn_is_fresh(self):
        codec = IdentityCodec()
        assert isinstance(codec.spawn(), IdentityCodec)
        assert codec.spawn() is not codec


class TestAdaCompAdversarial:
    def test_all_zero_gradient_sends_nothing(self):
        # Without the threshold>0 guard, |H|+|G| >= 0 would select every
        # element of an all-zero bin.
        codec = AdaCompCodec(bin_size=16)
        enc = codec.encode(0, np.zeros((64,), dtype=np.float32))
        assert enc.indices.size == 0
        assert enc.values.size == 0
        assert np.array_equal(decode(enc), np.zeros(64, dtype=np.float32))

    def test_single_spike_is_sent_exactly(self):
        codec = AdaCompCodec(bin_size=16)
        grad = np.zeros((64,), dtype=np.float32)
        grad[37] = 3.5  # exactly representable in float16
        enc = codec.encode(0, grad)
        assert enc.indices.tolist() == [37]
        assert enc.values.tolist() == [3.5]
        # The sent entry leaves the residual; nothing else accumulated.
        assert not codec.residual(0).any()
        out = decode(enc)
        assert out.tobytes() == grad.tobytes()

    def test_denormals_survive_via_error_feedback(self):
        codec = AdaCompCodec(bin_size=8)
        tiny = np.float32(1e-40)  # subnormal in float32, flushes to 0 in float16
        grad = np.full((32,), tiny, dtype=np.float32)
        enc = codec.encode(0, grad)
        out = decode(enc)
        assert np.isfinite(out).all()
        # The float16 wire cannot represent 1e-40 — but error feedback
        # keeps every bit of it in the residual, nothing is lost.
        np.testing.assert_array_equal(decode(enc) + codec.residual(0), grad)

    def test_denormals_round_trip_exactly_on_float32_wire(self):
        codec = AdaCompCodec(bin_size=8, wire_dtype="float32")
        tiny = np.float32(1e-40)
        grad = np.full((32,), tiny, dtype=np.float32)
        enc = codec.encode(0, grad)
        # H == G on first encode, so |H|+|G| = 2|H| >= bin max selects
        # every equal-magnitude element; float32 wire round-trips exactly.
        assert decode(enc).tobytes() == grad.tobytes()
        assert not codec.residual(0).any()

    def test_huge_values_clip_into_float16_range(self):
        codec = AdaCompCodec(bin_size=8)
        grad = np.full((8,), 1e6, dtype=np.float32)
        enc = codec.encode(0, grad)
        assert np.isfinite(enc.values.astype(np.float32)).all()
        # Clip error rides the residual like any rounding error.
        np.testing.assert_allclose(
            decode(enc) + codec.residual(0), grad, rtol=1e-6
        )

    def test_mixed_zero_and_live_bins(self):
        codec = AdaCompCodec(bin_size=4)
        grad = np.zeros((12,), dtype=np.float32)
        grad[5] = 1.0  # only bin 1 is live
        enc = codec.encode(0, grad)
        assert enc.indices.tolist() == [5]

    def test_unpadded_tail_never_selected(self):
        # size 10 with bin 8 pads the last bin with zeros; the pad must
        # not leak indices past the tensor.
        codec = AdaCompCodec(bin_size=8)
        grad = RNG.standard_normal(10).astype(np.float32)
        enc = codec.encode(0, grad)
        assert enc.indices.max() < 10


class TestAdaCompResiduals:
    def test_unsent_entries_accumulate_and_retry(self):
        codec = AdaCompCodec(bin_size=8)
        grad = np.array([1.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1], dtype=np.float32)
        enc1 = codec.encode(0, grad)
        assert 0 in enc1.indices.tolist()
        residual = codec.residual(0)
        assert residual[1] == np.float32(0.1)
        # A zero follow-up gradient: H = residual alone; the carried 0.1s
        # now dominate their bin and get sent.
        enc2 = codec.encode(0, np.zeros(8, dtype=np.float32))
        total = decode(enc1) + decode(enc2) + codec.residual(0)
        # Conservation: sent + carried always equals the gradient sum fed
        # in (error feedback returns the float16 rounding to the residual).
        np.testing.assert_allclose(total, grad, rtol=1e-6, atol=0)

    def test_residuals_are_per_key(self):
        codec = AdaCompCodec(bin_size=8)
        codec.encode(0, np.full(8, 0.5, dtype=np.float32))
        assert codec.residual(1) is None

    def test_identical_streams_are_bitwise_deterministic(self):
        a, b = AdaCompCodec(bin_size=16), AdaCompCodec(bin_size=16)
        rng1, rng2 = np.random.default_rng(11), np.random.default_rng(11)
        for step in range(5):
            g1 = rng1.standard_normal(100).astype(np.float32)
            g2 = rng2.standard_normal(100).astype(np.float32)
            e1, e2 = a.encode(0, g1), b.encode(0, g2)
            assert e1.indices.tobytes() == e2.indices.tobytes()
            assert e1.values.tobytes() == e2.values.tobytes()
            assert a.residual(0).tobytes() == b.residual(0).tobytes()

    def test_reset_and_spawn_drop_state(self):
        codec = AdaCompCodec(bin_size=8)
        codec.encode(0, np.full(8, 0.5, dtype=np.float32))
        assert codec.spawn().residual(0) is None
        assert codec.spawn().bin_size == 8
        codec.reset()
        assert codec.residual(0) is None

    def test_conservation_over_many_steps(self):
        # residual + everything decoded == sum of all gradients, exactly
        # the invariant that makes AdaComp lossless-in-the-limit.
        codec = AdaCompCodec(bin_size=32)
        rng = np.random.default_rng(3)
        total_sent = np.zeros(200, dtype=np.float32)
        total_fed = np.zeros(200, dtype=np.float32)
        for _ in range(10):
            grad = (rng.standard_normal(200) * 0.01).astype(np.float32)
            total_fed += grad
            total_sent += decode(codec.encode(0, grad))
        np.testing.assert_allclose(
            total_sent + codec.residual(0), total_fed, rtol=1e-4, atol=1e-6
        )


class TestWireAccounting:
    def test_sparse_wire_bytes_match_payload(self):
        codec = AdaCompCodec(bin_size=64)
        grad = RNG.standard_normal((32, 16)).astype(np.float32)
        enc = codec.encode(0, grad)
        assert enc.wire_bytes == (
            HEADER_BYTES
            + enc.values.nbytes
            + enc.offsets.nbytes
            + enc.bin_counts.nbytes
        )
        assert enc.dense_bytes == grad.nbytes

    def test_wire_is_four_bytes_per_sent_element(self):
        codec = AdaCompCodec(bin_size=256)
        grad = RNG.standard_normal(4096).astype(np.float32)
        enc = codec.encode(0, grad)
        assert enc.values.dtype == np.float16
        assert enc.offsets.dtype == np.uint16
        assert enc.bin_counts.dtype == np.uint16
        per_element = enc.values.itemsize + enc.offsets.itemsize
        assert per_element == 4

    def test_steady_state_compresses_hard(self):
        # The first encode on dense noise is the worst case (H == G, so
        # |H|+|G| = 2|H| selects ~15% of elements); the residual-driven
        # selection thins out over steps.  Assert the steady-state step
        # ratio, which is what BENCH_dist measures and the paper quotes.
        codec = AdaCompCodec(bin_size=256)
        rng = np.random.default_rng(5)
        ratios = []
        for _ in range(12):
            grad = (rng.standard_normal(64 * 64 * 9) * 0.01).astype(np.float32)
            enc = codec.encode(0, grad)
            ratios.append(enc.dense_bytes / enc.wire_bytes)
        assert ratios[0] > 5  # even the cold-start encode clears 5x
        assert ratios[-1] > 20  # steady state is far sparser
        assert ratios[-1] > 2 * ratios[0]


class TestDecodeSum:
    def test_rank_ordered_sum_skips_none(self):
        idc = IdentityCodec()
        a = RNG.standard_normal(10).astype(np.float32)
        b = RNG.standard_normal(10).astype(np.float32)
        total = decode_sum([idc.encode(0, a), None, idc.encode(0, b)])
        assert total.tobytes() == (a + b).tobytes()

    def test_all_none_is_none(self):
        assert decode_sum([None, None]) is None

    def test_single_contribution_is_bitwise(self):
        a = RNG.standard_normal(10).astype(np.float32)
        total = decode_sum([IdentityCodec().encode(0, a)])
        assert total.tobytes() == a.tobytes()


class TestResolveCodec:
    def test_names_and_instances(self):
        assert isinstance(resolve_codec(None), IdentityCodec)
        assert isinstance(resolve_codec("identity"), IdentityCodec)
        assert isinstance(resolve_codec("adacomp"), AdaCompCodec)
        codec = AdaCompCodec(bin_size=64)
        assert resolve_codec(codec) is codec

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown codec"):
            resolve_codec("zstd")
        with pytest.raises(TypeError):
            resolve_codec(42)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Codec().encode(0, np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            AdaCompCodec(bin_size=0)
