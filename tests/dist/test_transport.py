"""Transport substrate tests: request/reply protocol, rank-ordered
allreduce determinism, and Local/Process interchangeability."""

import numpy as np
import pytest

from repro.dist import (
    LocalTransport,
    ProcessTransport,
    Transport,
    resolve_transport,
)

RNG = np.random.default_rng(13)


class ArithmeticWorker:
    """Minimal picklable worker: deterministic replies keyed on rank."""

    def __init__(self, rank):
        self.rank = rank
        self.calls = 0

    def handle(self, cmd):
        self.calls += 1
        op = cmd.get("op")
        if op == "add":
            return {"rank": self.rank, "value": cmd["value"] + self.rank}
        if op == "scale":
            return {"rank": self.rank, "array": cmd["array"] * self.rank}
        if op == "calls":
            return {"rank": self.rank, "calls": self.calls}
        return {"ok": True, "rank": self.rank}


def _factory(rank):
    return ArithmeticWorker(rank)


@pytest.fixture(params=["local", "process"])
def transport(request):
    t = resolve_transport(request.param, 3)
    t.start(_factory)
    yield t
    t.close()


class TestProtocol:
    def test_submit_collect_round_trip(self, transport):
        transport.submit(1, {"op": "add", "value": 10})
        transport.submit(2, {"op": "add", "value": 10})
        assert transport.collect(1) == {"rank": 1, "value": 11}
        assert transport.collect(2) == {"rank": 2, "value": 12}

    def test_replies_are_fifo_per_rank(self, transport):
        transport.submit(1, {"op": "add", "value": 1})
        transport.submit(1, {"op": "add", "value": 100})
        assert transport.collect(1)["value"] == 2
        assert transport.collect(1)["value"] == 101

    def test_broadcast_collects_in_rank_order(self, transport):
        replies = transport.broadcast({"op": "add", "value": 0})
        assert [r["rank"] for r in replies] == [1, 2]
        assert [r["value"] for r in replies] == [1, 2]

    def test_barrier_drains_every_rank(self, transport):
        transport.barrier()
        replies = transport.broadcast({"op": "calls"})
        # barrier's ping was call 1 on every rank; this broadcast is 2.
        assert [r["calls"] for r in replies] == [2, 2]

    def test_arrays_cross_intact(self, transport):
        array = RNG.standard_normal(64).astype(np.float32)
        transport.submit(2, {"op": "scale", "array": array})
        reply = transport.collect(2)
        assert reply["array"].tobytes() == (array * 2).tobytes()

    def test_worker_state_persists_across_commands(self, transport):
        transport.submit(1, {"op": "add", "value": 0})
        transport.collect(1)
        transport.submit(1, {"op": "calls"})
        assert transport.collect(1)["calls"] == 2

    def test_close_is_idempotent(self, transport):
        transport.close()
        transport.close()
        assert not transport.started


class TestAllreduce:
    def test_rank_ordered_exact_sum(self):
        t = LocalTransport(3)
        a = RNG.standard_normal(32).astype(np.float32)
        b = RNG.standard_normal(32).astype(np.float32)
        c = RNG.standard_normal(32).astype(np.float32)
        total = t.allreduce([a, b, c])
        # Same accumulation order as a manual left-to-right sum.
        assert total.tobytes() == ((a + b) + c).tobytes()

    def test_none_contributions_skipped(self):
        t = LocalTransport(2)
        a = RNG.standard_normal(8).astype(np.float32)
        assert t.allreduce([None, a]).tobytes() == a.tobytes()
        assert t.allreduce([None, None]) is None

    def test_does_not_mutate_inputs(self):
        t = LocalTransport(2)
        a = np.ones(4, dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        t.allreduce([a, b])
        assert a.tolist() == [1, 1, 1, 1]


class TestResolveTransport:
    def test_names(self):
        assert isinstance(resolve_transport(None, 2), LocalTransport)
        assert isinstance(resolve_transport("local", 2), LocalTransport)
        assert isinstance(resolve_transport("process", 2), ProcessTransport)

    def test_instance_pass_through_checks_world_size(self):
        t = LocalTransport(4)
        assert resolve_transport(t, 4) is t
        with pytest.raises(ValueError, match="world_size"):
            resolve_transport(t, 2)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("mpi", 2)
        with pytest.raises(TypeError):
            resolve_transport(3.5, 2)
        with pytest.raises(ValueError):
            Transport(0)


class TestLocalProcessEquivalence:
    def test_same_replies_for_same_commands(self):
        local = resolve_transport("local", 3)
        proc = resolve_transport("process", 3)
        local.start(_factory)
        proc.start(_factory)
        try:
            array = RNG.standard_normal(16).astype(np.float32)
            for transport in (local, proc):
                transport.submit(1, {"op": "scale", "array": array})
                transport.submit(2, {"op": "add", "value": 5})
            r_local = [local.collect(1), local.collect(2)]
            r_proc = [proc.collect(1), proc.collect(2)]
            assert r_local[0]["array"].tobytes() == r_proc[0]["array"].tobytes()
            assert r_local[1] == r_proc[1]
        finally:
            local.close()
            proc.close()
