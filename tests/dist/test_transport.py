"""Transport substrate tests: request/reply protocol, rank-ordered
allreduce determinism, Local/Process interchangeability, and the fault
surface (framing, deadlines, death detection, lifecycle hardening)."""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.dist import (
    LocalTransport,
    PayloadCorrupt,
    ProcessTransport,
    Transport,
    WorkerDied,
    WorkerTimeout,
    corrupt_frame,
    frame_payload,
    list_transports,
    register_transport,
    resolve_transport,
    unframe_payload,
)

RNG = np.random.default_rng(13)


class ArithmeticWorker:
    """Minimal picklable worker: deterministic replies keyed on rank."""

    def __init__(self, rank):
        self.rank = rank
        self.calls = 0

    def handle(self, cmd):
        self.calls += 1
        op = cmd.get("op")
        if op == "add":
            return {"rank": self.rank, "value": cmd["value"] + self.rank}
        if op == "scale":
            return {"rank": self.rank, "array": cmd["array"] * self.rank}
        if op == "calls":
            return {"rank": self.rank, "calls": self.calls}
        return {"ok": True, "rank": self.rank}


class MisbehavingWorker:
    """Picklable worker with every way to go wrong on demand."""

    def __init__(self, rank):
        self.rank = rank

    def handle(self, cmd):
        op = cmd.get("op")
        if op == "boom":
            raise ValueError("intentional failure")
        if op == "sleep":
            time.sleep(cmd["seconds"])
            return {"rank": self.rank, "slept": cmd["seconds"]}
        if op == "exit":  # hard death: no reply, no cleanup
            os._exit(3)
        return {"ok": True, "rank": self.rank}


def _factory(rank):
    return ArithmeticWorker(rank)


def _misbehaving_factory(rank):
    return MisbehavingWorker(rank)


@pytest.fixture(params=["local", "process"])
def transport(request):
    t = resolve_transport(request.param, 3)
    t.start(_factory)
    yield t
    t.close()


class TestProtocol:
    def test_submit_collect_round_trip(self, transport):
        transport.submit(1, {"op": "add", "value": 10})
        transport.submit(2, {"op": "add", "value": 10})
        assert transport.collect(1) == {"rank": 1, "value": 11}
        assert transport.collect(2) == {"rank": 2, "value": 12}

    def test_replies_are_fifo_per_rank(self, transport):
        transport.submit(1, {"op": "add", "value": 1})
        transport.submit(1, {"op": "add", "value": 100})
        assert transport.collect(1)["value"] == 2
        assert transport.collect(1)["value"] == 101

    def test_broadcast_collects_in_rank_order(self, transport):
        replies = transport.broadcast({"op": "add", "value": 0})
        assert [r["rank"] for r in replies] == [1, 2]
        assert [r["value"] for r in replies] == [1, 2]

    def test_barrier_drains_every_rank(self, transport):
        transport.barrier()
        replies = transport.broadcast({"op": "calls"})
        # barrier's ping was call 1 on every rank; this broadcast is 2.
        assert [r["calls"] for r in replies] == [2, 2]

    def test_arrays_cross_intact(self, transport):
        array = RNG.standard_normal(64).astype(np.float32)
        transport.submit(2, {"op": "scale", "array": array})
        reply = transport.collect(2)
        assert reply["array"].tobytes() == (array * 2).tobytes()

    def test_worker_state_persists_across_commands(self, transport):
        transport.submit(1, {"op": "add", "value": 0})
        transport.collect(1)
        transport.submit(1, {"op": "calls"})
        assert transport.collect(1)["calls"] == 2

    def test_close_is_idempotent(self, transport):
        transport.close()
        transport.close()
        assert not transport.started


class TestAllreduce:
    def test_rank_ordered_exact_sum(self):
        t = LocalTransport(3)
        a = RNG.standard_normal(32).astype(np.float32)
        b = RNG.standard_normal(32).astype(np.float32)
        c = RNG.standard_normal(32).astype(np.float32)
        total = t.allreduce([a, b, c])
        # Same accumulation order as a manual left-to-right sum.
        assert total.tobytes() == ((a + b) + c).tobytes()

    def test_none_contributions_skipped(self):
        t = LocalTransport(2)
        a = RNG.standard_normal(8).astype(np.float32)
        assert t.allreduce([None, a]).tobytes() == a.tobytes()
        assert t.allreduce([None, None]) is None

    def test_does_not_mutate_inputs(self):
        t = LocalTransport(2)
        a = np.ones(4, dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        t.allreduce([a, b])
        assert a.tolist() == [1, 1, 1, 1]


class TestResolveTransport:
    def test_names(self):
        assert isinstance(resolve_transport(None, 2), LocalTransport)
        assert isinstance(resolve_transport("local", 2), LocalTransport)
        assert isinstance(resolve_transport("process", 2), ProcessTransport)

    def test_instance_pass_through_checks_world_size(self):
        t = LocalTransport(4)
        assert resolve_transport(t, 4) is t
        with pytest.raises(ValueError, match="world_size"):
            resolve_transport(t, 2)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("mpi", 2)
        with pytest.raises(TypeError):
            resolve_transport(3.5, 2)
        with pytest.raises(ValueError):
            Transport(0)


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "add", "array": RNG.standard_normal(16).astype(np.float32)}
        decoded = unframe_payload(frame_payload(payload))
        assert decoded["op"] == "add"
        assert decoded["array"].tobytes() == payload["array"].tobytes()

    def test_flipped_byte_fails_crc(self):
        with pytest.raises(PayloadCorrupt, match="CRC32"):
            unframe_payload(corrupt_frame(frame_payload({"op": "x"})))

    def test_bad_magic(self):
        frame = frame_payload({"op": "x"})
        with pytest.raises(PayloadCorrupt, match="magic"):
            unframe_payload(b"NOPE" + frame[4:])

    def test_truncation(self):
        frame = frame_payload({"op": "x"})
        with pytest.raises(PayloadCorrupt, match="truncated"):
            unframe_payload(frame[:6])
        with pytest.raises(PayloadCorrupt, match="promised"):
            unframe_payload(frame[:-3])

    def test_error_carries_rank(self):
        with pytest.raises(PayloadCorrupt) as info:
            unframe_payload(b"", rank=2)
        assert info.value.rank == 2


class TestWorkerErrorRelay:
    @pytest.mark.parametrize("name", ["local", "process"])
    def test_handler_exception_becomes_fault_reply(self, name):
        with resolve_transport(name, 2) as t:
            t.start(_misbehaving_factory)
            t.submit(1, {"op": "boom", "seq": 7})
            reply = t.collect(1)
        assert reply["fault"] == "worker_error"
        assert "intentional failure" in reply["error"]
        assert reply["seq"] == 7  # the strategy needs it to pair the reply

    def test_worker_survives_its_own_error(self):
        with resolve_transport("process", 2) as t:
            t.start(_misbehaving_factory)
            t.submit(1, {"op": "boom"})
            assert t.collect(1)["fault"] == "worker_error"
            t.submit(1, {"op": "ping"})
            assert t.collect(1)["ok"]


class TestDeadlinesAndDeath:
    def test_local_collect_without_reply_times_out(self):
        with LocalTransport(2) as t:
            t.start(_factory)
            with pytest.raises(WorkerTimeout):
                t.collect(1)

    def test_local_killed_rank_raises_on_both_sides(self):
        with LocalTransport(2) as t:
            t.start(_factory)
            t.kill_rank(1)
            assert not t.alive(1)
            with pytest.raises(WorkerDied):
                t.submit(1, {"op": "ping"})
            with pytest.raises(WorkerDied):
                t.collect(1)
            t.respawn_rank(1)
            t.submit(1, {"op": "add", "value": 1})
            assert t.collect(1)["value"] == 2

    def test_process_collect_deadline_is_bounded(self):
        with ProcessTransport(2, timeout=0.2) as t:
            t.start(_misbehaving_factory)
            t.submit(1, {"op": "sleep", "seconds": 30})
            started = time.monotonic()
            with pytest.raises(WorkerTimeout):
                t.collect(1)
            assert time.monotonic() - started < 5.0
            t.close(timeout=0.5)  # escalation handles the still-busy rank

    def test_process_delayed_reply_collected_on_retry(self):
        with ProcessTransport(2) as t:
            t.start(_misbehaving_factory)
            t.submit(1, {"op": "sleep", "seconds": 0.5})
            with pytest.raises(WorkerTimeout):
                t.collect(1, timeout=0.05)
            assert t.collect(1, timeout=30)["slept"] == 0.5

    def test_process_hard_death_detected_within_heartbeats(self):
        with ProcessTransport(2) as t:
            t.start(_misbehaving_factory)
            t.submit(1, {"op": "exit"})
            started = time.monotonic()
            with pytest.raises(WorkerDied):
                t.collect(1)
            assert time.monotonic() - started < 30.0  # not the full deadline
            t._procs[1].join(timeout=5)  # EOF beats the reaper; settle it
            assert not t.alive(1)

    def test_process_kill_respawn_round_trip(self):
        with ProcessTransport(2) as t:
            t.start(_factory)
            t.kill_rank(1)
            assert not t.alive(1)
            with pytest.raises(WorkerDied):
                t.submit(1, {"op": "ping"})
                t.collect(1)
            t.respawn_rank(1)
            assert t.alive(1)
            t.submit(1, {"op": "add", "value": 5})
            assert t.collect(1)["value"] == 6

    def test_process_worker_reports_corrupt_command(self):
        with ProcessTransport(2) as t:
            t.start(_factory)
            # Garbage straight onto the pipe: the worker must answer with
            # a typed fault record, not crash or hang.
            t._conns[1].send_bytes(b"this is not a frame")
            reply = t.collect(1)
            assert reply["fault"] == "payload_corrupt"
            t.submit(1, {"op": "ping"})
            assert t.collect(1)["ok"]  # still serving


class TestLifecycle:
    def test_close_escalation_reaps_hung_worker(self):
        t = ProcessTransport(2)
        t.start(_misbehaving_factory)
        proc = t._procs[1]
        t.submit(1, {"op": "sleep", "seconds": 60})
        started = time.monotonic()
        t.close(timeout=0.5)
        assert time.monotonic() - started < 10.0
        assert not proc.is_alive()
        assert not t.started

    def test_no_children_leak_after_exception(self):
        with pytest.raises(RuntimeError, match="mid-fit crash"):
            with ProcessTransport(2) as t:
                t.start(_factory)
                raise RuntimeError("mid-fit crash")
        leftovers = [
            p for p in mp.active_children() if p.name.startswith("repro-dist-rank")
        ]
        assert leftovers == []

    def test_double_close_after_failure_is_safe(self):
        t = ProcessTransport(2)
        t.start(_factory)
        t.kill_rank(1)
        t.close()
        t.close()
        assert not t.started


class TestRegistry:
    def test_builtins_registered(self):
        names = list_transports()
        assert {"local", "process", "chaos"} <= set(names)

    def test_custom_transport_resolves_by_name(self):
        register_transport("test-custom", LocalTransport)
        try:
            assert isinstance(resolve_transport("test-custom", 2), LocalTransport)
            assert "test-custom" in list_transports()
        finally:
            from repro.dist import transport as transport_module

            transport_module._TRANSPORTS.pop("test-custom", None)


class TestLocalProcessEquivalence:
    def test_same_replies_for_same_commands(self):
        local = resolve_transport("local", 3)
        proc = resolve_transport("process", 3)
        local.start(_factory)
        proc.start(_factory)
        try:
            array = RNG.standard_normal(16).astype(np.float32)
            for transport in (local, proc):
                transport.submit(1, {"op": "scale", "array": array})
                transport.submit(2, {"op": "add", "value": 5})
            r_local = [local.collect(1), local.collect(2)]
            r_proc = [proc.collect(1), proc.collect(2)]
            assert r_local[0]["array"].tobytes() == r_proc[0]["array"].tobytes()
            assert r_local[1] == r_proc[1]
        finally:
            local.close()
            proc.close()
