"""Data-parallel engine tests: the bitwise-parity ladder, GP comm-free
phases, AdaComp training, resume, and throughput accounting.

The enforceable correctness contract (ROADMAP: "parallel == serial
bit-identical is the enforceable part"):

* ``workers=1`` is bitwise the serial engine (same History, same
  checkpoint bytes) on every backend — pure delegation;
* ``LocalTransport`` vs ``ProcessTransport`` at ``workers=2`` is
  bitwise (identical replica construction + rank-ordered reduction);
* ``workers=2`` vs serial is allclose, not bitwise — sharded float32
  GEMMs and shard-local BN batch statistics cannot reproduce the
  full-batch bits (same precedent as the pipeline executor's
  equivalence tests).
"""

import os
import pickle

import numpy as np
import pytest

from repro import nn
from repro.core import Checkpointing, HeuristicSchedule, ThroughputTimer, adagp_engine
from repro.core.schedule import Phase
from repro.data import synthetic_images
from repro.dist import (
    ddp_engine,
    dp_strategy,
    invalidate_replicas,
    shard_sizes,
    shutdown,
)
from repro.nn.backend import native_available
from repro.nn.losses import CrossEntropyLoss, accuracy

BACKENDS = [None, "fused"] + (["native"] if native_available() else [])


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _split():
    return synthetic_images(3, 48, 24, image_size=8, seed=0)


def _train_fn(split):
    return lambda: split.train.batches(16, rng=np.random.default_rng(1))


def _val_fn(split):
    return lambda: split.val.batches(24, shuffle=False)


def _schedule():
    return HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),))


def _serial(backend=None, **kwargs):
    return adagp_engine(
        _model(0),
        CrossEntropyLoss(),
        lr=0.05,
        metric_fn=accuracy,
        schedule=_schedule(),
        backend=backend,
        **kwargs,
    )


def _ddp(workers=2, transport="local", backend=None, **kwargs):
    return ddp_engine(
        _model(0),
        CrossEntropyLoss(),
        workers=workers,
        transport=transport,
        lr=0.05,
        metric_fn=accuracy,
        schedule=_schedule(),
        backend=backend,
        **kwargs,
    )


class TestParityLadder:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_workers_1_is_bitwise_serial(self, backend):
        split = _split()
        serial = _serial(backend=backend)
        h_serial = serial.fit(_train_fn(split), _val_fn(split), 3)
        ddp = _ddp(workers=1, backend=backend)
        h_ddp = ddp.fit(_train_fn(split), _val_fn(split), 3)
        assert h_ddp == h_serial
        assert pickle.dumps(ddp.state_dict()) == pickle.dumps(serial.state_dict())
        assert dp_strategy(ddp).transport is None  # no comm machinery at all

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_local_equals_process_bitwise(self, backend):
        split = _split()
        local = _ddp(workers=2, transport="local", backend=backend)
        h_local = local.fit(_train_fn(split), _val_fn(split), 3)
        proc = _ddp(workers=2, transport="process", backend=backend)
        h_proc = proc.fit(_train_fn(split), _val_fn(split), 3)
        try:
            assert h_local == h_proc
            assert pickle.dumps(local.state_dict()) == pickle.dumps(
                proc.state_dict()
            )
        finally:
            shutdown(local)
            shutdown(proc)

    def test_workers_2_close_to_serial(self):
        split = _split()
        serial = _serial()
        h_serial = serial.fit(_train_fn(split), _val_fn(split), 4)
        ddp = _ddp(workers=2)
        h_ddp = ddp.fit(_train_fn(split), _val_fn(split), 4)
        try:
            # Not bitwise — sharded GEMMs and shard-local BN stats differ
            # from full-batch serial at the float32 level, and GP phases
            # amplify the drift (~1% relative by epoch 4).  The ladder's
            # bitwise gates are W1≡serial and Local≡Process above.
            np.testing.assert_allclose(
                h_ddp.train_loss, h_serial.train_loss, rtol=2e-2, atol=1e-4
            )
            np.testing.assert_allclose(
                h_ddp.val_loss, h_serial.val_loss, rtol=2e-2, atol=1e-4
            )
            # The phase schedule runs on the driver: counts match exactly.
            assert h_ddp.bp_batches == h_serial.bp_batches
            assert h_ddp.gp_batches == h_serial.gp_batches
        finally:
            shutdown(ddp)

    def test_three_workers_run(self):
        split = _split()
        ddp = _ddp(workers=3)
        history = ddp.fit(_train_fn(split), _val_fn(split), 2)
        try:
            assert np.isfinite(history.train_loss).all()
        finally:
            shutdown(ddp)


class TestPhaseAwareComm:
    def test_gp_batches_ship_zero_gradient_bytes(self):
        split = _split()
        # All-GP after the warm-up epoch: the only comm past epoch 1's
        # boundary sync must be nothing at all.
        ddp = ddp_engine(
            _model(0),
            CrossEntropyLoss(),
            workers=2,
            lr=0.05,
            metric_fn=accuracy,
            schedule=HeuristicSchedule(warmup_epochs=1, ladder=((10, (1, 0)),)),
        )
        ddp.fit(_train_fn(split), _val_fn(split), 4)
        try:
            rows = dp_strategy(ddp).comm.epochs
            assert rows[0]["bp_batches"] > 0  # warm-up really communicated
            assert rows[0]["grad_wire_bytes"] > 0
            for epoch in (1, 2, 3):
                assert rows[epoch]["bp_batches"] == 0
                assert rows[epoch]["grad_wire_bytes"] == 0
            # Epoch 1's first GP batch pays the one BP→GP boundary sync;
            # consecutive GP epochs are strictly comm-free.
            assert rows[1]["sync_bytes"] > 0
            assert rows[2]["sync_bytes"] == 0
            assert rows[3]["sync_bytes"] == 0
        finally:
            shutdown(ddp)

    def test_identity_comm_accounting(self):
        split = _split()
        ddp = _ddp(workers=2)
        ddp.fit(_train_fn(split), _val_fn(split), 2)
        try:
            comm = dp_strategy(ddp).comm
            totals = comm.totals()
            assert totals["grad_wire_bytes"] > 0
            assert totals["sync_bytes"] > 0
            # Identity codec: wire is dense + per-payload headers, so the
            # measured "compression" ratio sits just under 1.
            assert 0.8 < comm.compression_ratio() < 1.0
        finally:
            shutdown(ddp)

    def test_fresh_stats_are_nan(self):
        ddp = _ddp(workers=2)
        try:
            assert np.isnan(dp_strategy(ddp).comm.compression_ratio())
        finally:
            shutdown(ddp)


class TestAdaComp:
    def test_adacomp_trains_and_compresses(self):
        split = _split()
        ddp = _ddp(workers=2, codec="adacomp")
        history = ddp.fit(_train_fn(split), _val_fn(split), 4)
        try:
            assert np.isfinite(history.train_loss).all()
            assert history.train_loss[-1] < history.train_loss[0]
            ratio = dp_strategy(ddp).comm.compression_ratio()
            assert ratio > 1.0  # tiny test tensors; real models hit 40x+
        finally:
            shutdown(ddp)

    def test_adacomp_local_equals_process(self):
        # Lossy codec, still transport-invariant: residual state is
        # rank-local and deterministic.
        split = _split()
        local = _ddp(workers=2, transport="local", codec="adacomp")
        h_local = local.fit(_train_fn(split), _val_fn(split), 3)
        proc = _ddp(workers=2, transport="process", codec="adacomp")
        h_proc = proc.fit(_train_fn(split), _val_fn(split), 3)
        try:
            assert h_local == h_proc
        finally:
            shutdown(local)
            shutdown(proc)


class TestCheckpointResume:
    def test_resume_is_bitwise_with_identity_codec(self, tmp_path):
        split = _split()
        full = _ddp(workers=2)
        full.fit(_train_fn(split), _val_fn(split), 2)
        path = str(tmp_path / "mid.ckpt")
        full.save_checkpoint(path)
        full.fit(_train_fn(split), _val_fn(split), 2)
        resumed = _ddp(workers=2)
        resumed.load_checkpoint(path)
        invalidate_replicas(resumed)
        resumed.fit(_train_fn(split), _val_fn(split), 2)
        try:
            assert resumed.history == full.history
            assert pickle.dumps(resumed.state_dict()) == pickle.dumps(
                full.state_dict()
            )
        finally:
            shutdown(full)
            shutdown(resumed)

    def test_checkpointing_callback_is_rank_0_only(self, tmp_path):
        # Only the driver runs a fit loop, so an attached Checkpointing
        # callback fires once per world — one file, loadable as usual.
        split = _split()
        path = str(tmp_path / "ddp.ckpt")
        ddp = _ddp(workers=2, callbacks=[Checkpointing(path, every=1)])
        ddp.fit(_train_fn(split), _val_fn(split), 2)
        try:
            assert os.path.exists(path)
            fresh = _ddp(workers=2, callbacks=[Checkpointing(path, every=1)])
            fresh.load_checkpoint(path)
            assert fresh.current_epoch == 2
        finally:
            shutdown(ddp)
            if "fresh" in locals():
                shutdown(fresh)


class TestFactoryValidation:
    def test_object_kwargs_rejected_for_multiworker(self):
        with pytest.raises(ValueError, match="object-valued"):
            ddp_engine(
                _model(0),
                CrossEntropyLoss(),
                workers=2,
                optimizer=nn.SGD(_model(0).parameters(), lr=0.1),
            )

    def test_backend_instances_rejected_for_multiworker(self):
        from repro.nn.backend import FusedBackend

        with pytest.raises(ValueError, match="backend by name"):
            ddp_engine(
                _model(0), CrossEntropyLoss(), workers=2, backend=FusedBackend()
            )

    def test_unknown_inner_rejected(self):
        with pytest.raises(ValueError, match="unknown inner"):
            ddp_engine(_model(0), CrossEntropyLoss(), inner="pipeline")

    def test_bp_inner_runs(self):
        split = _split()
        ddp = ddp_engine(
            _model(0),
            CrossEntropyLoss(),
            workers=2,
            inner="bp",
            lr=0.05,
            metric_fn=accuracy,
        )
        history = ddp.fit(_train_fn(split), _val_fn(split), 2)
        try:
            assert np.isfinite(history.train_loss).all()
        finally:
            shutdown(ddp)

    def test_dp_strategy_rejects_serial_engine(self):
        with pytest.raises(TypeError, match="DataParallelStrategy"):
            dp_strategy(_serial())


class TestSharding:
    def test_shard_sizes_partition_exactly(self):
        for n in (1, 2, 7, 16, 33):
            for world in (1, 2, 3, 5):
                sizes = shard_sizes(n, world)
                assert sum(sizes) == n
                assert len(sizes) == world
                assert max(sizes) - min(s for s in sizes) <= 1
                assert sizes[0] >= 1  # the driver always has local work

    def test_small_batches_leave_ranks_idle(self):
        assert shard_sizes(1, 3) == [1, 0, 0]
        assert shard_sizes(2, 3) == [1, 1, 0]


class TestThroughputAccounting:
    def test_worker_batches_are_reduced_not_inflated(self):
        split = _split()
        timer = ThroughputTimer()
        ddp = _ddp(workers=2, callbacks=[timer])
        ddp.fit(_train_fn(split), _val_fn(split), 2)
        try:
            for phase in Phase:
                global_batches = timer.batches[phase]
                worker_batches = timer.worker_batches[phase]
                if global_batches == 0:
                    assert worker_batches == 0
                    continue
                # batch 16 over 2 workers: every rank active every batch.
                assert worker_batches == 2 * global_batches
                assert timer.worker_batches_per_second(phase) == pytest.approx(
                    2 * timer.batches_per_second(phase)
                )
        finally:
            shutdown(ddp)

    def test_serial_counts_unchanged(self):
        split = _split()
        timer = ThroughputTimer()
        serial = _serial(callbacks=[timer])
        serial.fit(_train_fn(split), _val_fn(split), 2)
        for phase in Phase:
            assert timer.worker_batches[phase] == timer.batches[phase]

    def test_timer_state_dict_round_trips(self):
        timer = ThroughputTimer()
        timer.worker_batches[Phase.BP] = 6
        timer.batches[Phase.BP] = 3
        state = timer.state_dict()
        fresh = ThroughputTimer()
        fresh.load_state_dict(state)
        assert fresh.worker_batches[Phase.BP] == 6
        assert fresh.batches[Phase.BP] == 3
        assert "worker shards" in timer.summary()
