"""Fixture tests for the invariant linter: each rule must flag its
known-bad snippet and stay quiet on the known-good one, and the
suppression + baseline machinery must round-trip."""

import json

import pytest

from repro.analysis.lint import (
    all_rules,
    iter_source_files,
    lint_paths,
    lint_source,
    load_baseline,
    split_baselined,
    write_baseline,
)

LAYER_PATH = "src/repro/nn/layers/custom.py"


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# backend-dispatch
# ----------------------------------------------------------------------
BAD_DISPATCH = """
import numpy as np

def forward(x, w):
    a = np.matmul(x, w)
    b = np.einsum("ij,jk->ik", x, w)
    c = x @ w
    a @= w
    d = np.tensordot(x, w, axes=1)
    return a + b + c + d
"""

GOOD_DISPATCH = """
from repro.nn.backend import current_backend

def forward(x, w):
    return current_backend().matmul(x, w)
"""


class TestBackendDispatch:
    def test_flags_direct_contractions(self):
        findings = lint_source(BAD_DISPATCH, LAYER_PATH, rules=["backend-dispatch"])
        assert len(findings) == 5
        assert rules_of(findings) == {"backend-dispatch"}

    def test_quiet_on_dispatched_code(self):
        assert not lint_source(GOOD_DISPATCH, LAYER_PATH, rules=["backend-dispatch"])

    def test_out_of_scope_file_is_ignored(self):
        assert not lint_source(
            BAD_DISPATCH, "src/repro/accel/cost.py", rules=["backend-dispatch"]
        )

    def test_backends_themselves_are_exempt(self):
        # The dispatch targets legitimately call numpy directly.
        assert not lint_source(
            BAD_DISPATCH, "src/repro/nn/backend/fused.py", rules=["backend-dispatch"]
        )


# ----------------------------------------------------------------------
# cache-naming
# ----------------------------------------------------------------------
BAD_CACHE = """
class Layer:
    def forward(self, x):
        self.saved = x
        return x

    def backward(self, grad):
        return grad * self.saved
"""

GOOD_CACHE = """
class Layer:
    _extra_cache_attrs = ("_mask",)

    def forward(self, x):
        self._cache_x = x
        self._mask = x > 0
        return x

    def backward(self, grad):
        return grad * self._cache_x * self._mask
"""

ATTEND_CACHE = """
class Attention:
    def attend(self, q, k, v):
        self.scores = q
        return q

    def backward_attend(self, grad):
        return grad * self.scores
"""


class TestCacheNaming:
    def test_flags_unprefixed_forward_cache(self):
        findings = lint_source(BAD_CACHE, LAYER_PATH, rules=["cache-naming"])
        assert len(findings) == 1
        assert "saved" in findings[0].message

    def test_quiet_on_prefixed_and_declared(self):
        assert not lint_source(GOOD_CACHE, LAYER_PATH, rules=["cache-naming"])

    def test_attend_counts_as_forward(self):
        findings = lint_source(ATTEND_CACHE, LAYER_PATH, rules=["cache-naming"])
        assert len(findings) == 1
        assert "scores" in findings[0].message


# ----------------------------------------------------------------------
# version-bump
# ----------------------------------------------------------------------
BAD_BUMP = """
def step(param, update):
    param.data -= update
"""

GOOD_BUMP = """
def step(param, update):
    param.data -= update
    param.bump_version()
"""

MIXED_BUMP = """
def step(a, b, update):
    a.data -= update
    b.data -= update
    a.bump_version()
"""


class TestVersionBump:
    def test_flags_unbumped_mutation(self):
        findings = lint_source(BAD_BUMP, "src/repro/nn/optim/x.py", rules=["version-bump"])
        assert len(findings) == 1
        assert "bump_version" in findings[0].message

    def test_quiet_when_bumped(self):
        assert not lint_source(
            GOOD_BUMP, "src/repro/nn/optim/x.py", rules=["version-bump"]
        )

    def test_bump_must_match_object(self):
        findings = lint_source(
            MIXED_BUMP, "src/repro/nn/optim/x.py", rules=["version-bump"]
        )
        assert len(findings) == 1
        assert "b.data" in findings[0].message

    def test_init_constructors_are_exempt(self):
        source = """
class Parameter:
    def __init__(self, data):
        self.data = data
"""
        assert not lint_source(source, "src/repro/nn/x.py", rules=["version-bump"])


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------
BAD_RNG = """
import numpy as np

def init(shape):
    return np.random.randn(*shape)
"""

GOOD_RNG = """
import numpy as np

def init(shape, rng):
    seq = np.random.SeedSequence(0)
    gen = np.random.default_rng(seq)
    return gen.standard_normal(shape)
"""


class TestRngDiscipline:
    def test_flags_global_rng_draw(self):
        findings = lint_source(BAD_RNG, "src/repro/data/x.py", rules=["rng-discipline"])
        assert len(findings) == 1
        assert "np.random.randn" in findings[0].message

    def test_quiet_on_seedsequence_generators(self):
        assert not lint_source(GOOD_RNG, "src/repro/data/x.py", rules=["rng-discipline"])

    def test_flags_disallowed_import(self):
        source = "from numpy.random import randn\n"
        findings = lint_source(source, "src/repro/data/x.py", rules=["rng-discipline"])
        assert len(findings) == 1


# ----------------------------------------------------------------------
# no-grad-purity
# ----------------------------------------------------------------------
BAD_PURITY = """
def run(model, x, no_grad):
    with no_grad():
        model._cache_x = x
    return x
"""

GOOD_PURITY = """
NO_GRAD = object()

def run(model, x, no_grad):
    with no_grad():
        model._cache_x = NO_GRAD
        model.count = 1
    return x
"""


class TestNoGradPurity:
    def test_flags_cache_write_under_no_grad(self):
        findings = lint_source(BAD_PURITY, LAYER_PATH, rules=["no-grad-purity"])
        assert len(findings) == 1
        assert "_cache_x" in findings[0].message

    def test_sentinel_assignment_is_allowed(self):
        assert not lint_source(GOOD_PURITY, LAYER_PATH, rules=["no-grad-purity"])


# ----------------------------------------------------------------------
# obs-discipline (PR 10)
# ----------------------------------------------------------------------
ENGINE_PATH = "src/repro/core/engine/x.py"

BAD_PRINT = """
def train_batch(self, inputs):
    print("loss", 1.0)
    return inputs
"""

BAD_TIMING = """
import time
def train_batch(self, inputs):
    start = time.perf_counter()
    out = inputs
    self.seconds += time.perf_counter() - start
    return out
"""

GOOD_OBS = """
from repro.obs.trace import tracer
def train_batch(self, inputs):
    with tracer().span("engine.batch", phase="bp"):
        return inputs
"""


class TestObsDiscipline:
    def test_flags_bare_print_in_hot_subsystem(self):
        findings = lint_source(BAD_PRINT, ENGINE_PATH, rules=["obs-discipline"])
        assert len(findings) == 1
        assert "print()" in findings[0].message

    def test_flags_adhoc_perf_counter(self):
        findings = lint_source(BAD_TIMING, ENGINE_PATH, rules=["obs-discipline"])
        assert len(findings) == 2
        assert all("perf_counter" in f.message for f in findings)

    def test_obs_routed_instrumentation_is_clean(self):
        assert not lint_source(GOOD_OBS, ENGINE_PATH, rules=["obs-discipline"])

    def test_out_of_scope_modules_unaffected(self):
        # experiments/, tune/, benchmarks aren't hot subsystems: a CLI
        # print there is fine.
        assert not lint_source(
            BAD_PRINT, "src/repro/experiments/x.py", rules=["obs-discipline"]
        )

    def test_tracer_clock_is_inline_exempt(self):
        # The tracer's own default clock is the one justified raw-clock
        # site — the inline noqa idiom from src/repro/obs/trace.py.
        source = (
            "import time\n"
            "def make_clock():\n"
            "    return time.perf_counter  # repro: noqa[obs-discipline]\n"
            "def tick():\n"
            "    return time.perf_counter()  # repro: noqa[obs-discipline]\n"
        )
        assert not lint_source(
            source, "src/repro/obs/trace.py", rules=["obs-discipline"]
        )

    def test_grandfathered_sites_stay_baselined(self):
        # The pre-obs timers (ThroughputTimer internals, executor slot
        # measurement, recovery stopwatch, native_build CLI prints) are
        # baseline-grandfathered, not rewritten: the baseline must keep
        # covering them so the repo lints clean.
        from repro.analysis.lint import DEFAULT_BASELINE, load_baseline

        baseline = load_baseline(DEFAULT_BASELINE)
        files = {entry[0] for entry in baseline if entry[1] == "obs-discipline"}
        assert "src/repro/pipeline/executor.py" in files
        assert "src/repro/dist/strategy.py" in files
        assert "src/repro/nn/backend/native_build.py" in files


# ----------------------------------------------------------------------
# framework: suppression, baseline, scope, registry
# ----------------------------------------------------------------------
class TestFramework:
    def test_all_six_rules_registered(self):
        names = {rule.name for rule in all_rules()}
        assert names >= {
            "backend-dispatch",
            "cache-naming",
            "version-bump",
            "rng-discipline",
            "no-grad-purity",
            "obs-discipline",
        }

    def test_line_suppression(self):
        source = (
            "import numpy as np\n"
            "def f(x, w):\n"
            "    return np.matmul(x, w)  # repro: noqa[backend-dispatch]\n"
        )
        assert not lint_source(source, LAYER_PATH, rules=["backend-dispatch"])

    def test_file_suppression(self):
        source = "# repro: noqa-file[backend-dispatch]\n" + BAD_DISPATCH
        assert not lint_source(source, LAYER_PATH, rules=["backend-dispatch"])

    def test_bare_noqa_suppresses_all_rules(self):
        source = (
            "import numpy as np\n"
            "def f(x, w):\n"
            "    return np.matmul(x, w)  # repro: noqa\n"
        )
        assert not lint_source(source, LAYER_PATH)

    def test_unknown_rule_name_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_source("x = 1\n", LAYER_PATH, rules=["no-such-rule"])

    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def f(:\n", LAYER_PATH)
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_baseline_round_trip(self, tmp_path):
        findings = lint_source(BAD_BUMP, "src/repro/nn/optim/x.py", rules=["version-bump"])
        assert findings
        path = write_baseline(findings, tmp_path / "baseline.json")
        baseline = load_baseline(path)
        new, old = split_baselined(findings, baseline)
        assert not new and old == findings
        # Baseline entries are line-free so they survive unrelated edits.
        data = json.loads(path.read_text())
        assert all("line" not in entry for entry in data["findings"])

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_scope_covers_fault_tolerance_modules(self):
        """The recovery layer (chaos injector, transport, strategy) sits
        inside the linter's enforcement surface — fault-handling code is
        exactly where rng/backend discipline slips would hide."""
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).resolve().parents[2]
        files = {p.relative_to(root).as_posix() for p in iter_source_files(root)}
        assert "src/repro/dist/faults.py" in files
        assert "src/repro/dist/transport.py" in files
        assert "src/repro/dist/strategy.py" in files

    def test_repo_is_clean(self):
        """The enforced contract: src/ has no non-baselined findings."""
        import repro

        root = __import__("pathlib").Path(repro.__file__).resolve().parents[2]
        findings = lint_paths(root)
        new, _ = split_baselined(findings, load_baseline())
        assert not new, "\n".join(f.render() for f in new)
