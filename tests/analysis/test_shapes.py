"""Static shape checker tests: every registered spec must validate, and
deliberately corrupted specs must be caught at the first bad layer."""

import dataclasses

import pytest

from repro.analysis.shapes import check_all_specs, check_module, check_spec
from repro.models import spec_registry
from repro.models.specs import LayerKind, SpecBuilder
from repro.models.zoo import MINI_BUILDERS, build_mini
from repro.nn import layers as nn

ALL_MODELS = list(spec_registry.CLASSIFICATION_MODELS)
# Specs whose layer lists genuinely fork/merge (MobileNet's inverted
# residuals keep the spec sequential: the add preserves shape).
BRANCHING = ["Inception-V3", "Inception-V4", "DenseNet121", "YOLO-v3"]


# ----------------------------------------------------------------------
# The whole zoo validates.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dataset", spec_registry.DATASETS)
@pytest.mark.parametrize("model", ALL_MODELS)
def test_registered_spec_is_consistent(model, dataset):
    assert check_spec(spec_registry.spec_for(model, dataset)) == []


@pytest.mark.parametrize("model", ["Transformer", "YOLO-v3"])
def test_non_classification_specs_are_consistent(model):
    assert check_spec(spec_registry.spec_for(model, "ImageNet")) == []


def test_check_all_specs_clean():
    assert check_all_specs() == []


def test_branching_specs_really_branch():
    # Guard the fixture: the four branching specs must exercise the
    # fork/merge path (layer inputs that are not the previous output).
    for model in BRANCHING:
        spec = spec_registry.spec_for(model, "ImageNet")
        chains = 0
        cur = spec.input_shape
        for layer in spec.layers:
            if (layer.in_channels, layer.in_h, layer.in_w) != cur:
                chains += 1
            cur = (layer.out_channels, layer.out_h, layer.out_w)
        assert chains > 0, f"{model} spec is purely sequential"


# ----------------------------------------------------------------------
# Corruptions are caught.
# ----------------------------------------------------------------------
def _corrupt(spec, index, **changes):
    layers = list(spec.layers)
    layers[index] = dataclasses.replace(layers[index], **changes)
    return dataclasses.replace(spec, layers=layers)


def test_catches_wrong_in_channels_mid_chain():
    spec = spec_registry.spec_for("VGG16", "Cifar10")
    # Odd delta: channel widths are even, so no concat subset can match.
    bad = _corrupt(spec, 3, in_channels=spec.layers[3].in_channels + 3)
    findings = check_spec(bad)
    assert len(findings) == 1
    assert findings[0].rule == "shape-spec"
    assert findings[0].line == 4


def test_catches_wrong_spatial_arithmetic():
    spec = spec_registry.spec_for("ResNet50", "Cifar10")
    index = next(
        i for i, l in enumerate(spec.layers) if l.kind == LayerKind.CONV
    )
    bad = _corrupt(spec, index, out_h=spec.layers[index].out_h + 1)
    findings = check_spec(bad)
    assert findings and "spatial" in findings[0].message


def test_catches_branch_merge_width_mismatch():
    spec = spec_registry.spec_for("Inception-V3", "ImageNet")
    # Find a merge layer: input channels differ from the previous
    # layer's output (a concat consumer), then corrupt its width.
    cur = spec.input_shape
    merge_index = None
    for i, layer in enumerate(spec.layers):
        declared = (layer.in_channels, layer.in_h, layer.in_w)
        if declared != cur and layer.in_channels > cur[0]:
            merge_index = i
            break
        cur = (layer.out_channels, layer.out_h, layer.out_w)
    assert merge_index is not None
    bad = _corrupt(
        spec,
        merge_index,
        in_channels=spec.layers[merge_index].in_channels + 3,
    )
    findings = check_spec(bad)
    assert findings and findings[0].line == merge_index + 1
    assert "unreachable" in findings[0].message


def test_catches_depthwise_channel_change():
    spec = spec_registry.spec_for("MobileNet-V2", "Cifar10")
    index = next(
        i
        for i, l in enumerate(spec.layers)
        if l.kind == LayerKind.DEPTHWISE_CONV
    )
    bad = _corrupt(
        spec, index, out_channels=spec.layers[index].out_channels + 3
    )
    findings = check_spec(bad)
    assert findings and "depthwise" in findings[0].message


def test_catches_bad_linear_fan_in():
    builder = SpecBuilder("toy", (3, 8, 8))
    builder.conv(16, 3, padding=1).pool(2).linear(10)
    spec = builder.build()
    assert check_spec(spec) == []
    bad = _corrupt(spec, 2, in_channels=spec.layers[2].in_channels + 1)
    findings = check_spec(bad)
    assert findings and "flattened" in findings[0].message


# ----------------------------------------------------------------------
# Live module graphs.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("model", sorted(MINI_BUILDERS))
def test_mini_zoo_modules_are_consistent(model):
    assert check_module(build_mini(model, 10), (3, 32, 32)) == []


def test_module_checker_catches_channel_mismatch():
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1),
        nn.Conv2d(16, 8, 3, padding=1),  # wrong: gets 8 channels
    )
    findings = check_module(model, (3, 32, 32))
    assert len(findings) == 1
    assert "layers[1]" in findings[0].message


def test_module_checker_catches_residual_mismatch():
    model = nn.Residual(main=nn.Conv2d(8, 16, 3, padding=1))
    findings = check_module(model, (8, 16, 16))
    assert findings and "residual" in findings[0].message.lower()


def test_module_checker_catches_bad_linear_after_flatten():
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1),
        nn.Flatten(),
        nn.Linear(4 * 8 * 8 + 1, 10),
    )
    findings = check_module(model, (3, 8, 8))
    assert findings and "Linear" in findings[0].message


def test_module_checker_concat_branches():
    good = nn.ConcatBranches(
        [nn.Conv2d(3, 4, 1), nn.Conv2d(3, 6, 3, padding=1)]
    )
    assert check_module(good, (3, 16, 16)) == []
    bad = nn.ConcatBranches(
        [nn.Conv2d(3, 4, 1), nn.Conv2d(3, 6, 3)]  # spatial shrinks
    )
    findings = check_module(bad, (3, 16, 16))
    assert findings and "concat" in findings[0].message.lower()
