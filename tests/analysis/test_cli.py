"""End-to-end CLI tests: exit codes and the --json contract."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


def test_all_exits_zero_on_repo():
    proc = run_cli("all")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stderr


def test_json_output_schema():
    proc = run_cli("--json", "all")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert set(payload) == {"findings", "grandfathered", "notices"}
    assert payload["findings"] == []


def test_lint_fails_on_violating_tree(tmp_path):
    # A fake repo root with one rule violation must exit 1 and report
    # it in machine-readable form.
    bad = tmp_path / "src" / "repro" / "nn" / "layers"
    bad.mkdir(parents=True)
    (bad / "evil.py").write_text(
        "import numpy as np\n\ndef f(x, w):\n    return np.matmul(x, w)\n"
    )
    proc = run_cli("--json", "--root", str(tmp_path), "lint")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert len(payload["findings"]) == 1
    finding = payload["findings"][0]
    assert set(finding) == {"file", "line", "rule", "message"}
    assert finding["rule"] == "backend-dispatch"
    assert finding["file"] == "src/repro/nn/layers/evil.py"
    assert finding["line"] == 4


def test_shapes_command_exits_zero():
    proc = run_cli("shapes")
    assert proc.returncode == 0, proc.stdout + proc.stderr
