"""Tests for the executable pipeline engine: partitioning, the
event-driven executor, and the PipelineGPStrategy overlay.

The simulator remains the oracle: every measured timeline must satisfy
``Timeline.validate()`` (device exclusivity) *and* the simulator's
dependency rules (``validate_dependencies``).
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    HeuristicSchedule,
    Phase,
    pipeline_adagp_engine,
)
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss
from repro.pipeline import (
    PipelineExecutor,
    PipelineKind,
    balanced_boundaries,
    partition_sequential,
    probe_layer_costs,
    validate_dependencies,
)


def small_cnn(seed: int = 42) -> nn.Sequential:
    """BatchNorm-free CNN: pipelined BP is then bit-comparable to
    full-batch BP (BN batch statistics differ per micro-batch)."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2, padding=1),
        nn.Conv2d(8, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(8 * 9 * 9, 10, rng=rng),
    )


class TestPartition:
    def test_balanced_boundaries_minimize_peak(self):
        costs = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        bounds = balanced_boundaries(costs, 2)
        assert bounds == ((0, 1), (1, 6))

    def test_boundaries_cover_all_layers_in_order(self):
        model = build_mini("ResNet50", 10, rng=np.random.default_rng(0))
        _, plan = partition_sequential(model, 4, (3, 16, 16))
        flat = [i for a, b in plan.boundaries for i in range(a, b)]
        assert flat == list(range(len(model.layers)))

    def test_stage_composition_matches_full_model(self):
        model = build_mini("ResNet50", 10, rng=np.random.default_rng(0))
        stages, _ = partition_sequential(model, 3, (3, 16, 16))
        model.eval()
        x = np.random.default_rng(1).standard_normal((4, 3, 16, 16)).astype(
            np.float32
        )
        expected = model(x)
        out = x
        for stage in stages:
            out = stage(out)
        np.testing.assert_array_equal(out, expected)

    def test_probe_costs_conv_dominates_activation(self):
        model = small_cnn()
        costs = probe_layer_costs(model, (3, 16, 16))
        assert len(costs) == len(model.layers)
        assert costs[0] > costs[1]  # Conv2d >> ReLU on the cost model

    def test_probe_leaves_training_state_alone(self):
        model = build_mini("VGG13", 10, rng=np.random.default_rng(0))
        bn = next(m for m in model.modules() if isinstance(m, nn.BatchNorm2d))
        before = bn.running_mean.copy()
        probe_layer_costs(model, (3, 16, 16))
        np.testing.assert_array_equal(bn.running_mean, before)
        assert model.training

    def test_rejects_non_sequential(self):
        with pytest.raises(TypeError):
            probe_layer_costs(nn.Linear(4, 4), (4,))

    def test_rejects_too_many_stages(self):
        with pytest.raises(ValueError):
            balanced_boundaries([1.0, 1.0], 3)


class TestExecutor:
    @pytest.mark.parametrize("kind", [PipelineKind.GPIPE, PipelineKind.DAPPLE])
    def test_bp_batch_matches_full_batch_backprop(self, kind):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 10, 8)
        loss_fn = CrossEntropyLoss()

        reference = small_cnn()
        out = reference(x)
        loss, grad = loss_fn(out, y)
        reference.zero_grad()
        reference.backward(grad)
        ref_grads = {n: p.grad.copy() for n, p in reference.named_parameters()}

        pipelined = small_cnn()
        executor = PipelineExecutor.from_model(
            pipelined, 2, (3, 16, 16), micro_batches=4, kind=kind
        )
        pipelined.zero_grad()
        run = executor.run_bp_batch(x, y, loss_fn)
        executor.validate()
        assert run.loss == pytest.approx(loss, abs=1e-6)
        for name, param in pipelined.named_parameters():
            np.testing.assert_allclose(
                param.grad, ref_grads[name], rtol=1e-4, atol=1e-5
            )

    def test_timeline_dependencies_and_exclusivity(self):
        executor = PipelineExecutor.from_model(
            small_cnn(), 2, (3, 16, 16), micro_batches=4
        )
        rng = np.random.default_rng(2)
        loss_fn = CrossEntropyLoss()
        for _ in range(2):
            x = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
            executor.run_bp_batch(x, rng.integers(0, 10, 8), loss_fn)
        executor.timeline.validate()
        validate_dependencies(executor.timeline)
        # 2 batches x 2 stages x (4 fw + 4 bw) slots
        assert len(executor.timeline.tasks) == 32

    def test_dependency_validator_catches_violations(self):
        executor = PipelineExecutor.from_model(
            small_cnn(), 2, (3, 16, 16), micro_batches=2
        )
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        executor.run_bp_batch(x, rng.integers(0, 10, 4), CrossEntropyLoss())
        broken = executor.timeline
        # Shift the stage-1 forward of micro-batch 0 before its dependency.
        victim = next(
            t for t in broken.tasks
            if t.kind == "fw" and t.stage == 1 and t.micro_batch == 0
        )
        broken.tasks.remove(victim)
        broken.tasks.append(
            type(victim)(victim.device, -1.0, -0.5, "fw", 0, 1, batch=victim.batch)
        )
        with pytest.raises(AssertionError):
            validate_dependencies(broken)

    def test_gp_stream_packs_and_updates_nothing(self):
        executor = PipelineExecutor.from_model(
            small_cnn(), 2, (3, 16, 16), micro_batches=4
        )
        rng = np.random.default_rng(4)
        runs = [
            executor.run_gp_batch(
                rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
            )
            for _ in range(3)
        ]
        executor.validate()
        assert all(run.kind == "gp" for run in runs)
        assert all(np.isnan(run.loss) for run in runs)  # no targets given
        # Streaming with no flush: strictly tighter than sequential.
        sequential = sum(run.compute_time for run in runs)
        assert executor.makespan < sequential

    def test_micro_batch_smaller_than_count_rejected(self):
        executor = PipelineExecutor.from_model(
            small_cnn(), 2, (3, 16, 16), micro_batches=4
        )
        with pytest.raises(ValueError):
            executor.run_gp_batch(np.zeros((2, 3, 16, 16), dtype=np.float32))

    def test_chimera_rejected(self):
        with pytest.raises(ValueError):
            PipelineExecutor.from_model(
                small_cnn(), 2, (3, 16, 16), kind=PipelineKind.CHIMERA
            )


class TestPipelineGPStrategy:
    def test_engine_fit_runs_phases_and_validates(self):
        model = build_mini("ResNet50", 10, rng=np.random.default_rng(0))
        engine = pipeline_adagp_engine(
            model,
            CrossEntropyLoss(),
            num_stages=2,
            micro_batches=4,
            schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
            plateau_scheduler=False,
        )

        def batches():
            rng = np.random.default_rng(5)
            for _ in range(3):
                x = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
                yield x, rng.integers(0, 10, 8)

        history = engine.fit(batches, batches, epochs=2)
        assert history.bp_batches == [3, 1]
        assert history.gp_batches == [0, 2]
        assert all(np.isfinite(history.train_loss))
        # Warm-up/BP epochs recorded per-layer predictor error.
        assert history.predictor_mape[0]
        executor = engine.strategies[Phase.GP].executor
        executor.validate()
        bw_tasks = [t for t in executor.timeline.tasks if t.kind == "bw"]
        assert len(bw_tasks) == 4 * 2 * 4  # 4 BP-style batches x 2 stages x 4 micro

    def test_gp_phase_applies_predicted_updates(self):
        model = build_mini("ResNet50", 10, rng=np.random.default_rng(0))
        engine = pipeline_adagp_engine(
            model,
            CrossEntropyLoss(),
            num_stages=2,
            micro_batches=4,
            plateau_scheduler=False,
        )
        rng = np.random.default_rng(6)
        x = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 10, 8)
        # One BP batch so the predictor sees real gradients first.
        engine.train_batch(x, y, Phase.BP)
        model.zero_grad()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        result = engine.train_batch(x, y, Phase.GP)
        assert result.phase == Phase.GP
        changed = [
            n for n, p in model.named_parameters()
            if not np.array_equal(p.data, before[n])
        ]
        assert changed  # predicted updates landed without any backward
        # No gradient ever touched param.grad during the GP batch.
        layers = nn.predictable_layers(model)
        assert all(layer.weight.grad is None for layer in layers)
