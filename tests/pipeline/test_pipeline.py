"""Tests for the pipeline schedules, simulator, and ADA-GP overlays.

The anchor assertions are the paper's quoted step counts for 4 devices,
4 micro-batches, BW = 2x FW: GPipe 21, DAPPLE 21, Chimera 16 per batch;
GP batches add M*tf; GP->BP pairs take 25 / 25 / 20 steps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import AcceleratorModel, AdaGPDesign
from repro.core import HeuristicSchedule, Phase
from repro.models import spec_for
from repro.pipeline import (
    PipelineConfig,
    PipelineKind,
    batch_makespan,
    gp_batch_increment,
    model_stage_times,
    pipeline_speedup,
    sequence_makespan,
    simulate_chimera,
    simulate_dapple,
    simulate_gp_stream,
    simulate_gp_then_bp,
    simulate_gpipe,
    training_phase_sequence,
)

CFG = PipelineConfig(num_stages=4, micro_batches=4)


class TestPaperStepCounts:
    def test_gpipe_21_steps(self):
        assert simulate_gpipe(CFG, 1, 2).makespan == 21
        assert batch_makespan(PipelineKind.GPIPE, CFG, 1, 2) == 21

    def test_dapple_21_steps(self):
        assert simulate_dapple(CFG, 1, 2).makespan == 21
        assert batch_makespan(PipelineKind.DAPPLE, CFG, 1, 2) == 21

    def test_chimera_16_steps(self):
        assert simulate_chimera(CFG, 1, 2).makespan == 16
        assert batch_makespan(PipelineKind.CHIMERA, CFG, 1, 2) == 16

    def test_gp_stream_packs_batches(self):
        """N streamed GP batches: (S-1) fill + N*M slots (Fig 10b)."""
        assert simulate_gp_stream(CFG, 1).makespan == 7
        assert simulate_gp_stream(CFG, 2).makespan == 11
        assert simulate_gp_stream(CFG, 3).makespan == 15

    def test_transition_pairs(self):
        """Fig 10c / 11c / 12c: 25, 25 and 20 steps for two batches."""
        assert simulate_gp_then_bp(PipelineKind.GPIPE, CFG).makespan == 25
        assert simulate_gp_then_bp(PipelineKind.DAPPLE, CFG).makespan == 25
        assert simulate_gp_then_bp(PipelineKind.CHIMERA, CFG).makespan == 20


class TestSimulatorValidity:
    @pytest.mark.parametrize(
        "sim", [simulate_gpipe, simulate_dapple, simulate_chimera]
    )
    def test_no_device_overlap(self, sim):
        timeline = sim(CFG, 1, 2)
        timeline.validate()  # raises on overlap

    def test_gpipe_dependencies_hold(self):
        timeline = simulate_gpipe(CFG, 1, 2)
        fw_end = {}
        for task in timeline.tasks:
            if task.kind == "fw":
                fw_end[(task.stage, task.micro_batch)] = task.end
        for task in timeline.tasks:
            if task.kind == "fw" and task.stage > 0:
                assert task.start >= fw_end[(task.stage - 1, task.micro_batch)]

    def test_chimera_work_is_conserved(self):
        """Every device runs M forwards and M backwards."""
        timeline = simulate_chimera(CFG, 1, 2)
        for device in range(4):
            tasks = timeline.device_tasks(device)
            assert sum(1 for t in tasks if t.kind == "fw") == 4
            assert sum(1 for t in tasks if t.kind == "bw") == 4

    def test_chimera_requires_even_sizes(self):
        with pytest.raises(ValueError):
            simulate_chimera(PipelineConfig(3, 4))

    @given(
        stages=st.integers(2, 6),
        micro=st.integers(1, 8),
        tf=st.floats(0.5, 3.0),
        tb=st.floats(0.5, 6.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_gpipe_formula_matches_simulation(self, stages, micro, tf, tb):
        cfg = PipelineConfig(stages, micro)
        sim = simulate_gpipe(cfg, tf, tb).makespan
        formula = batch_makespan(PipelineKind.GPIPE, cfg, tf, tb)
        assert sim == pytest.approx(formula, rel=1e-9)

    @given(stages=st.integers(2, 6), micro=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_dapple_never_slower_than_gpipe(self, stages, micro):
        cfg = PipelineConfig(stages, micro)
        assert (
            simulate_dapple(cfg, 1, 2).makespan
            <= simulate_gpipe(cfg, 1, 2).makespan + 1e-9
        )


class TestSequenceMakespan:
    def test_gp_then_bp_matches_paper(self):
        phases = [Phase.GP, Phase.BP]
        assert sequence_makespan(PipelineKind.GPIPE, CFG, phases, 1, 2) == 25
        assert sequence_makespan(PipelineKind.CHIMERA, CFG, phases, 1, 2) == 20

    def test_trailing_gp_pays_drain(self):
        phases = [Phase.BP, Phase.GP]
        assert sequence_makespan(PipelineKind.GPIPE, CFG, phases, 1, 2) == 21 + 4 + 3

    def test_all_gp_stream(self):
        phases = [Phase.GP] * 5
        assert sequence_makespan(PipelineKind.GPIPE, CFG, phases, 1, 2) == 5 * 4 + 3

    def test_warmup_counts_as_bp(self):
        phases = [Phase.WARMUP, Phase.WARMUP]
        assert sequence_makespan(PipelineKind.GPIPE, CFG, phases, 1, 2) == 42

    def test_training_phase_sequence_layout(self):
        schedule = HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),))
        phases = training_phase_sequence(schedule, 2, 3)
        assert phases == [
            Phase.WARMUP, Phase.WARMUP, Phase.WARMUP,
            Phase.GP, Phase.GP, Phase.BP,
        ]


class TestPipelineSpeedups:
    def test_fig20_magnitudes(self):
        """Paper: ~1.654x avg over GPipe/DAPPLE, ~1.575x over Chimera."""
        spec = spec_for("ResNet50", "ImageNet")
        gpipe = pipeline_speedup(
            spec, PipelineKind.GPIPE, AdaGPDesign.MAX,
            epochs=90, batches_per_epoch=10,
        )
        chimera = pipeline_speedup(
            spec, PipelineKind.CHIMERA, AdaGPDesign.MAX,
            epochs=90, batches_per_epoch=10,
        )
        assert 1.5 < gpipe < 1.75
        assert 1.4 < chimera < gpipe

    def test_design_ordering(self):
        spec = spec_for("VGG13", "ImageNet")
        values = [
            pipeline_speedup(
                spec, PipelineKind.GPIPE, design, epochs=30, batches_per_epoch=10
            )
            for design in (AdaGPDesign.LOW, AdaGPDesign.EFFICIENT, AdaGPDesign.MAX)
        ]
        assert values[0] <= values[1] <= values[2]

    def test_stage_times_scale_with_model(self):
        accelerator = AcceleratorModel()
        small = model_stage_times(
            spec_for("MobileNet-V2", "Cifar10"), accelerator, CFG, AdaGPDesign.MAX
        )
        large = model_stage_times(
            spec_for("VGG16", "ImageNet"), accelerator, CFG, AdaGPDesign.MAX
        )
        assert large.tf > small.tf
        assert large.tb > large.tf  # backward dominates forward

    def test_gp_increment_formula(self):
        assert gp_batch_increment(CFG, 2.0) == 8.0
