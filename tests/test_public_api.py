"""Top-level public-API smoke tests: everything in README imports/works."""

import numpy as np

import repro
from repro import (
    AcceleratorConfig,
    AcceleratorModel,
    AdaGPDesign,
    AdaGPTrainer,
    BPTrainer,
    DataflowKind,
    GradientPredictor,
    HeuristicSchedule,
    Phase,
    PipelineConfig,
    PipelineKind,
    build_mini,
    pipeline_speedup,
    spec_for,
)


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_readme_flow():
    """The README quickstart, miniaturized."""
    from repro.data import preset_split
    from repro.nn.losses import CrossEntropyLoss, accuracy

    split = preset_split("Cifar10", num_train=48, num_val=24)
    model = build_mini("VGG13", 10, rng=np.random.default_rng(0))
    trainer = AdaGPTrainer(
        model, CrossEntropyLoss(), lr=0.02, metric_fn=accuracy,
        schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
    )
    history = trainer.fit(
        lambda: split.train.batches(16, rng=np.random.default_rng(1)),
        lambda: split.val.batches(24, shuffle=False),
        epochs=2,
    )
    assert history.num_epochs == 2
    assert sum(history.gp_batches) > 0

    accel = AcceleratorModel()
    spec = spec_for("ResNet50", "ImageNet")
    speedup = accel.speedup(spec, AdaGPDesign.MAX, HeuristicSchedule(), 90, 20)
    assert 1.3 < speedup < 1.7

    pipe = pipeline_speedup(
        spec, PipelineKind.GPIPE, AdaGPDesign.MAX, epochs=30, batches_per_epoch=5
    )
    assert pipe > 1.3


def test_phase_enum_values():
    assert {p.value for p in Phase} == {"warmup", "bp", "gp"}


def test_config_types_importable():
    assert AcceleratorConfig().num_pes == 180
    assert PipelineConfig().num_stages == 4
    assert DataflowKind.WEIGHT_STATIONARY.value == "WS"


def test_predictor_importable():
    model = build_mini("MobileNet-V2", 10, rng=np.random.default_rng(0))
    predictor = GradientPredictor.for_model(model)
    assert predictor.num_parameters() > 0


def test_bp_trainer_importable():
    from repro.nn.losses import CrossEntropyLoss

    model = build_mini("VGG13", 10, rng=np.random.default_rng(0))
    trainer = BPTrainer(model, CrossEntropyLoss())
    assert trainer.optimizer is not None
