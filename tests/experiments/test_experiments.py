"""Tests for the experiment harness (fast/reduced configurations).

Analytical experiments (Figs 16-21, Tables 4-5) run at full fidelity;
training-based experiments (Table 1, Fig 15, Tables 2-3) run at reduced
epoch counts — these tests check structure and qualitative claims, the
full numbers live in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.accel import AdaGPDesign, DataflowKind
from repro.experiments import (
    fig15_predictor_error,
    fig16_characterization,
    fig17_19_speedup,
    fig20_pipeline,
    fig21_energy,
    table1_accuracy,
    table2_transformer,
    table3_yolo,
    table4_5_hardware,
)
from repro.experiments.formats import format_series, format_table, geometric_mean
from repro.pipeline import PipelineKind


class TestFormats:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("S", "epoch", {"l1": [1.0, 2.0]}, [1, 2])
        assert "epoch" in text
        assert "l1" in text

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestTable1:
    def test_reduced_run_produces_parity_rows(self):
        rows = table1_accuracy.run_table1(
            models=["VGG13"], datasets=["Cifar10"], epochs=14,
            num_train=192, num_val=64,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.bp_accuracy > 40.0  # learns
        assert row.adagp_accuracy > 40.0
        text = table1_accuracy.format_table1(rows)
        assert "VGG13" in text and "ADA-GP" in text


class TestFig15:
    def test_errors_are_recorded_per_layer(self):
        result = fig15_predictor_error.run_fig15(
            epochs=8, num_train=96, num_val=48
        )
        assert result.num_layers >= 10
        mape_first = result.layer_mape(0)
        assert len(mape_first) == 8
        text = fig15_predictor_error.format_fig15(result, "mape")
        assert "layer 1" in text

    def test_mse_decreases_over_training(self):
        result = fig15_predictor_error.run_fig15(
            epochs=10, num_train=128, num_val=48
        )
        mse = result.layer_mse(2)
        assert mse[-1] < mse[0]


class TestFig16:
    def test_ten_layers_and_gp_savings(self):
        rows = fig16_characterization.run_fig16(epochs=20, batches_per_epoch=10)
        assert len(rows) == 10
        for row in rows:
            assert row.adagp_total < row.baseline_cycles
        text = fig16_characterization.format_fig16(rows)
        assert "conv10" in text


class TestFigs17to19:
    @pytest.mark.parametrize(
        "dataflow",
        [
            DataflowKind.WEIGHT_STATIONARY,
            DataflowKind.ROW_STATIONARY,
            DataflowKind.INPUT_STATIONARY,
        ],
    )
    def test_speedups_in_range(self, dataflow):
        rows = fig17_19_speedup.run_speedups(
            dataflow, datasets=["Cifar10"], models=["ResNet50", "VGG13"],
            epochs=30, batches_per_epoch=10,
        )
        assert len(rows) == 2
        for row in rows:
            assert 1.0 < row.low <= row.efficient <= row.max_ < 2.0
        text = fig17_19_speedup.format_speedups(rows)
        assert "Geomean" in text


class TestTable2:
    def test_reduced_transformer_run(self):
        rows = table2_transformer.run_table2(
            epochs=6, adagp_epochs=8, num_sentences=64
        )
        assert [r.method for r in rows] == ["Baseline(BP)", "ADA-GP"]
        # Cycle columns come from the full-size spec and land near the
        # paper's 1245.87e9 baseline figure.
        assert rows[0].cycles_e9 == pytest.approx(1245.87, rel=0.15)
        assert rows[1].cycles_e9 < rows[0].cycles_e9
        text = table2_transformer.format_table2(rows)
        assert "BLEU" in text

    def test_cycle_ratio_matches_paper(self):
        """Paper Table 2: 1245.87 / 1104.31 ~ 1.13x."""
        base = table2_transformer._training_cycles(False, 13, 210)
        ada = table2_transformer._training_cycles(True, 13, 210)
        assert base / ada == pytest.approx(1.13, abs=0.03)


class TestTable3:
    def test_reduced_yolo_run(self):
        rows = table3_yolo.run_table3(epochs=6, num_images=48)
        assert [r.method for r in rows] == [
            "Baseline(BP)", "ADA-GP-Efficient", "ADA-GP-MAX",
        ]
        # Efficient and MAX share the software algorithm -> same metrics.
        assert rows[1].class_accuracy == rows[2].class_accuracy
        # Cycle ordering: MAX < Efficient < baseline.
        assert rows[2].cycles_e9 < rows[1].cycles_e9 < rows[0].cycles_e9

    def test_cycle_ratios_match_paper(self):
        """Paper Table 3: 1.17x Efficient, 1.26x MAX for YOLO-v3."""
        base = table3_yolo._training_cycles(None, 20, 20)
        eff = table3_yolo._training_cycles(AdaGPDesign.EFFICIENT, 20, 20)
        max_ = table3_yolo._training_cycles(AdaGPDesign.MAX, 20, 20)
        assert base / eff == pytest.approx(1.176, abs=0.02)
        assert base / max_ == pytest.approx(1.261, abs=0.02)
        assert base / max_ > base / eff


class TestFig20:
    @pytest.mark.parametrize("pipeline", list(PipelineKind))
    def test_pipeline_speedups(self, pipeline):
        rows = fig20_pipeline.run_fig20(
            pipeline, models=["ResNet50", "VGG13"], epochs=30,
            batches_per_epoch=10,
        )
        for row in rows:
            assert 1.2 < row.max_ < 1.8
        text = fig20_pipeline.format_fig20(rows)
        assert pipeline.value in text

    def test_measured_mode_reports_validated_makespans(self):
        """Fig 20 measured mode: real stages, oracle-validated timelines.

        Kept tiny (one model, short phase sequence, small batch); the
        speedup itself is gated in benchmarks/bench_pipeline.py.
        """
        from repro.core import Phase

        rows = fig20_pipeline.run_fig20_measured(
            PipelineKind.GPIPE,
            models=("ResNet50",),
            phases=(Phase.BP, Phase.GP, Phase.GP, Phase.BP),
            batch=8,
        )
        (row,) = rows
        assert row.baseline_makespan > 0
        assert row.adagp_makespan > 0
        assert np.isfinite(row.speedup)
        # Analytical oracle at measured stage times: GP phases only ever
        # shorten the sequence, so the closed form must say speedup >= 1.
        assert row.analytical_speedup >= 1.0
        text = fig20_pipeline.format_fig20_measured(rows)
        assert "measured" in text and "ResNet50" in text

    def test_measured_mode_rejects_chimera(self):
        with pytest.raises(ValueError):
            fig20_pipeline.run_fig20_measured(PipelineKind.CHIMERA)

    def test_gpipe_beats_chimera_speedup(self):
        """ADA-GP gains more over GPipe (more bubbles to fill)."""
        gpipe = fig20_pipeline.run_fig20(
            PipelineKind.GPIPE, models=["ResNet50"], epochs=30,
            batches_per_epoch=10,
        )[0]
        chimera = fig20_pipeline.run_fig20(
            PipelineKind.CHIMERA, models=["ResNet50"], epochs=30,
            batches_per_epoch=10,
        )[0]
        assert gpipe.max_ > chimera.max_


class TestTables4and5:
    def test_formatting_contains_paper_values(self):
        assert "472004" in table4_5_hardware.format_table4a()
        assert "3.712" in table4_5_hardware.format_table4b()
        assert "2982691" in table4_5_hardware.format_table5a()
        assert "2.24e+05" in table4_5_hardware.format_table5b()

    def test_equal_resource_study(self):
        rows = table4_5_hardware.run_equal_resource_study(
            datasets=["Cifar10"], epochs=30, batches_per_epoch=10
        )
        assert len(rows) == 1
        # ADA-GP-MAX gains far more than the bigger baseline.
        assert rows[0].adagp_max_gain > 2 * rows[0].baseline_gain


class TestFig21:
    def test_energy_savings(self):
        rows = fig21_energy.run_fig21(
            models=["VGG13", "ResNet50"], epochs=30, batches_per_epoch=10
        )
        for row in rows:
            assert row.efficient_mj < row.baseline_mj
            assert 0.15 < row.efficient_saving < 0.5
        text = fig21_energy.format_fig21(rows)
        assert "Geomean saving" in text
