"""Tests for the trainable Transformer and MiniYolo models."""

import numpy as np
import pytest

from repro.data.translation import BOS_ID, EOS_ID, PAD_ID
from repro.models import MiniYolo, Seq2SeqTransformer, YoloLoss, decode_predictions
from tests.helpers import max_relative_error, numerical_gradient

RNG = np.random.default_rng(23)


def _small_transformer(**kwargs):
    defaults = dict(
        src_vocab=12, tgt_vocab=12, d_model=8, num_heads=2, d_ff=16,
        num_encoder_layers=2, num_decoder_layers=2,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return Seq2SeqTransformer(**defaults)


class TestSeq2SeqTransformer:
    def test_forward_shape(self):
        model = _small_transformer()
        src = RNG.integers(3, 12, (2, 6))
        tgt = RNG.integers(3, 12, (2, 5))
        logits = model((src, tgt))
        assert logits.shape == (2, 5, 12)

    def test_backward_populates_all_grads(self):
        model = _small_transformer()
        src = RNG.integers(3, 12, (2, 4))
        tgt = RNG.integers(3, 12, (2, 4))
        logits = model((src, tgt))
        model.backward(RNG.standard_normal(logits.shape).astype(np.float32))
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_gradcheck_through_full_model(self):
        """End-to-end gradcheck of the generator weight (touches all paths)."""
        model = _small_transformer(num_encoder_layers=1, num_decoder_layers=1)
        src = RNG.integers(3, 12, (1, 3))
        tgt = RNG.integers(3, 12, (1, 3))
        probe = RNG.standard_normal((1, 3, 12)).astype(np.float32)
        logits = model((src, tgt))
        model.zero_grad()
        model((src, tgt))
        model.backward(probe)
        weight = model.encoder_layers[0].ffn.net[0].weight

        def loss() -> float:
            return float((model((src, tgt)) * probe).sum())

        numeric = numerical_gradient(loss, weight.data, eps=2e-3)
        assert max_relative_error(weight.grad, numeric) < 5e-2

    def test_padding_does_not_leak_gradients(self):
        model = _small_transformer()
        src = np.array([[5, 6, PAD_ID, PAD_ID]])
        tgt = np.array([[BOS_ID, 5, PAD_ID]])
        logits = model((src, tgt))
        assert np.isfinite(logits).all()

    def test_greedy_decode_terminates(self):
        model = _small_transformer()
        src = RNG.integers(3, 12, (3, 4))
        tokens = model.greedy_decode(src, max_len=8, bos_id=BOS_ID, eos_id=EOS_ID)
        assert tokens.shape[0] == 3
        assert tokens.shape[1] <= 8
        assert (tokens[:, 0] == BOS_ID).all()


class TestMiniYolo:
    def test_output_grid_shape(self):
        model = MiniYolo(num_classes=3, grid_size=4, input_size=32,
                         rng=np.random.default_rng(0))
        x = RNG.standard_normal((2, 3, 32, 32)).astype(np.float32)
        out = model(x)
        assert out.shape == (2, 8, 4, 4)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MiniYolo(grid_size=5, input_size=32)

    def test_backward_round_trip(self):
        model = MiniYolo(rng=np.random.default_rng(1))
        x = RNG.standard_normal((1, 3, 32, 32)).astype(np.float32)
        out = model.forward(x)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape


class TestYoloLoss:
    def _target(self):
        target = np.zeros((1, 8, 4, 4), dtype=np.float32)
        target[0, 0, 1, 2] = 1.0  # object at cell (1, 2)
        target[0, 1:5, 1, 2] = [0.5, 0.5, 0.3, 0.3]
        target[0, 5 + 1, 1, 2] = 1.0  # class 1
        return target

    def test_loss_positive_and_finite(self):
        loss_fn = YoloLoss()
        pred = RNG.standard_normal((1, 8, 4, 4)).astype(np.float32)
        loss, grad = loss_fn(pred, self._target())
        assert loss > 0
        assert np.isfinite(grad).all()

    def test_gradient_matches_numerical(self):
        loss_fn = YoloLoss()
        pred = RNG.standard_normal((1, 8, 4, 4)).astype(np.float32) * 0.5
        target = self._target()
        _, grad = loss_fn(pred, target)
        numeric = numerical_gradient(lambda: loss_fn(pred, target)[0], pred)
        np.testing.assert_allclose(grad, numeric, atol=2e-3)

    def test_perfect_prediction_near_zero_box_loss(self):
        loss_fn = YoloLoss(lambda_noobj=0.0)
        target = self._target()
        pred = np.full((1, 8, 4, 4), -20.0, dtype=np.float32)  # conf ~ 0
        pred[0, 0, 1, 2] = 20.0  # conf ~ 1 at the object
        # Perfect xy needs logit(0.5)=0; wh raw.
        pred[0, 1:3, 1, 2] = 0.0
        pred[0, 3:5, 1, 2] = [0.3, 0.3]
        pred[0, 5:, 1, 2] = [-20, 20, -20]
        loss, _ = loss_fn(pred, target)
        assert loss < 1e-3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            YoloLoss()(np.zeros((1, 8, 4, 4)), np.zeros((1, 8, 2, 2)))


class TestDecodePredictions:
    def test_confident_cell_becomes_detection(self):
        pred = np.full((1, 8, 4, 4), -20.0, dtype=np.float32)
        pred[0, 0, 2, 3] = 20.0
        pred[0, 1:3, 2, 3] = 0.0  # center of cell
        pred[0, 3:5, 2, 3] = [0.25, 0.25]
        pred[0, 5:, 2, 3] = [0, 10, 0]
        detections = decode_predictions(pred, conf_threshold=0.5)
        assert len(detections[0]) == 1
        class_id, conf, x1, y1, x2, y2 = detections[0][0]
        assert class_id == 1
        assert conf > 0.99
        np.testing.assert_allclose((x1 + x2) / 2, (3 + 0.5) / 4, atol=1e-5)
        np.testing.assert_allclose(x2 - x1, 0.25, atol=1e-5)

    def test_low_confidence_filtered(self):
        pred = np.full((1, 8, 4, 4), -20.0, dtype=np.float32)
        detections = decode_predictions(pred, conf_threshold=0.5)
        assert detections[0] == []
