"""Tests for LayerSpec / ModelSpec / SpecBuilder and the spec zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import spec_for
from repro.models.spec_registry import CLASSIFICATION_MODELS, all_specs
from repro.models.specs import LayerKind, LayerSpec, SpecBuilder


class TestLayerSpec:
    def test_conv_gemm_dims(self):
        spec = LayerSpec(
            name="c", kind=LayerKind.CONV, in_channels=16, out_channels=32,
            kernel_size=3, in_h=8, in_w=8, out_h=8, out_w=8,
        )
        assert spec.gemm_dims(4) == (32, 16 * 9, 8 * 8 * 4)
        assert spec.weight_params == 32 * 16 * 9
        assert spec.macs_forward(1) == 32 * 144 * 64

    def test_rectangular_kernel(self):
        spec = LayerSpec(
            name="c", kind=LayerKind.CONV, in_channels=8, out_channels=8,
            kernel_size=1, kernel_w=7, out_h=4, out_w=4,
        )
        assert spec.kernel_area == 7
        assert spec.weight_params == 8 * 8 * 7

    def test_depthwise_params(self):
        spec = LayerSpec(
            name="dw", kind=LayerKind.DEPTHWISE_CONV, in_channels=32,
            out_channels=32, kernel_size=3, out_h=4, out_w=4,
        )
        assert spec.weight_params == 32 * 9
        m, k, n = spec.gemm_dims(2)
        assert (m, k) == (1, 9)
        assert n == 32 * 16 * 2

    def test_linear_dims(self):
        spec = LayerSpec(
            name="fc", kind=LayerKind.LINEAR, in_channels=128, out_channels=10,
            out_h=1, out_w=1,
        )
        assert spec.gemm_dims(8) == (10, 128, 8)

    def test_pool_has_no_gemm(self):
        spec = LayerSpec(name="p", kind=LayerKind.POOL, out_channels=4)
        assert not spec.is_compute
        assert spec.macs_forward() == 0
        with pytest.raises(ValueError):
            spec.gemm_dims(1)


class TestSpecBuilder:
    def test_tracks_shapes(self):
        builder = SpecBuilder("t", (3, 32, 32))
        builder.conv(16, 3, padding=1).pool(2).conv(32, 3, stride=2, padding=1)
        assert (builder.channels, builder.height, builder.width) == (32, 8, 8)

    def test_linear_flattens(self):
        builder = SpecBuilder("t", (3, 8, 8))
        builder.conv(4, 3, padding=1).global_pool().linear(10)
        spec = builder.build()
        assert spec.layers[-1].in_channels == 4
        assert spec.layers[-1].out_channels == 10

    def test_invalid_geometry_raises(self):
        builder = SpecBuilder("t", (3, 4, 4))
        with pytest.raises(ValueError):
            builder.conv(8, 7)

    def test_max_gradient_row(self):
        builder = SpecBuilder("t", (3, 8, 8))
        builder.conv(4, 3, padding=1).conv(8, 3, padding=1).linear(10)
        spec = builder.build()
        # rows: 3*9=27, 4*9=36, linear 8*8*8=512
        assert spec.max_gradient_row == 8 * 64


class TestSpecZoo:
    @pytest.mark.parametrize("model", CLASSIFICATION_MODELS)
    def test_all_models_build_for_all_datasets(self, model):
        for dataset in ("Cifar10", "Cifar100", "ImageNet"):
            spec = spec_for(model, dataset)
            assert len(spec.compute_layers) > 5
            assert spec.total_weight_params > 1e5

    def test_known_parameter_counts(self):
        """Spec params must land near published model sizes."""
        published = {
            "ResNet50": 25.5e6,
            "VGG16": 138.3e6,
            "DenseNet121": 8.0e6,
            "MobileNet-V2": 3.5e6,
        }
        for name, expected in published.items():
            actual = spec_for(name, "ImageNet").total_weight_params
            assert abs(actual - expected) / expected < 0.05, name

    def test_known_mac_counts(self):
        published = {
            "ResNet50": 4.1e9,
            "VGG16": 15.5e9,
            "MobileNet-V2": 0.30e9,
        }
        for name, expected in published.items():
            actual = spec_for(name, "ImageNet").total_macs()
            assert abs(actual - expected) / expected < 0.1, name

    def test_vgg13_has_ten_convs(self):
        """Paper Figs 15/16 index VGG13 conv layers 1..10."""
        spec = spec_for("VGG13", "Cifar10")
        convs = [l for l in spec.layers if l.kind == LayerKind.CONV]
        assert len(convs) == 10

    def test_resnet_depth_ordering(self):
        sizes = [
            len(spec_for(name, "ImageNet").compute_layers)
            for name in ("ResNet50", "ResNet101", "ResNet152")
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_yolov3_params(self):
        spec = spec_for("YOLO-v3")
        assert abs(spec.total_weight_params - 61.9e6) / 61.9e6 < 0.05

    def test_transformer_spec_has_attention_structure(self):
        spec = spec_for("Transformer")
        names = [l.name for l in spec.layers]
        assert any("enc0.self_attn.q_proj" in n for n in names)
        assert any("dec2.cross_attn.out_proj" in n for n in names)
        assert names[-1] == "generator"

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            spec_for("AlexNet")
        with pytest.raises(KeyError):
            spec_for("VGG13", "MNIST")

    def test_all_specs_returns_thirteen(self):
        specs = all_specs("Cifar10")
        assert len(specs) == 13

    def test_imagenet_models_are_bigger_than_cifar(self):
        for name in ("VGG13", "ResNet50", "DenseNet121"):
            cifar = spec_for(name, "Cifar10").total_macs()
            imagenet = spec_for(name, "ImageNet").total_macs()
            assert imagenet > 2 * cifar


@given(
    channels=st.integers(1, 64),
    out_channels=st.integers(1, 64),
    kernel=st.sampled_from([1, 3, 5, 7]),
    size=st.integers(7, 64),
    batch=st.integers(1, 8),
)
@settings(max_examples=50, deadline=None)
def test_conv_macs_equal_gemm_product(channels, out_channels, kernel, size, batch):
    """Property: MACs of a conv == product of its GEMM dims, any geometry."""
    if size < kernel:
        return
    builder = SpecBuilder("t", (channels, size, size))
    builder.conv(out_channels, kernel)
    spec = builder.build().layers[0]
    m, k, n = spec.gemm_dims(batch)
    assert spec.macs_forward(batch) == m * k * n
    assert spec.weight_params == m * k
