"""Tests for the trainable mini model zoo."""

import numpy as np
import pytest

from repro import nn
from repro.models import MINI_BUILDERS, build_mini
from repro.models.zoo import mini_densenet, mini_resnet, mini_vgg

RNG = np.random.default_rng(17)


def _input(batch=2, size=16):
    return RNG.standard_normal((batch, 3, size, size)).astype(np.float32)


class TestMiniZoo:
    @pytest.mark.parametrize("name", sorted(MINI_BUILDERS))
    def test_forward_backward_round_trip(self, name):
        model = build_mini(name, 10, rng=np.random.default_rng(0))
        x = _input()
        out = model.forward(x)
        assert out.shape == (2, 10)
        assert np.isfinite(out).all()
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert np.isfinite(grad_in).all()
        # Every parameter that exists received a gradient.
        assert all(p.grad is not None for p in model.parameters())

    @pytest.mark.parametrize("name", sorted(MINI_BUILDERS))
    def test_has_predictable_layers(self, name):
        model = build_mini(name, 10, rng=np.random.default_rng(0))
        layers = nn.predictable_layers(model)
        assert len(layers) >= 5

    def test_vgg13_mini_keeps_ten_convs(self):
        model = mini_vgg("VGG13", 10, rng=np.random.default_rng(0))
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        assert len(convs) == 10

    def test_resnet_minis_preserve_depth_order(self):
        counts = []
        for name in ("ResNet50", "ResNet101", "ResNet152"):
            model = mini_resnet(name, 10, rng=np.random.default_rng(0))
            counts.append(
                len([m for m in model.modules() if isinstance(m, nn.Conv2d)])
            )
        assert counts[0] < counts[1] < counts[2]

    def test_densenet_minis_concatenate(self):
        model = mini_densenet("DenseNet121", 10, rng=np.random.default_rng(0))
        dense_blocks = [m for m in model.modules() if isinstance(m, nn.DenseConcat)]
        assert len(dense_blocks) == 6  # (2, 2, 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_mini("LeNet", 10)

    def test_deterministic_given_rng(self):
        a = build_mini("VGG13", 10, rng=np.random.default_rng(5))
        b = build_mini("VGG13", 10, rng=np.random.default_rng(5))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_reasonable_size_for_numpy_training(self):
        for name in sorted(MINI_BUILDERS):
            model = build_mini(name, 10, rng=np.random.default_rng(0))
            assert model.num_parameters() < 500_000, name
