"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ArrayDataset,
    preset_split,
    synthetic_detection,
    synthetic_images,
    synthetic_translation,
)
from repro.data.translation import (
    BOS_ID,
    EOS_ID,
    PAD_ID,
    reference_translation,
)


class TestArrayDataset:
    def test_batch_iteration_covers_everything(self):
        data = ArrayDataset(np.arange(10), np.arange(10))
        seen = []
        for x, _ in data.batches(3, shuffle=False):
            seen.extend(x.tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffle_is_deterministic_per_rng(self):
        data = ArrayDataset(np.arange(10), np.arange(10))
        a = [x.tolist() for x, _ in data.batches(4, rng=np.random.default_rng(1))]
        b = [x.tolist() for x, _ in data.batches(4, rng=np.random.default_rng(1))]
        assert a == b

    def test_drop_last(self):
        data = ArrayDataset(np.arange(10), np.arange(10))
        batches = list(data.batches(4, shuffle=False, drop_last=True))
        assert len(batches) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(3), np.arange(4))

    def test_num_batches(self):
        data = ArrayDataset(np.arange(10), np.arange(10))
        assert data.num_batches(4) == 3
        assert data.num_batches(4, drop_last=True) == 2


class TestSyntheticImages:
    def test_shapes_and_types(self):
        split = synthetic_images(5, 32, 16, image_size=12, seed=0)
        assert split.train.inputs.shape == (32, 3, 12, 12)
        assert split.train.targets.dtype == np.int64
        assert len(split.val) == 16

    def test_deterministic(self):
        a = synthetic_images(4, 8, 4, seed=3)
        b = synthetic_images(4, 8, 4, seed=3)
        np.testing.assert_array_equal(a.train.inputs, b.train.inputs)

    def test_labels_in_range(self):
        split = synthetic_images(7, 64, 32, seed=1)
        assert split.train.targets.min() >= 0
        assert split.train.targets.max() < 7

    def test_classes_are_separable_from_templates(self):
        """Noise-free samples of different classes must differ."""
        split = synthetic_images(3, 30, 10, noise=0.0, max_shift=0, seed=2)
        xs, ys = split.train.inputs, split.train.targets
        for c in range(3):
            if (ys == c).sum() == 0:
                continue
            class_mean = xs[ys == c].mean(axis=0)
            for other in range(c + 1, 3):
                if (ys == other).sum() == 0:
                    continue
                other_mean = xs[ys == other].mean(axis=0)
                assert np.abs(class_mean - other_mean).max() > 0.1

    def test_presets(self):
        split = preset_split("Cifar100", num_train=16, num_val=8)
        assert split.train.targets.max() < 100
        with pytest.raises(KeyError):
            preset_split("mnist-like")

    def test_too_few_classes_rejected(self):
        with pytest.raises(ValueError):
            synthetic_images(1, 4, 4)


class TestSyntheticTranslation:
    def test_structure(self):
        data = synthetic_translation(num_sentences=20, seed=0)
        assert (data.tgt[:, 0] == BOS_ID).all()
        assert data.src.shape[0] == 20
        # Every sentence has exactly one EOS in the target.
        assert ((data.tgt == EOS_ID).sum(axis=1) == 1).all()

    def test_rule_is_reverse_and_shift(self):
        data = synthetic_translation(
            num_sentences=10, content_vocab=10, shift=3, seed=1
        )
        for i in range(10):
            src_row = data.src[i]
            expected = reference_translation(src_row, shift=3, content_vocab=10)
            tgt_content = [
                int(t) for t in data.tgt[i] if t not in (BOS_ID, EOS_ID, PAD_ID)
            ]
            assert tgt_content == expected

    def test_lengths_bounded(self):
        data = synthetic_translation(num_sentences=50, min_len=2, max_len=5, seed=2)
        lengths = (data.src != PAD_ID).sum(axis=1)
        assert lengths.min() >= 2
        assert lengths.max() <= 5

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            synthetic_translation(min_len=5, max_len=3)


class TestSyntheticDetection:
    def test_shapes(self):
        data = synthetic_detection(num_images=8, image_size=32, grid_size=4)
        assert data.images.shape == (8, 3, 32, 32)
        assert data.grid_targets.shape == (8, 8, 4, 4)
        assert len(data.boxes) == 8

    def test_every_image_has_an_object(self):
        data = synthetic_detection(num_images=16, seed=1)
        assert all(len(b) >= 1 for b in data.boxes)
        assert (data.grid_targets[:, 0].reshape(16, -1).sum(axis=1) >= 1).all()

    def test_grid_targets_match_boxes(self):
        data = synthetic_detection(num_images=12, seed=2)
        for i, boxes in enumerate(data.boxes):
            assert len(boxes) == int(data.grid_targets[i, 0].sum())
            for class_id, x1, y1, x2, y2 in boxes:
                assert 0 <= class_id < data.num_classes
                cx, cy = (x1 + x2) / 2, (y1 + y2) / 2
                gx = int(cx * data.grid_size)
                gy = int(cy * data.grid_size)
                assert data.grid_targets[i, 0, gy, gx] == 1.0
                assert data.grid_targets[i, 5 + class_id, gy, gx] == 1.0

    def test_box_coordinates_normalized(self):
        data = synthetic_detection(num_images=10, seed=3)
        for boxes in data.boxes:
            for _cls, x1, y1, x2, y2 in boxes:
                assert -0.2 <= x1 < x2 <= 1.2
                assert -0.2 <= y1 < y2 <= 1.2


@given(classes=st.integers(2, 20), count=st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_image_generator_properties(classes, count):
    split = synthetic_images(classes, count, 1, image_size=8, seed=count)
    assert len(split.train) == count
    assert split.train.inputs.dtype == np.float32
    assert np.isfinite(split.train.inputs).all()
