"""Tests for Pareto-frontier extraction and rendering."""

from repro.tune import (
    TrialResult,
    describe_schedule,
    dominates,
    frontier_table,
    pareto_front,
    render_frontier,
)


def _result(trial_id, acc, share, status="ok", speedup=1.2, kind="adaptive"):
    if kind == "adaptive":
        schedule = {
            "kind": "adaptive",
            "warmup_epochs": 4,
            "thresholds": [2.0, 5.0],
            "ratios": [[4, 1], [1, 1]],
        }
    else:
        schedule = {
            "kind": "heuristic",
            "warmup_epochs": 6,
            "ladder": [[3, [4, 1]]],
            "final_ratio": [1, 1],
        }
    return TrialResult(
        trial_id=trial_id,
        status=status,
        spec={"schedule": schedule},
        best_metric=acc,
        final_metric=acc,
        gp_share=share,
        cycle_speedup=speedup,
    )


class TestDominates:
    def test_strictly_better_on_one_axis(self):
        assert dominates((0.5, 70.0), (0.4, 70.0))
        assert dominates((0.5, 70.0), (0.5, 60.0))
        assert dominates((0.5, 70.0), (0.4, 60.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((0.5, 70.0), (0.5, 70.0))

    def test_trade_offs_do_not_dominate(self):
        assert not dominates((0.6, 60.0), (0.4, 70.0))
        assert not dominates((0.4, 70.0), (0.6, 60.0))


class TestParetoFront:
    def test_synthetic_front(self):
        """Known synthetic set: the front is exactly the staircase of
        non-dominated trials, sorted by GP share."""
        results = [
            _result("low", 70.0, 0.30),     # front (best accuracy)
            _result("mid", 65.0, 0.50),     # front
            _result("high", 55.0, 0.80),    # front (best share)
            _result("dom1", 64.0, 0.45),    # dominated by mid
            _result("dom2", 55.0, 0.79),    # dominated by high
            _result("dom3", 40.0, 0.30),    # dominated by everything
        ]
        front = pareto_front(results)
        assert [r.trial_id for r in front] == ["low", "mid", "high"]

    def test_coincident_points_all_kept(self):
        results = [_result("a", 70.0, 0.5), _result("b", 70.0, 0.5)]
        assert {r.trial_id for r in pareto_front(results)} == {"a", "b"}

    def test_failed_and_pruned_excluded_by_default(self):
        results = [
            _result("ok", 60.0, 0.5),
            _result("boom", 99.0, 0.9, status="failed"),
            _result("cut", 99.0, 0.9, status="pruned"),
        ]
        assert [r.trial_id for r in pareto_front(results)] == ["ok"]
        widened = pareto_front(results, statuses=("ok", "pruned"))
        assert {r.trial_id for r in widened} == {"cut"}

    def test_nan_axes_never_make_the_front(self):
        results = [
            _result("ok", 60.0, 0.5),
            _result("nan", float("nan"), 0.9),
        ]
        assert [r.trial_id for r in pareto_front(results)] == ["ok"]

    def test_custom_axes(self):
        results = [
            _result("fast", 60.0, 0.5, speedup=2.0),
            _result("slow", 60.0, 0.5, speedup=1.1),
        ]
        front = pareto_front(
            results, x=lambda r: r.cycle_speedup, y=lambda r: r.best_metric
        )
        assert [r.trial_id for r in front] == ["fast"]


class TestRendering:
    def test_describe_schedule_both_kinds(self):
        adaptive = describe_schedule(_result("a", 60.0, 0.5))
        assert "adaptive" in adaptive and "2,5" in adaptive and "4:1" in adaptive
        heuristic = describe_schedule(_result("h", 60.0, 0.5, kind="heuristic"))
        assert "heuristic" in heuristic and "3x4:1" in heuristic

    def test_table_marks_front_rows(self):
        results = [_result("winner", 70.0, 0.5), _result("loser", 60.0, 0.4)]
        table = frontier_table(results)
        winner_line = next(l for l in table.splitlines() if "winner" in l)
        loser_line = next(l for l in table.splitlines() if "loser" in l)
        assert winner_line.startswith("*")
        assert not loser_line.startswith("*")
        assert "50%" in winner_line

    def test_render_marks_front_and_bounds(self):
        results = [
            _result("a", 70.0, 0.3),
            _result("b", 55.0, 0.8),
            _result("c", 40.0, 0.3),
        ]
        plot = render_frontier(results)
        assert plot.count("*") >= 2  # both front members drawn
        assert "o" in plot  # dominated point drawn
        assert "70.00" in plot and "40.00" in plot
        assert "0.30" in plot and "0.80" in plot

    def test_render_with_no_completed_trials(self):
        assert "no completed" in render_frontier(
            [_result("x", 60.0, 0.5, status="failed")]
        )
