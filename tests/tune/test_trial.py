"""Tests for TrialSpec/TrialResult and the spec -> engine mapping."""

import json

import numpy as np
import pytest

from repro.core import AdaptiveSchedule, HeuristicSchedule
from repro.tune import TrialResult, TrialSpec, run_trial, spec_from_config

TINY = dict(
    model="VGG13", dataset="Cifar10", num_train=32, num_val=16,
    batch_size=16, epochs=2, lr=0.05,
)


class TestSpecFromConfig:
    def test_adaptive_thresholds_and_ratios(self):
        spec = spec_from_config(
            "t",
            {
                "kind": "adaptive",
                "thresholds": (1.0, 2.0),
                "ratios": ((8, 1), (4, 1), (1, 1)),
                "warmup_epochs": 3,
            },
        )
        schedule = spec.build_schedule()
        assert isinstance(schedule, AdaptiveSchedule)
        assert schedule.thresholds == (1.0, 2.0)
        assert schedule.ratios == ((8, 1), (4, 1), (1, 1))
        assert schedule.warmup_epochs == 3

    def test_threshold_scale_multiplies_base(self):
        spec = spec_from_config("t", {"kind": "adaptive", "threshold_scale": 4.0})
        assert spec.build_schedule().thresholds == (8.0, 20.0, 40.0)

    def test_heuristic_ladder(self):
        spec = spec_from_config(
            "t",
            {
                "kind": "heuristic",
                "warmup_epochs": 2,
                "ladder": ((3, (4, 1)),),
                "final_ratio": (2, 1),
            },
        )
        schedule = spec.build_schedule()
        assert isinstance(schedule, HeuristicSchedule)
        assert schedule.ladder == ((3, (4, 1)),)
        assert schedule.final_ratio == (2, 1)

    def test_engine_and_run_overrides(self):
        spec = spec_from_config(
            "t",
            {"kind": "adaptive", "batched_gp": True, "lr": 0.5, "epochs": 7},
            seed=11,
            lr=0.01,
            model="ResNet50",
        )
        assert spec.batched_gp is True
        assert spec.lr == 0.5  # config overrides base
        assert spec.epochs == 7
        assert spec.model == "ResNet50"
        assert spec.seed == 11

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown search parameter"):
            spec_from_config("t", {"kind": "adaptive", "threshhold_scale": 2.0})

    def test_mismatched_schedule_keys_raise(self):
        with pytest.raises(ValueError, match="do not apply"):
            spec_from_config("t", {"kind": "heuristic", "thresholds": (1.0,)})

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            spec_from_config("t", {"kind": "bayesian"})


class TestSerialization:
    def test_spec_json_round_trip(self):
        spec = spec_from_config("t", {"kind": "adaptive"}, seed=3, **TINY)
        assert TrialSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_result_json_round_trip_is_exact(self):
        result = TrialResult(
            trial_id="t", status="ok", best_metric=1 / 3, final_metric=2 / 3,
            val_metric=[0.1, 1 / 3], gp_share=0.25, cycle_speedup=1.4142135623730951,
        )
        back = TrialResult.from_dict(json.loads(json.dumps(result.to_dict())))
        # repr-based JSON floats round-trip bit-exactly.
        assert back.deterministic_dict() == result.deterministic_dict()

    def test_failed_result_is_strict_json_and_round_trips(self):
        """NaN fields serialize as null (strict RFC-8259) and restore as
        NaN; failed results still compare equal by deterministic dict."""
        spec = spec_from_config("t", {"kind": "adaptive"}, **TINY)
        failed = TrialResult.failed(spec, ValueError("boom"))
        payload = json.dumps(failed.to_dict(), allow_nan=False)  # no NaN tokens
        back = TrialResult.from_dict(json.loads(payload))
        assert np.isnan(back.best_metric) and np.isnan(back.gp_share)
        assert back.deterministic_dict() == failed.deterministic_dict()

    def test_non_finite_series_entries_serialize_as_null(self):
        diverged = TrialResult(
            trial_id="t", status="ok", val_metric=[1.0, float("nan")],
            train_loss=[float("inf")],
        )
        data = json.loads(json.dumps(diverged.to_dict(), allow_nan=False))
        assert data["val_metric"] == [1.0, None]
        back = TrialResult.from_dict(data)
        assert back.val_metric[0] == 1.0 and np.isnan(back.val_metric[1])
        assert np.isnan(back.train_loss[0])

    def test_metric_at(self):
        result = TrialResult(trial_id="t", status="ok", val_metric=[1.0, 2.0, 3.0])
        assert result.metric_at(2) == 2.0
        assert np.isnan(result.metric_at(5))
        failed = TrialResult(trial_id="t", status="failed", val_metric=[1.0])
        assert np.isnan(failed.metric_at(1))


class TestRunTrial:
    def test_records_both_frontier_axes(self):
        spec = spec_from_config(
            "t", {"kind": "adaptive", "threshold_scale": 8.0, "warmup_epochs": 1},
            seed=5, **TINY,
        )
        result = run_trial(spec)
        assert result.status == "ok"
        assert result.epochs_run == 2
        assert len(result.val_metric) == 2
        assert 0.0 < result.gp_share < 1.0  # epoch 2 actually ran GP
        assert len(result.gp_fraction) == 2
        assert result.cycle_speedup > 1.0
        assert result.spec == spec.to_dict()

    def test_cycle_speedup_costed_at_the_trial_dataset(self):
        """The speedup axis must use the trial's dataset geometry, not
        the cycle model's ImageNet default."""
        from repro.accel import schedule_speedup
        from repro.core import Phase

        spec = spec_from_config(
            "t", {"kind": "adaptive", "threshold_scale": 8.0, "warmup_epochs": 1},
            seed=5, **TINY,
        )
        result = run_trial(spec)
        total = result.epochs_run * 2  # 32 samples / batch 16
        gp = round(total * result.gp_share)
        counts = {Phase.BP: total - gp, Phase.GP: gp}
        cifar = schedule_speedup(
            counts, "VGG13", batch=spec.batch_size, dataset="Cifar10"
        )
        imagenet = schedule_speedup(
            counts, "VGG13", batch=spec.batch_size, dataset="ImageNet"
        )
        assert result.cycle_speedup == cifar != imagenet

    def test_deterministic_across_reruns(self):
        spec = spec_from_config(
            "t", {"kind": "adaptive", "warmup_epochs": 1}, seed=9, **TINY
        )
        assert run_trial(spec).deterministic_dict() == run_trial(spec).deterministic_dict()

    def test_seed_changes_the_run(self):
        base = spec_from_config("t", {"kind": "adaptive"}, seed=1, **TINY)
        other = spec_from_config("t", {"kind": "adaptive"}, seed=2, **TINY)
        assert run_trial(base).train_loss != run_trial(other).train_loss

    def test_prune_spec_stops_training(self):
        spec = spec_from_config(
            "t", {"kind": "adaptive", "warmup_epochs": 1}, seed=5, **TINY
        )
        pruned_spec = TrialSpec(
            **{**spec.to_dict(), "prune": {
                "rung_epochs": [1], "thresholds": [1e9], "monitor": "val_metric",
                "mode": "max",
            }}
        )
        result = run_trial(pruned_spec)
        assert result.status == "pruned"
        assert result.epochs_run == 1  # stopped at the first rung boundary
