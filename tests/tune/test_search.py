"""Tests for the search drivers and the PruneCallback seam."""

import math

import pytest

from repro.core import PruneCallback
from repro.tune import (
    Grid,
    GridSearch,
    RandomSearch,
    SearchRunner,
    SearchSpace,
    SuccessiveHalving,
    TrialResult,
    draw_trials,
)

BASE = dict(
    model="VGG13", dataset="Cifar10", num_train=32, num_val=16,
    batch_size=16, lr=0.05,
)


def _space():
    return SearchSpace(
        {
            "kind": "adaptive",
            "threshold_scale": Grid(1.0, 2.0, 4.0, 8.0),
            "warmup_epochs": 1,
        }
    )


class TestDrivers:
    def test_grid_search_covers_the_grid_with_one_seed(self):
        specs = GridSearch(_space(), trial_seed=7, epochs=2, **BASE).specs()
        assert len(specs) == 4
        assert [s.trial_id for s in specs] == ["g000", "g001", "g002", "g003"]
        assert {s.seed for s in specs} == {7}  # controlled comparison
        scales = [s.schedule["thresholds"][0] for s in specs]
        assert scales == [2.0, 4.0, 8.0, 16.0]

    def test_grid_search_per_trial_seeds(self):
        specs = GridSearch(
            _space(), trial_seed=7, per_trial_seeds=True, epochs=2, **BASE
        ).specs()
        assert len({s.seed for s in specs}) == len(specs)

    def test_random_search_is_deterministic_in_seed(self):
        a = RandomSearch(_space(), num_trials=6, seed=3, epochs=2, **BASE).specs()
        b = RandomSearch(_space(), num_trials=6, seed=3, epochs=2, **BASE).specs()
        c = RandomSearch(_space(), num_trials=6, seed=4, epochs=2, **BASE).specs()
        assert a == b
        assert a != c

    def test_draw_trials_never_shares_seeds(self):
        pairs = draw_trials(_space(), seed=0, count=32)
        assert len({seed for _, seed in pairs}) == 32


class TestPruneCallback:
    class _EngineStub:
        def __init__(self):
            self.stopped = False

        def request_stop(self):
            self.stopped = True

    def test_prunes_below_threshold_at_rung(self):
        callback = PruneCallback(rung_epochs=[2], thresholds=[50.0])
        engine = self._EngineStub()
        callback.on_epoch_end(engine, 0, {"val_metric": 10.0})  # not a rung
        assert not engine.stopped
        callback.on_epoch_end(engine, 1, {"val_metric": 49.9})  # rung: below
        assert engine.stopped
        assert callback.pruned_at_epoch == 1

    def test_meeting_the_cutoff_survives(self):
        """Equality survives: a promoted trial re-run at a larger budget
        meets its own cutoff exactly and must not self-prune."""
        callback = PruneCallback(rung_epochs=[1], thresholds=[50.0])
        engine = self._EngineStub()
        callback.on_epoch_end(engine, 0, {"val_metric": 50.0})
        assert not engine.stopped
        assert callback.pruned_at_epoch is None

    def test_min_mode_prunes_above(self):
        callback = PruneCallback(
            rung_epochs=[1], thresholds=[0.5], monitor="val_loss", mode="min"
        )
        engine = self._EngineStub()
        callback.on_epoch_end(engine, 0, {"val_loss": 0.6})
        assert engine.stopped

    def test_validation(self):
        with pytest.raises(ValueError):
            PruneCallback(rung_epochs=[1, 2], thresholds=[1.0])
        with pytest.raises(ValueError):
            PruneCallback(rung_epochs=[0], thresholds=[1.0])
        with pytest.raises(ValueError):
            PruneCallback(rung_epochs=[1], thresholds=[1.0], mode="avg")
        with pytest.raises(KeyError):
            PruneCallback(rung_epochs=[1], thresholds=[1.0]).on_epoch_end(
                self._EngineStub(), 0, {}
            )


class _FakeRunner:
    """Deterministic metric curves keyed by the trial's first threshold
    (monotone in threshold_scale), recording every spec it was given."""

    def __init__(self):
        self.seen = []

    def run(self, specs):
        self.seen.append(list(specs))
        results = []
        for spec in specs:
            quality = spec.schedule["thresholds"][0]  # 2.0 * scale
            results.append(
                TrialResult(
                    trial_id=spec.trial_id,
                    status="ok",
                    spec=spec.to_dict(),
                    epochs_run=spec.epochs,
                    val_metric=[quality * (e + 1) for e in range(spec.epochs)],
                    best_metric=quality * spec.epochs,
                    final_metric=quality * spec.epochs,
                )
            )
        return results


class TestSuccessiveHalving:
    def _sha(self, **kwargs):
        params = dict(num_trials=4, seed=0, min_epochs=1, max_epochs=4, eta=2)
        params.update(kwargs)
        return SuccessiveHalving(_space(), **params, **BASE)

    def test_rung_budgets_grow_geometrically(self):
        assert self._sha().rung_budgets() == [1, 2, 4]
        assert self._sha(min_epochs=3, max_epochs=13, eta=2).rung_budgets() == [3, 6, 12, 13]

    def test_prunes_strictly_by_rung_metric(self):
        """Only the top ceil(n/eta) by metric-at-the-rung-boundary are
        promoted, every rung."""
        runner = _FakeRunner()
        outcome = self._sha().run(runner)
        assert outcome.rung_budgets == [1, 2, 4]
        assert [len(r) for r in runner.seen] == [4, 2, 1]

        def scale_of(spec):
            return spec.schedule["thresholds"][0]

        rung0 = runner.seen[0]
        promoted = runner.seen[1]
        top_two = sorted(rung0, key=scale_of, reverse=True)[:2]
        assert {scale_of(s) for s in promoted} == {scale_of(s) for s in top_two}
        final = runner.seen[2]
        assert scale_of(final[0]) == max(scale_of(s) for s in rung0)
        # Cutoffs are exactly the worst promoted trial's rung metric.
        assert outcome.cutoffs[0] == min(scale_of(s) for s in promoted) * 1
        assert outcome.survivors[0].trial_id == final[0].trial_id

    def test_later_rungs_carry_armed_prune_callbacks(self):
        runner = _FakeRunner()
        outcome = self._sha().run(runner)
        assert all(spec.prune is None for spec in runner.seen[0])
        rung1_prune = runner.seen[1][0].prune
        assert rung1_prune["rung_epochs"] == [1]
        assert rung1_prune["thresholds"] == [outcome.cutoffs[0]]
        rung2_prune = runner.seen[2][0].prune
        assert rung2_prune["rung_epochs"] == [1, 2]
        assert rung2_prune["thresholds"] == list(outcome.cutoffs)

    def test_failed_trials_rank_last(self):
        class FailingFirstRunner(_FakeRunner):
            def run(self, specs):
                results = super().run(specs)
                if len(self.seen) == 1:  # rung 0 only
                    # Fail the would-be winner: highest quality trial.
                    best = max(
                        results, key=lambda r: r.spec["schedule"]["thresholds"][0]
                    )
                    best.status = "failed"
                    best.val_metric = []
                return results

        runner = FailingFirstRunner()
        outcome = self._sha().run(runner)
        promoted_ids = {spec.trial_id.split("-")[0] for spec in runner.seen[1]}
        failed_id = max(
            runner.seen[0],
            key=lambda s: s.schedule["thresholds"][0],
        ).trial_id.split("-")[0]
        assert failed_id not in promoted_ids
        assert all(not math.isnan(r.metric_at(1)) for r in outcome.survivors)

    def test_end_to_end_with_real_trials(self):
        """A real (tiny) halving run: budgets honored, survivors ran the
        full budget, everything deterministic."""
        sha = SuccessiveHalving(
            _space(), num_trials=2, seed=1, min_epochs=1, max_epochs=2, **BASE
        )
        outcome = sha.run(SearchRunner())
        assert outcome.rung_budgets == [1, 2]
        assert outcome.survivors[0].epochs_run == 2
        again = sha.run(SearchRunner())
        assert [r.deterministic_dict() for r in outcome.results] == [
            r.deterministic_dict() for r in again.results
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), num_trials=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), num_trials=4, eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), num_trials=4, min_epochs=0)
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), num_trials=4, monitor="train_loss")
        # epochs/prune are driver-managed; catching them at construction
        # beats a TypeError deep inside run().
        with pytest.raises(ValueError, match="driver-managed"):
            SuccessiveHalving(_space(), num_trials=4, epochs=16)
        with pytest.raises(ValueError, match="driver-managed"):
            SuccessiveHalving(_space(), num_trials=4, prune={"rung_epochs": [1]})
