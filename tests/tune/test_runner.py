"""Tests for the parallel runner: journal resume, crash isolation."""

import json

import pytest

from repro.tune import (
    JOURNAL_VERSION,
    SearchRunner,
    TrialSpec,
    load_journal,
    spec_from_config,
)

TINY = dict(
    model="VGG13", dataset="Cifar10", num_train=32, num_val=16,
    batch_size=16, epochs=2, lr=0.05,
)


def _specs(count=3, **overrides):
    params = {**TINY, **overrides}
    return [
        spec_from_config(
            f"t{i:02d}",
            {"kind": "adaptive", "warmup_epochs": 1, "threshold_scale": 2.0 + i},
            seed=i,
            **params,
        )
        for i in range(count)
    ]


class TestSerialRunner:
    def test_results_in_spec_order(self):
        results = SearchRunner().run(_specs(2))
        assert [r.trial_id for r in results] == ["t00", "t01"]
        assert all(r.status == "ok" for r in results)

    def test_duplicate_ids_rejected(self):
        specs = _specs(1) * 2
        with pytest.raises(ValueError, match="unique"):
            SearchRunner().run(specs)

    def test_crash_isolation(self):
        """A failing trial becomes a failed result; the rest complete."""
        specs = _specs(2)
        bad = TrialSpec(**{**specs[0].to_dict(), "trial_id": "bad", "model": "NoSuchNet"})
        results = SearchRunner().run([specs[0], bad, specs[1]])
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert "NoSuchNet" in results[1].error


class TestJournalResume:
    def test_interrupted_search_resumes_bit_identically(self, tmp_path):
        """Run a prefix, then the full search against the same journal:
        finished trials are not re-run and every result matches an
        uninterrupted run exactly (minus wall time)."""
        journal = tmp_path / "search.jsonl"
        specs = _specs(3)

        first = SearchRunner(journal=journal)
        first.run(specs[:2])  # the "interrupted" prefix
        assert first.executed == 2

        resumed = SearchRunner(journal=journal)
        resumed_results = resumed.run(specs)
        assert resumed.executed == 1  # only the unfinished trial ran

        uninterrupted = SearchRunner().run(specs)
        assert [r.deterministic_dict() for r in resumed_results] == [
            r.deterministic_dict() for r in uninterrupted
        ]

    def test_journal_records_are_versioned(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        SearchRunner(journal=journal).run(_specs(1))
        record = json.loads(journal.read_text().splitlines()[0])
        assert record["version"] == JOURNAL_VERSION
        assert record["trial"]["trial_id"] == "t00"
        assert record["result"]["status"] == "ok"

    def test_torn_final_line_is_ignored(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        runner = SearchRunner(journal=journal)
        runner.run(_specs(2))
        with journal.open("a") as handle:
            handle.write('{"version": 1, "trial": {"trial_id": "t02"')  # torn
        assert set(load_journal(journal)) == {"t00", "t01"}
        resumed = SearchRunner(journal=journal)
        resumed.run(_specs(3))
        assert resumed.executed == 1

    def test_mismatched_spec_fails_loudly(self, tmp_path):
        """A journal from a different search must not silently satisfy
        this one."""
        journal = tmp_path / "search.jsonl"
        SearchRunner(journal=journal).run(_specs(1))
        changed = _specs(1, epochs=3)
        with pytest.raises(ValueError, match="different spec"):
            SearchRunner(journal=journal).run(changed)

    def test_tuple_bearing_specs_resume_cleanly(self, tmp_path):
        """Hand-built specs with tuples (prune kwargs, schedule knobs)
        must compare equal to their JSON round-trip, or resume would
        reject its own journal as belonging to another search."""
        journal = tmp_path / "search.jsonl"
        spec = TrialSpec(
            **{
                **_specs(1)[0].to_dict(),
                "trial_id": "tup",
                "prune": {"rung_epochs": (1,), "thresholds": (0.0,)},
            }
        )
        SearchRunner(journal=journal).run([spec])
        resumed = SearchRunner(journal=journal)
        results = resumed.run([spec])
        assert resumed.executed == 0
        assert results[0].status in ("ok", "pruned")

    def test_failed_trials_are_journaled_too(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        bad = TrialSpec(
            **{**_specs(1)[0].to_dict(), "trial_id": "bad", "model": "NoSuchNet"}
        )
        SearchRunner(journal=journal).run([bad])
        resumed = SearchRunner(journal=journal)
        results = resumed.run([bad])
        assert resumed.executed == 0
        assert results[0].status == "failed"


class TestParallelRunner:
    def test_pool_matches_serial_bit_for_bit(self):
        specs = _specs(3)
        serial = SearchRunner(workers=1).run(specs)
        parallel = SearchRunner(workers=2).run(specs)
        assert [r.deterministic_dict() for r in parallel] == [
            r.deterministic_dict() for r in serial
        ]

    def test_resume_under_different_worker_count_is_identical(self, tmp_path):
        """Trial seeds are id-keyed (seed_for_trial), never derived from
        the executing pool — so a search interrupted and resumed with a
        different ``workers=`` count must reproduce the uninterrupted
        search's results bit for bit."""
        from repro.tune import RandomSearch, SearchSpace
        from repro.tune.space import LogUniform

        space = SearchSpace(
            {
                "kind": "adaptive",
                "threshold_scale": LogUniform(1.0, 8.0),
                "warmup_epochs": 1,
            }
        )
        specs = RandomSearch(space, num_trials=4, seed=9, **TINY).specs()

        reference = SearchRunner(workers=1).run(specs)

        journal = tmp_path / "search.jsonl"
        first = SearchRunner(workers=2, journal=journal)
        first.run(specs[:2])  # "interrupted" after two trials
        assert first.executed == 2
        resumed = SearchRunner(workers=3, journal=journal)
        results = resumed.run(specs)
        assert resumed.executed == 2  # journal served the finished half

        assert [r.deterministic_dict() for r in results] == [
            r.deterministic_dict() for r in reference
        ]

    def test_pool_crash_isolation_and_journal(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        specs = _specs(2)
        bad = TrialSpec(**{**specs[0].to_dict(), "trial_id": "bad", "model": "NoSuchNet"})
        results = SearchRunner(workers=2, journal=journal).run([specs[0], bad, specs[1]])
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert set(load_journal(journal)) == {"t00", "bad", "t01"}

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            SearchRunner(workers=0)

    def test_pool_breakage_is_not_journaled(self, tmp_path, monkeypatch):
        """A worker dying (BrokenProcessPool-class failure) fails the
        in-flight trial for this run but must NOT be journaled — a
        resume retries it instead of serving the broken-pool verdict
        forever."""
        from repro.tune import runner as runner_module

        class _DeadFuture:
            def result(self):
                raise RuntimeError("worker died")

        class _DeadPool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, arg):
                return _DeadFuture()

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", _DeadPool)
        monkeypatch.setattr(
            runner_module, "wait", lambda futures, return_when: (set(futures), set())
        )
        journal = tmp_path / "search.jsonl"
        specs = _specs(2)
        results = SearchRunner(workers=2, journal=journal).run(specs)
        assert all(r.status == "failed" for r in results)
        assert not journal.exists() or load_journal(journal) == {}
        # The resumed (healthy, serial here) run re-executes everything.
        healthy = SearchRunner(journal=journal)
        resumed = healthy.run(specs)
        assert healthy.executed == 2
        assert all(r.status == "ok" for r in resumed)
