"""Tests for the parallel runner: journal resume, crash isolation, and
multi-host claimed execution over a shared journal."""

import json
import multiprocessing as mp
import time

import pytest

from repro.tune import (
    JOURNAL_VERSION,
    SearchRunner,
    TrialResult,
    TrialSpec,
    load_journal,
    spec_from_config,
)


def _drive_claimed_runner(journal, owner, spec_dicts, outcome_path):
    """Child-process entry point for the multi-host claim race (module
    level so it pickles; one process per "host", like real deployment)."""
    specs = [TrialSpec.from_dict(d) for d in spec_dicts]
    runner = SearchRunner(
        journal=journal, claim=True, lease=30.0, poll_interval=0.01, owner=owner
    )
    results = runner.run(specs)
    outcome_path.write_text(
        json.dumps(
            {"executed": runner.executed, "results": [r.to_dict() for r in results]}
        )
    )

TINY = dict(
    model="VGG13", dataset="Cifar10", num_train=32, num_val=16,
    batch_size=16, epochs=2, lr=0.05,
)


def _specs(count=3, **overrides):
    params = {**TINY, **overrides}
    return [
        spec_from_config(
            f"t{i:02d}",
            {"kind": "adaptive", "warmup_epochs": 1, "threshold_scale": 2.0 + i},
            seed=i,
            **params,
        )
        for i in range(count)
    ]


class TestSerialRunner:
    def test_results_in_spec_order(self):
        results = SearchRunner().run(_specs(2))
        assert [r.trial_id for r in results] == ["t00", "t01"]
        assert all(r.status == "ok" for r in results)

    def test_duplicate_ids_rejected(self):
        specs = _specs(1) * 2
        with pytest.raises(ValueError, match="unique"):
            SearchRunner().run(specs)

    def test_crash_isolation(self):
        """A failing trial becomes a failed result; the rest complete."""
        specs = _specs(2)
        bad = TrialSpec(**{**specs[0].to_dict(), "trial_id": "bad", "model": "NoSuchNet"})
        results = SearchRunner().run([specs[0], bad, specs[1]])
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert "NoSuchNet" in results[1].error


class TestJournalResume:
    def test_interrupted_search_resumes_bit_identically(self, tmp_path):
        """Run a prefix, then the full search against the same journal:
        finished trials are not re-run and every result matches an
        uninterrupted run exactly (minus wall time)."""
        journal = tmp_path / "search.jsonl"
        specs = _specs(3)

        first = SearchRunner(journal=journal)
        first.run(specs[:2])  # the "interrupted" prefix
        assert first.executed == 2

        resumed = SearchRunner(journal=journal)
        resumed_results = resumed.run(specs)
        assert resumed.executed == 1  # only the unfinished trial ran

        uninterrupted = SearchRunner().run(specs)
        assert [r.deterministic_dict() for r in resumed_results] == [
            r.deterministic_dict() for r in uninterrupted
        ]

    def test_journal_records_are_versioned(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        SearchRunner(journal=journal).run(_specs(1))
        record = json.loads(journal.read_text().splitlines()[0])
        assert record["version"] == JOURNAL_VERSION
        assert record["trial"]["trial_id"] == "t00"
        assert record["result"]["status"] == "ok"

    def test_torn_final_line_is_ignored(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        runner = SearchRunner(journal=journal)
        runner.run(_specs(2))
        with journal.open("a") as handle:
            handle.write('{"version": 1, "trial": {"trial_id": "t02"')  # torn
        assert set(load_journal(journal)) == {"t00", "t01"}
        resumed = SearchRunner(journal=journal)
        resumed.run(_specs(3))
        assert resumed.executed == 1

    def test_mismatched_spec_fails_loudly(self, tmp_path):
        """A journal from a different search must not silently satisfy
        this one."""
        journal = tmp_path / "search.jsonl"
        SearchRunner(journal=journal).run(_specs(1))
        changed = _specs(1, epochs=3)
        with pytest.raises(ValueError, match="different spec"):
            SearchRunner(journal=journal).run(changed)

    def test_tuple_bearing_specs_resume_cleanly(self, tmp_path):
        """Hand-built specs with tuples (prune kwargs, schedule knobs)
        must compare equal to their JSON round-trip, or resume would
        reject its own journal as belonging to another search."""
        journal = tmp_path / "search.jsonl"
        spec = TrialSpec(
            **{
                **_specs(1)[0].to_dict(),
                "trial_id": "tup",
                "prune": {"rung_epochs": (1,), "thresholds": (0.0,)},
            }
        )
        SearchRunner(journal=journal).run([spec])
        resumed = SearchRunner(journal=journal)
        results = resumed.run([spec])
        assert resumed.executed == 0
        assert results[0].status in ("ok", "pruned")

    def test_failed_trials_are_journaled_too(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        bad = TrialSpec(
            **{**_specs(1)[0].to_dict(), "trial_id": "bad", "model": "NoSuchNet"}
        )
        SearchRunner(journal=journal).run([bad])
        resumed = SearchRunner(journal=journal)
        results = resumed.run([bad])
        assert resumed.executed == 0
        assert results[0].status == "failed"


class TestParallelRunner:
    def test_pool_matches_serial_bit_for_bit(self):
        specs = _specs(3)
        serial = SearchRunner(workers=1).run(specs)
        parallel = SearchRunner(workers=2).run(specs)
        assert [r.deterministic_dict() for r in parallel] == [
            r.deterministic_dict() for r in serial
        ]

    def test_resume_under_different_worker_count_is_identical(self, tmp_path):
        """Trial seeds are id-keyed (seed_for_trial), never derived from
        the executing pool — so a search interrupted and resumed with a
        different ``workers=`` count must reproduce the uninterrupted
        search's results bit for bit."""
        from repro.tune import RandomSearch, SearchSpace
        from repro.tune.space import LogUniform

        space = SearchSpace(
            {
                "kind": "adaptive",
                "threshold_scale": LogUniform(1.0, 8.0),
                "warmup_epochs": 1,
            }
        )
        specs = RandomSearch(space, num_trials=4, seed=9, **TINY).specs()

        reference = SearchRunner(workers=1).run(specs)

        journal = tmp_path / "search.jsonl"
        first = SearchRunner(workers=2, journal=journal)
        first.run(specs[:2])  # "interrupted" after two trials
        assert first.executed == 2
        resumed = SearchRunner(workers=3, journal=journal)
        results = resumed.run(specs)
        assert resumed.executed == 2  # journal served the finished half

        assert [r.deterministic_dict() for r in results] == [
            r.deterministic_dict() for r in reference
        ]

    def test_pool_crash_isolation_and_journal(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        specs = _specs(2)
        bad = TrialSpec(**{**specs[0].to_dict(), "trial_id": "bad", "model": "NoSuchNet"})
        results = SearchRunner(workers=2, journal=journal).run([specs[0], bad, specs[1]])
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert set(load_journal(journal)) == {"t00", "bad", "t01"}

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            SearchRunner(workers=0)

    def test_claim_mode_validated(self, tmp_path):
        with pytest.raises(ValueError, match="shared journal"):
            SearchRunner(claim=True)
        with pytest.raises(ValueError, match="one claiming runner per host"):
            SearchRunner(claim=True, journal=tmp_path / "j.jsonl", workers=2)

    def test_pool_breakage_is_not_journaled(self, tmp_path, monkeypatch):
        """A worker dying (BrokenProcessPool-class failure) fails the
        in-flight trial for this run but must NOT be journaled — a
        resume retries it instead of serving the broken-pool verdict
        forever."""
        from repro.tune import runner as runner_module

        class _DeadFuture:
            def result(self):
                raise RuntimeError("worker died")

        class _DeadPool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, arg):
                return _DeadFuture()

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", _DeadPool)
        monkeypatch.setattr(
            runner_module, "wait", lambda futures, return_when: (set(futures), set())
        )
        journal = tmp_path / "search.jsonl"
        specs = _specs(2)
        results = SearchRunner(workers=2, journal=journal).run(specs)
        assert all(r.status == "failed" for r in results)
        assert not journal.exists() or load_journal(journal) == {}
        # The resumed (healthy, serial here) run re-executes everything.
        healthy = SearchRunner(journal=journal)
        resumed = healthy.run(specs)
        assert healthy.executed == 2
        assert all(r.status == "ok" for r in resumed)


class TestClaimedRunner:
    """Multi-host claimed execution: several runners, one shared journal,
    every trial exactly once, union bit-identical to a serial run."""

    def _runner(self, journal, owner, **overrides):
        kwargs = dict(journal=journal, claim=True, lease=30.0, poll_interval=0.01)
        kwargs.update(overrides)
        return SearchRunner(owner=owner, **kwargs)

    def test_second_runner_adopts_peer_results(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        specs = _specs(2)
        host_a = self._runner(journal, "host-a")
        results_a = host_a.run(specs)
        assert host_a.executed == 2

        host_b = self._runner(journal, "host-b")
        results_b = host_b.run(specs)
        assert host_b.executed == 0  # everything served from the journal
        assert [r.deterministic_dict() for r in results_b] == [
            r.deterministic_dict() for r in results_a
        ]

    def test_claims_are_recorded_with_owner_and_lease(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        runner = self._runner(journal, "host-a")
        runner.run(_specs(1))
        claims = journal.with_name(journal.name + ".claims")
        record = json.loads(claims.read_text().splitlines()[0])
        assert record["version"] == JOURNAL_VERSION
        assert record["trial_id"] == "t00"
        assert record["owner"] == "host-a"
        assert record["ts"] <= time.time()

    def test_live_claim_is_respected(self, tmp_path):
        """A trial under a live peer lease is not claimable; the runner
        must wait for the result instead of double-executing."""
        journal = tmp_path / "search.jsonl"
        specs = _specs(1)
        runner = self._runner(journal, "host-b")
        claims = journal.with_name(journal.name + ".claims")
        claims.write_text(
            json.dumps(
                {
                    "version": JOURNAL_VERSION,
                    "trial_id": "t00",
                    "owner": "host-a",
                    "ts": time.time(),
                }
            )
            + "\n"
        )
        assert runner._claim_next(specs) is None

    def test_orphaned_claim_is_reclaimed(self, tmp_path):
        """A claim whose lease expired without a journaled result marks a
        crashed host; the next runner silently takes the trial over."""
        journal = tmp_path / "search.jsonl"
        specs = _specs(1)
        claims = journal.with_name(journal.name + ".claims")
        claims.write_text(
            json.dumps(
                {
                    "version": JOURNAL_VERSION,
                    "trial_id": "t00",
                    "owner": "host-dead",
                    "ts": time.time() - 999.0,
                }
            )
            + "\n"
        )
        runner = self._runner(journal, "host-b")
        results = runner.run(specs)
        assert runner.executed == 1
        assert results[0].status == "ok"
        # The reclaim superseded the orphan in the claims ledger.
        latest = [json.loads(line) for line in claims.read_text().splitlines()][-1]
        assert latest["owner"] == "host-b"

    def test_two_concurrent_runners_match_serial_bitwise(self, tmp_path):
        """The acceptance property: two claiming runner *processes* (the
        deployment unit — trials are not thread-safe by design) racing
        over one journal execute every trial exactly once between them,
        and each host's result list is bit-identical to one serial run."""
        journal = tmp_path / "search.jsonl"
        specs = _specs(4)
        serial = SearchRunner().run(specs)

        spec_dicts = [spec.to_dict() for spec in specs]
        outcomes = [tmp_path / f"host-{i}.json" for i in range(2)]
        procs = [
            mp.Process(
                target=_drive_claimed_runner,
                args=(journal, f"host-{i}", spec_dicts, outcomes[i]),
            )
            for i in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=300)
        assert all(proc.exitcode == 0 for proc in procs)

        reports = [json.loads(path.read_text()) for path in outcomes]
        assert sum(report["executed"] for report in reports) == len(specs)
        assert set(load_journal(journal)) == {spec.trial_id for spec in specs}
        expected = [r.deterministic_dict() for r in serial]
        for report in reports:
            got = [
                TrialResult.from_dict(result).deterministic_dict()
                for result in report["results"]
            ]
            assert got == expected
