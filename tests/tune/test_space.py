"""Tests for search-space primitives: domains, grids, spawned rngs."""

import numpy as np
import pytest

from repro.tune import (
    Choice,
    Fixed,
    Grid,
    LogUniform,
    SearchSpace,
    Uniform,
    spawn_rngs,
    spawn_seeds,
)


class TestDomains:
    def test_grid_enumerates_in_order(self):
        assert Grid(1, 2, 3).values() == (1, 2, 3)
        assert Grid([1, 2, 3]).values() == (1, 2, 3)

    def test_grid_freezes_list_options(self):
        """Nested lists become tuples, so sampled configs compare like
        the literals a TrialSpec schedule config stores."""
        domain = Grid([(4, 1), (3, 1)], [(2, 1)])
        assert domain.values() == (((4, 1), (3, 1)), ((2, 1),))

    def test_grid_needs_options(self):
        with pytest.raises(ValueError):
            Grid()

    def test_choice_is_a_grid(self):
        assert isinstance(Choice("a", "b"), Grid)
        assert Choice("a", "b").values() == ("a", "b")

    def test_grid_sample_stays_in_options(self):
        domain = Grid(10, 20, 30)
        rng = np.random.default_rng(0)
        assert all(domain.sample(rng) in (10, 20, 30) for _ in range(50))

    def test_uniform_bounds(self):
        domain = Uniform(2.0, 3.0)
        rng = np.random.default_rng(0)
        samples = [domain.sample(rng) for _ in range(200)]
        assert all(2.0 <= s < 3.0 for s in samples)
        with pytest.raises(ValueError):
            Uniform(3.0, 3.0)

    def test_log_uniform_bounds_and_spread(self):
        domain = LogUniform(1e-3, 1.0)
        rng = np.random.default_rng(0)
        samples = [domain.sample(rng) for _ in range(500)]
        assert all(1e-3 <= s < 1.0 for s in samples)
        # Log-uniform: about a third of the mass in each decade.
        below = sum(s < 1e-2 for s in samples) / len(samples)
        assert 0.2 < below < 0.5
        with pytest.raises(ValueError):
            LogUniform(0.0, 1.0)

    def test_continuous_domains_refuse_grid(self):
        with pytest.raises(TypeError):
            Uniform(0.0, 1.0).values()
        with pytest.raises(TypeError):
            LogUniform(0.1, 1.0).values()


class TestSearchSpace:
    def _space(self):
        return SearchSpace(
            {
                "kind": "adaptive",  # fixed value wraps into Grid
                "scale": Grid(1.0, 4.0),
                "warmup": Grid(2, 4, 6),
            }
        )

    def test_fixed_values_pass_through(self):
        space = self._space()
        config = space.sample(np.random.default_rng(0))
        assert config["kind"] == "adaptive"

    def test_fixed_sequences_stay_whole(self):
        """A bare tuple/ladder is one constant, never an implicit grid
        over its elements."""
        space = SearchSpace(
            {
                "final_ratio": (9, 1),
                "ladder": [[2, [4, 1]], [2, [3, 1]]],
                "scale": Grid(1.0, 2.0),
            }
        )
        config = space.sample(np.random.default_rng(0))
        assert config["final_ratio"] == (9, 1)
        assert config["ladder"] == ((2, (4, 1)), (2, (3, 1)))
        grid = list(space.grid())
        assert len(grid) == 2  # only the explicit Grid varies
        assert all(c["final_ratio"] == (9, 1) for c in grid)
        assert Fixed((9, 1)).values() == ((9, 1),)

    def test_grid_is_the_cartesian_product(self):
        space = self._space()
        grid = list(space.grid())
        assert len(grid) == space.grid_size() == 6
        assert grid[0] == {"kind": "adaptive", "scale": 1.0, "warmup": 2}
        # First parameter varies slowest.
        assert [c["scale"] for c in grid] == [1.0, 1.0, 1.0, 4.0, 4.0, 4.0]
        assert len({tuple(sorted(c.items())) for c in grid}) == 6

    def test_grid_with_continuous_domain_raises(self):
        space = SearchSpace({"x": Uniform(0, 1)})
        with pytest.raises(TypeError):
            list(space.grid())

    def test_sampling_is_deterministic_in_the_seed(self):
        space = self._space()
        assert space.sample_many(7, 5) == space.sample_many(7, 5)
        assert space.sample_many(7, 5) != space.sample_many(8, 5)

    def test_sample_prefixes_are_stable(self):
        """Trial i's configuration is independent of how many trials are
        drawn — growing a search keeps its prefix."""
        space = self._space()
        assert space.sample_many(3, 10)[:4] == space.sample_many(3, 4)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace({})


class TestSpawnedStreams:
    def test_spawn_rngs_deterministic(self):
        a = [rng.integers(1 << 30) for rng in spawn_rngs(0, 4)]
        b = [rng.integers(1 << 30) for rng in spawn_rngs(0, 4)]
        assert a == b

    def test_spawn_rngs_non_colliding(self):
        """Spawned per-trial streams never coincide — unlike seed+i
        arithmetic, which collides across overlapping searches."""
        draws = [tuple(rng.integers(1 << 30, size=4)) for rng in spawn_rngs(0, 64)]
        assert len(set(draws)) == 64

    def test_spawn_seeds_json_safe_and_distinct(self):
        seeds = spawn_seeds(5, 64)
        assert all(isinstance(s, int) for s in seeds)
        assert len(set(seeds)) == 64
        assert seeds == spawn_seeds(5, 64)

    def test_spawn_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_seed_for_trial_is_pure_in_identity(self):
        from repro.tune import seed_for_trial

        # Same (root seed, id) always maps to the same seed; position,
        # batch size and worker count never enter the derivation.
        assert seed_for_trial(5, "r003") == seed_for_trial(5, "r003")
        assert seed_for_trial(5, "r003") != seed_for_trial(6, "r003")
        assert seed_for_trial(5, "r003") != seed_for_trial(5, "r004")
        seeds = {seed_for_trial(0, f"r{i:03d}") for i in range(256)}
        assert len(seeds) == 256  # no collisions across a wide batch
        assert all(isinstance(s, int) and 0 <= s < 2**32 for s in seeds)
