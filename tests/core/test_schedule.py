"""Tests for the phase schedules (§3.1, §3.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveSchedule,
    HeuristicSchedule,
    PAPER_RATIO_LADDER,
    Phase,
    phase_counts,
)


class TestHeuristicSchedule:
    def test_warmup_is_all_bp(self):
        schedule = HeuristicSchedule(warmup_epochs=3)
        for epoch in range(3):
            for batch in range(20):
                assert schedule.phase_for(epoch, batch) == Phase.WARMUP

    def test_paper_ladder_progression(self):
        """4:1 for 4 epochs, 3:1 for 4, 2:1 for 4, then 1:1 forever."""
        schedule = HeuristicSchedule(warmup_epochs=10)
        assert schedule.ratio_for_epoch(9) is None
        assert schedule.ratio_for_epoch(10) == (4, 1)
        assert schedule.ratio_for_epoch(13) == (4, 1)
        assert schedule.ratio_for_epoch(14) == (3, 1)
        assert schedule.ratio_for_epoch(18) == (2, 1)
        assert schedule.ratio_for_epoch(22) == (1, 1)
        assert schedule.ratio_for_epoch(89) == (1, 1)

    def test_gp_comes_first_within_cycle(self):
        """§3.5: 'Initially, it proceeds with Phase GP ... for k batches'."""
        schedule = HeuristicSchedule(warmup_epochs=0)
        phases = [schedule.phase_for(0, b) for b in range(5)]
        assert phases == [Phase.GP] * 4 + [Phase.BP]

    def test_gp_fraction(self):
        schedule = HeuristicSchedule(warmup_epochs=1)
        assert schedule.gp_fraction(0) == 0.0
        assert schedule.gp_fraction(1) == pytest.approx(0.8)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            HeuristicSchedule().ratio_for_epoch(-1)

    def test_paper_training_mix_gives_47_percent_gp(self):
        """Over 90 epochs with L=10 the GP share is ~47.6%, which is what
        makes the headline ~1.47x speedup arithmetic work."""
        schedule = HeuristicSchedule(warmup_epochs=10)
        counts = phase_counts(schedule, 90, 100)
        total = sum(counts.values())
        gp_share = counts[Phase.GP] / total
        assert 0.45 < gp_share < 0.50

    @given(
        warmup=st.integers(0, 5),
        epochs=st.integers(1, 30),
        batches=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_partition_all_batches(self, warmup, epochs, batches):
        schedule = HeuristicSchedule(warmup_epochs=warmup)
        counts = phase_counts(schedule, epochs, batches)
        assert sum(counts.values()) == epochs * batches

    @given(epoch=st.integers(0, 40), batch=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_ratio_holds_within_every_cycle(self, epoch, batch):
        schedule = HeuristicSchedule(warmup_epochs=2)
        ratio = schedule.ratio_for_epoch(epoch)
        if ratio is None:
            assert schedule.phase_for(epoch, batch) == Phase.WARMUP
            return
        k, m = ratio
        phase = schedule.phase_for(epoch, batch)
        expected = Phase.GP if (batch % (k + m)) < k else Phase.BP
        assert phase == expected


class TestAdaptiveSchedule:
    def test_warmup_respected(self):
        schedule = AdaptiveSchedule(warmup_epochs=2)
        assert schedule.phase_for(0, 0) == Phase.WARMUP
        assert schedule.phase_for(1, 5) == Phase.WARMUP

    def test_good_predictor_earns_more_gp(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        schedule.observe_mape(0.5)
        assert schedule.ratio_for_epoch(1) == (4, 1)

    def test_bad_predictor_falls_back_to_one_to_one(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        for _ in range(10):
            schedule.observe_mape(80.0)
        assert schedule.ratio_for_epoch(1) == (1, 1)

    def test_smoothing_blends_observations(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        schedule.observe_mape(100.0)
        for _ in range(30):
            schedule.observe_mape(1.0)
        assert schedule.ratio_for_epoch(1) == (4, 1)

    def test_mismatched_ratios_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSchedule(thresholds=(1.0,), ratios=((4, 1),))

    def test_gp_fraction_before_observation_uses_worst_ratio(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        assert schedule.gp_fraction(0) == pytest.approx(0.5)


def test_paper_ladder_constant_matches_paper():
    assert PAPER_RATIO_LADDER == ((4, (4, 1)), (4, (3, 1)), (4, (2, 1)))
