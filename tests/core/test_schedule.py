"""Tests for the phase schedules (§3.1, §3.5)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core import (
    AdaptiveSchedule,
    HeuristicSchedule,
    PAPER_RATIO_LADDER,
    Phase,
    adagp_engine,
    phase_counts,
    schedule_from_config,
)
from repro.data import synthetic_images
from repro.nn.losses import CrossEntropyLoss, accuracy


class TestHeuristicSchedule:
    def test_warmup_is_all_bp(self):
        schedule = HeuristicSchedule(warmup_epochs=3)
        for epoch in range(3):
            for batch in range(20):
                assert schedule.phase_for(epoch, batch) == Phase.WARMUP

    def test_paper_ladder_progression(self):
        """4:1 for 4 epochs, 3:1 for 4, 2:1 for 4, then 1:1 forever."""
        schedule = HeuristicSchedule(warmup_epochs=10)
        assert schedule.ratio_for_epoch(9) is None
        assert schedule.ratio_for_epoch(10) == (4, 1)
        assert schedule.ratio_for_epoch(13) == (4, 1)
        assert schedule.ratio_for_epoch(14) == (3, 1)
        assert schedule.ratio_for_epoch(18) == (2, 1)
        assert schedule.ratio_for_epoch(22) == (1, 1)
        assert schedule.ratio_for_epoch(89) == (1, 1)

    def test_gp_comes_first_within_cycle(self):
        """§3.5: 'Initially, it proceeds with Phase GP ... for k batches'."""
        schedule = HeuristicSchedule(warmup_epochs=0)
        phases = [schedule.phase_for(0, b) for b in range(5)]
        assert phases == [Phase.GP] * 4 + [Phase.BP]

    def test_gp_fraction(self):
        schedule = HeuristicSchedule(warmup_epochs=1)
        assert schedule.gp_fraction(0) == 0.0
        assert schedule.gp_fraction(1) == pytest.approx(0.8)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            HeuristicSchedule().ratio_for_epoch(-1)

    def test_paper_training_mix_gives_47_percent_gp(self):
        """Over 90 epochs with L=10 the GP share is ~47.6%, which is what
        makes the headline ~1.47x speedup arithmetic work."""
        schedule = HeuristicSchedule(warmup_epochs=10)
        counts = phase_counts(schedule, 90, 100)
        total = sum(counts.values())
        gp_share = counts[Phase.GP] / total
        assert 0.45 < gp_share < 0.50

    @given(
        warmup=st.integers(0, 5),
        epochs=st.integers(1, 30),
        batches=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_partition_all_batches(self, warmup, epochs, batches):
        schedule = HeuristicSchedule(warmup_epochs=warmup)
        counts = phase_counts(schedule, epochs, batches)
        assert sum(counts.values()) == epochs * batches

    @given(epoch=st.integers(0, 40), batch=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_ratio_holds_within_every_cycle(self, epoch, batch):
        schedule = HeuristicSchedule(warmup_epochs=2)
        ratio = schedule.ratio_for_epoch(epoch)
        if ratio is None:
            assert schedule.phase_for(epoch, batch) == Phase.WARMUP
            return
        k, m = ratio
        phase = schedule.phase_for(epoch, batch)
        expected = Phase.GP if (batch % (k + m)) < k else Phase.BP
        assert phase == expected


class TestAdaptiveSchedule:
    def test_warmup_respected(self):
        schedule = AdaptiveSchedule(warmup_epochs=2)
        assert schedule.phase_for(0, 0) == Phase.WARMUP
        assert schedule.phase_for(1, 5) == Phase.WARMUP

    def test_good_predictor_earns_more_gp(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        schedule.observe_mape(0.5)
        assert schedule.ratio_for_epoch(1) == (4, 1)

    def test_bad_predictor_falls_back_to_one_to_one(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        for _ in range(10):
            schedule.observe_mape(80.0)
        assert schedule.ratio_for_epoch(1) == (1, 1)

    def test_smoothing_blends_observations(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        schedule.observe_mape(100.0)
        for _ in range(30):
            schedule.observe_mape(1.0)
        assert schedule.ratio_for_epoch(1) == (4, 1)

    def test_mismatched_ratios_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSchedule(thresholds=(1.0,), ratios=((4, 1),))

    def test_gp_fraction_before_observation_uses_worst_ratio(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        assert schedule.gp_fraction(0) == pytest.approx(0.5)


def test_paper_ladder_constant_matches_paper():
    assert PAPER_RATIO_LADDER == ((4, (4, 1)), (4, (3, 1)), (4, (2, 1)))


class TestConfigRoundTrip:
    def test_heuristic_round_trips_through_json(self):
        schedule = HeuristicSchedule(
            warmup_epochs=3, ladder=((2, (4, 1)), (1, (3, 1))), final_ratio=(2, 1)
        )
        config = json.loads(json.dumps(schedule.to_config()))
        assert schedule_from_config(config) == schedule

    def test_adaptive_round_trips_through_json(self):
        schedule = AdaptiveSchedule(
            warmup_epochs=2, thresholds=(1.5, 4.0), ratios=((8, 1), (4, 1), (1, 1))
        )
        config = json.loads(json.dumps(schedule.to_config()))
        rebuilt = schedule_from_config(config)
        assert rebuilt.warmup_epochs == 2
        assert rebuilt.thresholds == (1.5, 4.0)
        assert rebuilt.ratios == ((8, 1), (4, 1), (1, 1))
        # Tuples restored, not lists: phase logic indexes and compares.
        assert isinstance(rebuilt.ratios[0], tuple)

    def test_config_excludes_observed_state(self):
        schedule = AdaptiveSchedule()
        schedule.observe_mape(3.0)
        rebuilt = schedule_from_config(schedule.to_config())
        assert rebuilt._recent_mape == float("inf")

    def test_kind_dispatch_errors(self):
        with pytest.raises(ValueError, match="kind"):
            schedule_from_config({"warmup_epochs": 2})
        with pytest.raises(ValueError, match="unknown schedule kind"):
            schedule_from_config({"kind": "bayesian"})
        with pytest.raises(ValueError):
            HeuristicSchedule.from_config({"kind": "adaptive"})


class TestStateDict:
    def test_adaptive_state_round_trip_is_exact(self):
        schedule = AdaptiveSchedule()
        for mape in (12.0, 3.7, 2.2):
            schedule.observe_mape(mape)
        rebuilt = AdaptiveSchedule()
        rebuilt.load_state_dict(schedule.state_dict())
        assert rebuilt._recent_mape == schedule._recent_mape  # bitwise

    def test_heuristic_state_is_empty(self):
        schedule = HeuristicSchedule()
        assert schedule.state_dict() == {}
        schedule.load_state_dict({})
        with pytest.raises(ValueError):
            schedule.load_state_dict({"_recent_mape": 1.0})


class TestScheduleCheckpointResume:
    """Satellite regression: the smoothed ``_recent_mape`` must survive
    an engine checkpoint/resume bit-identically, so a resumed adaptive
    run earns exactly the ratios the uninterrupted run would."""

    def _engine(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 3, rng=rng),
        )
        return adagp_engine(
            model,
            CrossEntropyLoss(),
            lr=0.05,
            metric_fn=accuracy,
            schedule=AdaptiveSchedule(warmup_epochs=1, thresholds=(1e9, 2e9, 3e9)),
        )

    def _fit(self, engine, split, epochs):
        return engine.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(1)),
            lambda: split.val.batches(24, shuffle=False),
            epochs=epochs,
        )

    def test_duck_typed_schedule_state_still_checkpointed(self, tmp_path):
        """A custom schedule tracking ``_recent_mape`` without the
        state_dict protocol keeps its pre-protocol checkpoint coverage."""

        class LegacySchedule:
            warmup_epochs = 0
            _recent_mape = float("inf")

            def phase_for(self, epoch, batch_index):
                return Phase.BP

            def ratio_for_epoch(self, epoch):
                return (1, 1)

        split = synthetic_images(3, 48, 24, image_size=8, seed=0)
        engine = self._engine()
        engine.schedule = LegacySchedule()
        self._fit(engine, split, 1)
        engine.schedule._recent_mape = 7.25
        path = str(tmp_path / "legacy.pkl")
        engine.save_checkpoint(path)

        fresh = self._engine()
        fresh.schedule = LegacySchedule()
        fresh.load_checkpoint(path)
        assert fresh.schedule._recent_mape == 7.25

    def test_recent_mape_survives_checkpoint_resume(self, tmp_path):
        split = synthetic_images(3, 48, 24, image_size=8, seed=0)
        path = str(tmp_path / "ckpt.pkl")

        straight = self._engine()
        self._fit(straight, split, 4)

        interrupted = self._engine()
        self._fit(interrupted, split, 2)
        observed = interrupted.schedule._recent_mape
        assert np.isfinite(observed)  # warm-up trained the predictor
        interrupted.save_checkpoint(path)

        resumed = self._engine()
        resumed.load_checkpoint(path)
        assert resumed.schedule._recent_mape == observed  # bitwise
        self._fit(resumed, split, 2)

        assert resumed.schedule._recent_mape == straight.schedule._recent_mape
        assert resumed.history.train_loss == straight.history.train_loss
        assert resumed.history.val_metric == straight.history.val_metric
        assert resumed.history.gp_batches == straight.history.gp_batches
        assert resumed.history.gp_fraction == straight.history.gp_fraction

