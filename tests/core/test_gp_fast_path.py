"""The forward-only Phase-GP fast path through the engine layer.

Covers: GP batches run under no-grad (caches verifiably absent, backward
raises), the loss-value-only entry points match the ``(loss, grad)``
pair form, batched-GP (one ``predict_many`` + grouped apply) equals the
deferred per-layer predict/apply sequence, pipeline GP streams are
no-grad, and evaluation is unchanged by the no-grad rewrite.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    GradientPredictor,
    HeuristicSchedule,
    Phase,
    adagp_engine,
    pipeline_adagp_engine,
)
from repro.core.engine.strategies import GradPredictStrategy
from repro.data import synthetic_images
from repro.nn.losses import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    MSELoss,
    SmoothL1Loss,
    accuracy,
    loss_value,
)
from repro.nn.module import NO_GRAD


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _adagp(seed=0, **kwargs):
    nn.init.reset_layer_rng(0)
    model = _model(seed)
    predictor = GradientPredictor.for_model(
        model, rng=np.random.default_rng(42)
    )
    return adagp_engine(
        model,
        CrossEntropyLoss(),
        predictor=predictor,
        lr=0.05,
        metric_fn=accuracy,
        schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
        **kwargs,
    )


def _batch(seed=0, batch=8):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, batch)
    return x, y


class TestLossValue:
    def test_value_matches_pair_form(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((6, 5)).astype(np.float32)
        targets = rng.integers(0, 5, 6)
        ce = CrossEntropyLoss()
        assert ce.value(logits, targets) == ce(logits, targets)[0]
        seq_logits = rng.standard_normal((2, 7, 5)).astype(np.float32)
        seq_targets = rng.integers(0, 5, (2, 7))
        seq_targets[0, :3] = -1
        ce_pad = CrossEntropyLoss(ignore_index=-1)
        assert (
            ce_pad.value(seq_logits, seq_targets)
            == ce_pad(seq_logits, seq_targets)[0]
        )
        pred = rng.standard_normal((4, 3)).astype(np.float32)
        target = rng.standard_normal((4, 3)).astype(np.float32)
        assert MSELoss().value(pred, target) == MSELoss()(pred, target)[0]
        huber = SmoothL1Loss(beta=0.7)
        assert huber.value(pred, target) == huber(pred, target)[0]
        bce = BCEWithLogitsLoss()
        binary = (target > 0).astype(np.float32)
        assert bce.value(pred, binary) == bce(pred, binary)[0]

    def test_value_all_ignored_positions(self):
        ce = CrossEntropyLoss(ignore_index=0)
        logits = np.zeros((2, 3), dtype=np.float32)
        targets = np.zeros(2, dtype=np.int64)
        assert ce.value(logits, targets) == 0.0

    def test_loss_value_dispatch_and_fallback(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((4, 3)).astype(np.float32)
        targets = rng.integers(0, 3, 4)
        ce = CrossEntropyLoss()
        assert loss_value(ce, logits, targets) == ce(logits, targets)[0]

        def pair_only(outputs, target):
            return 1.25, np.zeros_like(outputs)

        assert loss_value(pair_only, logits, targets) == 1.25

    def test_value_shape_validation(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((2, 3)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            CrossEntropyLoss().value(np.zeros((2, 3)), np.zeros(3))


class TestNoGradGPBatch:
    @pytest.mark.parametrize("backend", ["numpy", "fused"])
    def test_gp_batch_leaves_no_backward_caches(self, backend):
        engine = _adagp(backend=backend)
        x, y = _batch()
        result = engine.train_batch(x, y, Phase.GP)
        assert result.phase == Phase.GP
        assert np.isfinite(result.loss)
        # Every conv's ctx is the no-grad sentinel or cleared, never a
        # retained context (the engine clear_caches turns NO_GRAD into
        # None; both prove nothing was pinned).
        for layer in engine.layers:
            cache = layer.__dict__.get("_cache_ctx", layer.__dict__.get("_cache_x"))
            assert cache is None or cache is NO_GRAD

    def test_backward_raises_after_gp_batch(self):
        engine = _adagp()
        x, y = _batch()
        engine.train_batch(x, y, Phase.GP)
        with pytest.raises(RuntimeError):
            engine.model.backward(np.ones((8, 3), dtype=np.float32))

    def test_gp_batch_applies_updates(self):
        engine = _adagp()
        x, y = _batch()
        engine.train_batch(x, y, Phase.WARMUP)  # predictor sees one batch
        before = [layer.weight.data.copy() for layer in engine.layers]
        engine.train_batch(x, y, Phase.GP)
        changed = [
            not np.array_equal(prev, layer.weight.data)
            for prev, layer in zip(before, engine.layers)
        ]
        assert all(changed)

    def test_gp_loss_matches_value_only_form(self):
        """The monitoring loss is the plain scalar of the outputs."""
        engine = _adagp()
        x, y = _batch()
        result = engine.train_batch(x, y, Phase.GP)
        # Recompute forward with the *updated* weights: hooks applied
        # updates mid-forward, so re-running now gives a different loss;
        # just sanity-check the recorded loss is a genuine CE value.
        assert 0.0 < result.loss < 20.0


class TestBatchedGP:
    def test_batched_equals_deferred_per_layer_sequence(self):
        """batched_predict == per-layer predict/apply deferred to the end.

        The stacked ``predict_many`` + grouped ``apply_gradients`` must
        reproduce (to numerical tolerance) predicting each layer from
        the same collected activations and applying per layer after the
        forward — the only semantic difference from hooked mode is the
        deferral, which is exactly what this pins down.
        """
        x, y = _batch(seed=3)
        engine_a = _adagp()
        engine_b = _adagp()
        for a_layer, b_layer in zip(engine_a.layers, engine_b.layers):
            assert np.array_equal(a_layer.weight.data, b_layer.weight.data)

        # A: engine path with batched_predict.
        strategy = GradPredictStrategy(batched_predict=True)
        strategy.bind(engine_a)
        strategy.train_batch(x, y, Phase.GP)

        # B: manual deferred reference.
        activations = {}
        for layer in engine_b.layers:
            layer.forward_hook = (
                lambda module, output: activations.__setitem__(id(module), output)
            )
        with nn.no_grad():
            engine_b.model(x)
        engine_b.clear_hooks()
        for layer in engine_b.layers:
            weight_grad, bias_grad = engine_b.predictor.predict(
                layer, activations[id(layer)]
            )
            engine_b.gp_optimizer.apply_gradient(layer.weight, weight_grad)
            if layer.bias is not None and bias_grad is not None:
                engine_b.gp_optimizer.apply_gradient(layer.bias, bias_grad)

        for a_layer, b_layer in zip(engine_a.layers, engine_b.layers):
            np.testing.assert_allclose(
                a_layer.weight.data, b_layer.weight.data, atol=1e-5
            )
            if a_layer.bias is not None:
                np.testing.assert_allclose(
                    a_layer.bias.data, b_layer.bias.data, atol=1e-5
                )

    def test_batched_matches_hooked_for_feedforward_chain(self):
        """Hooked and batched GP coincide on a single-pass feed-forward.

        A layer's in-flight update lands *after* its forward produced
        the activation every downstream layer consumes, so within one
        batch of a feed-forward chain nothing ever re-reads the updated
        weights — deferring all updates to end-of-forward (batched mode)
        must therefore land on the same weights.  (The modes can diverge
        only across batches or with weight reuse inside one forward.)
        """
        x, y = _batch(seed=3)
        engine_hooked = _adagp()
        engine_batched = _adagp(batched_gp=True)
        engine_hooked.train_batch(x, y, Phase.GP)
        engine_batched.train_batch(x, y, Phase.GP)
        for hooked_layer, batched_layer in zip(
            engine_hooked.layers, engine_batched.layers
        ):
            np.testing.assert_allclose(
                hooked_layer.weight.data,
                batched_layer.weight.data,
                atol=1e-6,
            )

    def test_factory_wires_batched_gp(self):
        engine = _adagp(batched_gp=True)
        strategy = engine.strategies[Phase.GP]
        assert isinstance(strategy, GradPredictStrategy)
        assert strategy.batched_predict
        x, y = _batch()
        result = engine.train_batch(x, y, Phase.GP)
        assert result.phase == Phase.GP
        assert np.isfinite(result.loss)


class TestEvaluateNoGrad:
    def test_evaluate_matches_pre_rewrite_loss(self):
        """Value-only, no-grad evaluation returns the same numbers as
        computing (loss, grad) pairs with retained caches would."""
        split = synthetic_images(3, 32, 16, image_size=8, seed=0)
        engine = _adagp()
        val_loss, val_metric = engine.evaluate(
            split.val.batches(16, shuffle=False)
        )
        # Manual reference on the same weights.
        engine.model.eval()
        losses, metrics = [], []
        for inputs, targets in split.val.batches(16, shuffle=False):
            outputs = engine.model(inputs)
            loss, _ = engine.loss_fn(outputs, targets)
            losses.append(loss)
            metrics.append(accuracy(outputs, targets))
        engine.model.train()
        assert val_loss == pytest.approx(float(np.mean(losses)), abs=1e-6)
        assert val_metric == pytest.approx(float(np.mean(metrics)), abs=1e-6)

    def test_evaluate_fused_leaves_pool_clean(self):
        from repro.nn.backend import FusedBackend

        backend = FusedBackend()
        split = synthetic_images(3, 32, 16, image_size=8, seed=0)
        engine = _adagp(backend=backend)
        engine.evaluate(split.val.batches(16, shuffle=False))
        assert backend.pool.outstanding == 0


class TestPipelineGPNoGrad:
    def test_pipeline_gp_batch_is_no_grad(self):
        nn.init.reset_layer_rng(0)
        engine = pipeline_adagp_engine(
            _model(),
            CrossEntropyLoss(),
            num_stages=2,
            micro_batches=2,
            lr=0.05,
            schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (1, 1)),)),
        )
        x, y = _batch(batch=8)
        engine.train_batch(x, y, Phase.WARMUP)
        result = engine.train_batch(x, y, Phase.GP)
        assert result.phase == Phase.GP
        assert np.isfinite(result.loss)
        # The GP stream ran forward-only: no stage retained a context.
        for layer in engine.layers:
            cache = layer.__dict__.get("_cache_ctx", layer.__dict__.get("_cache_x"))
            assert cache is None or cache is NO_GRAD
        # And a BP batch afterwards still works (grad mode restored).
        bp = engine.train_batch(x, y, Phase.BP)
        assert np.isfinite(bp.loss)
