"""Tests for tensor reorganization (§3.6) and the gradient predictor."""

import numpy as np
import pytest

from repro import nn
from repro.core import GradientPredictor
from repro.core.predictor import PredictorNetwork, mean_absolute_percentage_error
from repro.core import reorganize

RNG = np.random.default_rng(29)


class TestReorganize:
    def test_conv_activation_reorganization(self):
        """(batch, out_ch, H, W) -> (out_ch, 1, H, W) via batch mean."""
        conv = nn.Conv2d(3, 8, 3, rng=np.random.default_rng(0))
        output = RNG.standard_normal((4, 8, 5, 5)).astype(np.float32)
        reorganized = reorganize.reorganize_activations(conv, output)
        assert reorganized.shape == (8, 1, 5, 5)
        np.testing.assert_allclose(
            reorganized[:, 0], output.mean(axis=0), rtol=1e-6
        )

    def test_linear_activation_reorganization(self):
        fc = nn.Linear(4, 6, rng=np.random.default_rng(0))
        output = RNG.standard_normal((8, 6)).astype(np.float32)
        reorganized = reorganize.reorganize_activations(fc, output)
        assert reorganized.shape == (6, 1, 1, 1)

    def test_sequence_linear_uses_seq_as_width(self):
        fc = nn.Linear(4, 6, rng=np.random.default_rng(0))
        output = RNG.standard_normal((8, 10, 6)).astype(np.float32)
        reorganized = reorganize.reorganize_activations(fc, output)
        assert reorganized.shape == (6, 1, 1, 10)

    def test_unsupported_layer_rejected(self):
        with pytest.raises(TypeError):
            reorganize.reorganize_activations(nn.ReLU(), np.zeros((1, 2)))

    def test_flatten_unflatten_round_trip_conv(self):
        conv = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(1))
        w_grad = RNG.standard_normal(conv.weight.shape).astype(np.float32)
        b_grad = RNG.standard_normal(4).astype(np.float32)
        rows = reorganize.flatten_gradients(conv, w_grad, b_grad)
        assert rows.shape == (4, 3 * 9 + 1)
        w_back, b_back = reorganize.unflatten_gradients(conv, rows)
        np.testing.assert_array_equal(w_back, w_grad)
        np.testing.assert_array_equal(b_back, b_grad)

    def test_flatten_unflatten_round_trip_linear_no_bias(self):
        fc = nn.Linear(5, 3, bias=False, rng=np.random.default_rng(2))
        w_grad = RNG.standard_normal(fc.weight.shape).astype(np.float32)
        rows = reorganize.flatten_gradients(fc, w_grad, None)
        assert rows.shape == (3, 5)
        w_back, b_back = reorganize.unflatten_gradients(fc, rows)
        np.testing.assert_array_equal(w_back, w_grad)
        assert b_back is None

    def test_missing_bias_grad_rejected(self):
        conv = nn.Conv2d(2, 2, 1)
        with pytest.raises(ValueError):
            reorganize.flatten_gradients(
                conv, np.zeros(conv.weight.shape, dtype=np.float32), None
            )

    def test_bad_row_shape_rejected(self):
        conv = nn.Conv2d(2, 2, 1)
        with pytest.raises(ValueError):
            reorganize.unflatten_gradients(conv, np.zeros((2, 7), dtype=np.float32))


class TestPredictorNetwork:
    def test_output_shape_independent_of_input_spatial_size(self):
        net = PredictorNetwork(max_row=20, rng=np.random.default_rng(0))
        for h, w in ((16, 16), (3, 3), (1, 1), (1, 9)):
            out = net(RNG.standard_normal((5, 1, h, w)).astype(np.float32))
            assert out.shape == (5, 20)

    def test_backward_round_trip(self):
        net = PredictorNetwork(max_row=10, rng=np.random.default_rng(1))
        x = RNG.standard_normal((3, 1, 6, 6)).astype(np.float32)
        out = net.forward(x)
        grad_in = net.backward(np.ones_like(out))
        assert grad_in.shape == x.shape


class TestGradientPredictor:
    def _conv_setup(self):
        conv = nn.Conv2d(2, 4, 3, rng=np.random.default_rng(0))
        x = RNG.standard_normal((4, 2, 6, 6)).astype(np.float32)
        out = conv.forward(x)
        conv.backward(np.ones_like(out))
        return conv, out

    def test_for_model_sizes_to_largest_layer(self):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, rng=np.random.default_rng(0)),
            nn.Conv2d(4, 8, 3, rng=np.random.default_rng(0)),
        )
        predictor = GradientPredictor.for_model(model)
        assert predictor.network.max_row == 4 * 9 + 1

    def test_for_model_requires_predictable_layers(self):
        with pytest.raises(ValueError):
            GradientPredictor.for_model(nn.Sequential(nn.ReLU()))

    def test_predict_shapes_match_parameters(self):
        conv, out = self._conv_setup()
        predictor = GradientPredictor(max_row=conv.gradient_size())
        w_grad, b_grad = predictor.predict(conv, out)
        assert w_grad.shape == conv.weight.shape
        assert b_grad.shape == conv.bias.shape

    def test_oversized_layer_rejected(self):
        conv, out = self._conv_setup()
        predictor = GradientPredictor(max_row=conv.gradient_size() - 1)
        with pytest.raises(ValueError):
            predictor.predict(conv, out)

    def test_train_step_reduces_mse_on_fixed_target(self):
        """Repeated training on a constant (activation, gradient) pair
        must drive the prediction toward that gradient."""
        conv, out = self._conv_setup()
        predictor = GradientPredictor(max_row=conv.gradient_size(), lr=5e-3)
        w_grad = conv.weight.grad
        b_grad = conv.bias.grad
        first_mse, _ = predictor.train_step(conv, out, w_grad, b_grad)
        for _ in range(100):
            last_mse, _ = predictor.train_step(conv, out, w_grad, b_grad)
        assert last_mse < first_mse * 0.5

    def test_scale_tracking_updates(self):
        conv, out = self._conv_setup()
        predictor = GradientPredictor(max_row=conv.gradient_size())
        assert predictor._scale_for(conv) == 1.0
        predictor.train_step(conv, out, conv.weight.grad, conv.bias.grad)
        assert predictor._scale_for(conv) != 1.0

    def test_without_normalization_predictions_are_raw(self):
        conv, out = self._conv_setup()
        predictor = GradientPredictor(
            max_row=conv.gradient_size(), normalize_targets=False
        )
        predictor.train_step(conv, out, conv.weight.grad, conv.bias.grad)
        assert predictor._scales == {}

    def test_invalid_max_row(self):
        with pytest.raises(ValueError):
            GradientPredictor(max_row=0)


class TestMape:
    def test_perfect_prediction_is_zero(self):
        a = RNG.standard_normal(20)
        assert mean_absolute_percentage_error(a, a.copy()) == 0.0

    def test_zero_prediction_is_hundred_percent(self):
        a = RNG.standard_normal(1000)
        mape = mean_absolute_percentage_error(a, np.zeros_like(a))
        np.testing.assert_allclose(mape, 100.0, rtol=1e-5)

    def test_scales_with_error(self):
        a = np.ones(10)
        assert mean_absolute_percentage_error(a, a * 0.9) == pytest.approx(10.0)
