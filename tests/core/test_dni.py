"""Tests for the DNI baseline and the paper's §2 cost argument."""

import numpy as np

from repro import nn
from repro.accel import AcceleratorModel
from repro.core import HeuristicSchedule
from repro.core.dni import DNITrainer, dni_batch_cost_ratio
from repro.models import spec_for
from repro.nn.losses import CrossEntropyLoss, accuracy

RNG = np.random.default_rng(41)


def _tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 3, rng=rng),
    )


class TestDNITrainer:
    def test_batch_updates_model_and_predictor(self):
        trainer = DNITrainer(_tiny_model(), CrossEntropyLoss(), lr=0.05)
        x = RNG.standard_normal((8, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 8)
        weights_before = {
            name: p.data.copy() for name, p in trainer.model.named_parameters()
        }
        predictor_before = [
            p.data.copy() for p in trainer.predictor.network.parameters()
        ]
        trainer.train_batch(x, y)
        assert any(
            not np.array_equal(weights_before[name], p.data)
            for name, p in trainer.model.named_parameters()
        )
        assert any(
            not np.array_equal(b, a.data)
            for b, a in zip(predictor_before, trainer.predictor.network.parameters())
        )

    def test_hooks_removed_after_batch(self):
        trainer = DNITrainer(_tiny_model(), CrossEntropyLoss(), lr=0.05)
        x = RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)
        trainer.train_batch(x, RNG.integers(0, 3, 4))
        assert all(layer.forward_hook is None for layer in trainer.layers)

    def test_still_learns(self):
        from repro.data import synthetic_images

        split = synthetic_images(3, 64, 32, image_size=8, seed=5)
        trainer = DNITrainer(
            _tiny_model(seed=2), CrossEntropyLoss(), lr=0.05, metric_fn=accuracy
        )
        history = trainer.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(1)),
            lambda: split.val.batches(32, shuffle=False),
            epochs=8,
        )
        assert history.best_metric > 50.0


class TestDNICostArgument:
    def test_dni_is_slower_than_bp_per_batch(self):
        """Paper §2: DNI keeps (and inflates) the backprop step."""
        spec = spec_for("VGG13", "Cifar10")
        accelerator = AcceleratorModel()
        assert dni_batch_cost_ratio(spec, accelerator) > 1.0

    def test_adagp_training_beats_dni_training(self):
        """End-to-end: ADA-GP's phase mix is faster than DNI's constant
        BP+predictor cost — the paper's core §2 differentiation."""
        from repro.accel import AdaGPDesign

        spec = spec_for("VGG13", "Cifar10")
        accelerator = AcceleratorModel()
        epochs, batches = 30, 20
        dni_total = accelerator.phase_bp_batch(
            spec, 32, AdaGPDesign.EFFICIENT
        ).cycles * (epochs * batches)
        ada_total = accelerator.training_cost(
            spec, AdaGPDesign.EFFICIENT, HeuristicSchedule(warmup_epochs=5),
            epochs, batches,
        ).cycles
        base_total = accelerator.baseline_training_cost(
            spec, epochs, batches
        ).cycles
        assert dni_total > base_total  # DNI slower than plain BP
        assert ada_total < base_total  # ADA-GP faster than plain BP
