"""Tests for the unified TrainingEngine: strategies, callbacks,
checkpoint/resume, adaptive scheduling, and the History count fix."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    AdaGPTrainer,
    AdaptiveSchedule,
    BackpropStrategy,
    BPTrainer,
    Checkpointing,
    DNITrainer,
    EarlyStopping,
    HeuristicSchedule,
    LambdaCallback,
    Phase,
    ThroughputTimer,
    TrainingEngine,
    adagp_engine,
    bp_engine,
    dni_engine,
)
from repro.data import synthetic_images
from repro.nn.losses import CrossEntropyLoss, accuracy

RNG = np.random.default_rng(53)


def _tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _tiny_split(seed=0):
    return synthetic_images(3, 48, 24, image_size=8, seed=seed)


def _train_fn(split, batch=16, seed=1):
    return lambda: split.train.batches(batch, rng=np.random.default_rng(seed))


def _val_fn(split):
    return lambda: split.val.batches(24, shuffle=False)


def _adagp(seed=0, schedule=None, **kwargs):
    return adagp_engine(
        _tiny_model(seed),
        CrossEntropyLoss(),
        lr=0.05,
        metric_fn=accuracy,
        schedule=schedule
        or HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
        **kwargs,
    )


class TestUnification:
    """All three training modes run through one TrainingEngine."""

    def test_every_trainer_shim_wraps_an_engine(self):
        model_args = (CrossEntropyLoss(),)
        for trainer in (
            BPTrainer(_tiny_model(), *model_args),
            AdaGPTrainer(_tiny_model(), *model_args),
            DNITrainer(_tiny_model(), *model_args),
        ):
            assert isinstance(trainer.engine, TrainingEngine)

    def test_factories_share_the_fit_loop(self):
        engines = [
            bp_engine(_tiny_model(), CrossEntropyLoss()),
            adagp_engine(_tiny_model(), CrossEntropyLoss()),
            dni_engine(_tiny_model(), CrossEntropyLoss()),
        ]
        assert all(type(e).fit is TrainingEngine.fit for e in engines)

    def test_bp_history_records_true_batch_counts(self):
        """The old BPTrainer appended a -1 sentinel; the engine records
        the real number of true-gradient batches per epoch."""
        split = _tiny_split()
        engine = bp_engine(
            _tiny_model(), CrossEntropyLoss(), lr=0.05, metric_fn=accuracy
        )
        history = engine.fit(_train_fn(split), _val_fn(split), epochs=2)
        assert history.bp_batches == [3, 3]  # 48 samples / batch 16
        assert history.gp_batches == [0, 0]

    def test_bp_trainer_shim_inherits_true_counts(self):
        split = _tiny_split()
        trainer = BPTrainer(_tiny_model(), CrossEntropyLoss(), lr=0.05)
        history = trainer.fit(_train_fn(split), _val_fn(split), epochs=2)
        assert all(count >= 0 for count in history.bp_batches)
        assert history.bp_batches == [3, 3]

    def test_dni_records_predictor_errors(self):
        split = _tiny_split()
        engine = dni_engine(_tiny_model(), CrossEntropyLoss(), lr=0.05)
        history = engine.fit(_train_fn(split), _val_fn(split), epochs=1)
        assert len(history.predictor_mape) == 1
        assert len(history.predictor_mape[0]) == 3  # three predictable layers

    def test_missing_phase_strategy_is_an_error(self):
        model = _tiny_model()
        engine = TrainingEngine(
            model,
            CrossEntropyLoss(),
            nn.SGD(model.parameters(), lr=0.01),
            strategies={Phase.BP: BackpropStrategy()},
            schedule=HeuristicSchedule(warmup_epochs=0),
        )
        x = RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 4)
        with pytest.raises(KeyError):
            engine.train_epoch([(x, y)], epoch=0)  # schedule emits GP first

    def test_empty_epoch_rejected(self):
        engine = bp_engine(_tiny_model(), CrossEntropyLoss())
        with pytest.raises(ValueError):
            engine.train_epoch([])


class TestCallbacks:
    def test_event_order_and_payloads(self):
        split = _tiny_split()
        events = []
        callback = LambdaCallback(
            on_fit_begin=lambda e, epochs: events.append(("fit_begin", epochs)),
            on_epoch_begin=lambda e, epoch: events.append(("epoch_begin", epoch)),
            on_batch_begin=lambda e, epoch, i, phase: events.append(
                ("batch_begin", epoch, i, phase)
            ),
            on_batch_end=lambda e, epoch, i, result: events.append(
                ("batch_end", epoch, i, result.phase)
            ),
            on_epoch_end=lambda e, epoch, logs: events.append(
                ("epoch_end", epoch, sorted(logs))
            ),
            on_fit_end=lambda e: events.append(("fit_end",)),
        )
        engine = bp_engine(
            _tiny_model(), CrossEntropyLoss(), lr=0.05, callbacks=(callback,)
        )
        engine.fit(_train_fn(split), _val_fn(split), epochs=1)
        kinds = [e[0] for e in events]
        assert kinds == [
            "fit_begin",
            "epoch_begin",
            "batch_begin", "batch_end",
            "batch_begin", "batch_end",
            "batch_begin", "batch_end",
            "epoch_end",
            "fit_end",
        ]
        assert events[0] == ("fit_begin", 1)
        assert events[2] == ("batch_begin", 0, 0, Phase.BP)
        logs_keys = events[-2][2]
        assert logs_keys == ["counts", "epoch", "train_loss", "val_loss", "val_metric"]

    def test_early_stopping_halts_fit(self):
        split = _tiny_split()
        stopper = EarlyStopping(monitor="val_loss", patience=0, min_delta=1e9)
        engine = bp_engine(
            _tiny_model(), CrossEntropyLoss(), lr=0.05, callbacks=(stopper,)
        )
        history = engine.fit(_train_fn(split), _val_fn(split), epochs=10)
        # min_delta is huge, so epoch 2 can never improve on epoch 1.
        assert history.num_epochs == 2
        assert stopper.stopped_epoch == 1

    def test_early_stopping_unknown_monitor_rejected(self):
        split = _tiny_split()
        engine = bp_engine(
            _tiny_model(),
            CrossEntropyLoss(),
            callbacks=(EarlyStopping(monitor="nope"),),
        )
        with pytest.raises(KeyError):
            engine.fit(_train_fn(split), _val_fn(split), epochs=1)

    def test_throughput_timer_counts_match_history(self):
        split = _tiny_split()
        timer = ThroughputTimer()
        engine = _adagp(
            schedule=HeuristicSchedule(warmup_epochs=0, ladder=((10, (2, 1)),)),
            callbacks=(timer,),
        )
        history = engine.fit(_train_fn(split), _val_fn(split), epochs=2)
        assert timer.batches[Phase.GP] == sum(history.gp_batches)
        assert timer.batches[Phase.BP] == sum(history.bp_batches)
        assert timer.batches_per_second(Phase.GP) > 0
        assert "batches/s" in timer.summary()

    def test_checkpointing_callback_saves_per_epoch(self, tmp_path):
        split = _tiny_split()
        target = str(tmp_path / "ckpt-{epoch}.pkl")
        engine = bp_engine(
            _tiny_model(),
            CrossEntropyLoss(),
            lr=0.05,
            callbacks=(Checkpointing(target, every=1),),
        )
        engine.fit(_train_fn(split), _val_fn(split), epochs=2)
        assert (tmp_path / "ckpt-0.pkl").exists()
        assert (tmp_path / "ckpt-1.pkl").exists()


class TestCheckpointResume:
    """Checkpoint -> resume reproduces the uninterrupted History exactly."""

    def _histories_equal(self, a, b):
        assert a.train_loss == b.train_loss
        assert a.val_loss == b.val_loss
        assert a.val_metric == b.val_metric
        assert a.bp_batches == b.bp_batches
        assert a.gp_batches == b.gp_batches
        assert a.predictor_mse == b.predictor_mse
        assert a.predictor_mape == b.predictor_mape

    @pytest.mark.parametrize("builder", ["bp", "adagp", "adaptive"])
    def test_round_trip_reproduces_history(self, builder, tmp_path):
        split = _tiny_split()

        def build():
            if builder == "bp":
                return bp_engine(
                    _tiny_model(), CrossEntropyLoss(), lr=0.05, metric_fn=accuracy
                )
            if builder == "adagp":
                return _adagp()
            return _adagp(schedule=AdaptiveSchedule(warmup_epochs=1))

        train_fn, val_fn = _train_fn(split), _val_fn(split)

        uninterrupted = build().fit(train_fn, val_fn, epochs=4)

        path = str(tmp_path / "ckpt.pkl")
        first_half = build()
        first_half.fit(train_fn, val_fn, epochs=2)
        first_half.save_checkpoint(path)

        resumed = build()
        resumed.load_checkpoint(path)
        assert resumed.current_epoch == 2
        history = resumed.fit(train_fn, val_fn, epochs=2)

        self._histories_equal(history, uninterrupted)

    def test_state_dict_round_trip_in_memory(self):
        split = _tiny_split()
        engine = _adagp()
        engine.fit(_train_fn(split), _val_fn(split), epochs=2)
        state = engine.state_dict()
        fresh = _adagp()
        fresh.load_state_dict(state)
        assert fresh.current_epoch == engine.current_epoch
        for key, value in engine.model.state_dict().items():
            np.testing.assert_array_equal(fresh.model.state_dict()[key], value)
        # Predictor scales were re-keyed onto the new engine's layers.
        assert sorted(
            engine.predictor._scales[id(l)] for l in engine.layers
        ) == sorted(fresh.predictor._scales[id(l)] for l in fresh.layers)

    def test_mismatched_checkpoint_rejected(self):
        engine = _adagp()
        state = engine.state_dict()
        bp = bp_engine(_tiny_model(), CrossEntropyLoss())
        with pytest.raises(ValueError):
            bp.load_state_dict(state)

    def test_early_stopping_state_survives_resume(self):
        """A resumed run stops at the same epoch as the uninterrupted
        one: the patience counter is checkpointed with the engine."""
        split = _tiny_split()

        def build():
            stopper = EarlyStopping(monitor="val_loss", patience=1, min_delta=1e9)
            engine = bp_engine(
                _tiny_model(),
                CrossEntropyLoss(),
                lr=0.05,
                metric_fn=accuracy,
                callbacks=(stopper,),
            )
            return engine, stopper

        train_fn, val_fn = _train_fn(split), _val_fn(split)

        full_engine, _ = build()
        uninterrupted = full_engine.fit(train_fn, val_fn, epochs=10)
        assert uninterrupted.num_epochs == 3  # best @0, bad @1, bad @2 -> stop

        part_engine, part_stopper = build()
        part_engine.fit(train_fn, val_fn, epochs=2)
        assert part_stopper.num_bad_epochs == 1
        state = part_engine.state_dict()

        resumed_engine, resumed_stopper = build()
        resumed_engine.load_state_dict(state)
        assert resumed_stopper.num_bad_epochs == 1
        resumed = resumed_engine.fit(train_fn, val_fn, epochs=8)
        assert resumed.num_epochs == 3
        self._histories_equal(resumed, uninterrupted)

    def test_callback_count_mismatch_rejected(self):
        engine = bp_engine(
            _tiny_model(), CrossEntropyLoss(), callbacks=(ThroughputTimer(),)
        )
        state = engine.state_dict()
        bare = bp_engine(_tiny_model(), CrossEntropyLoss())
        with pytest.raises(ValueError):
            bare.load_state_dict(state)


class TestAdaptiveScheduleUnderEngine:
    def test_mape_observed_through_bp_batches(self):
        schedule = AdaptiveSchedule(warmup_epochs=0)
        engine = _adagp(schedule=schedule)
        x = RNG.standard_normal((8, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 8)
        engine.train_batch(x, y, Phase.BP)
        assert schedule._recent_mape != float("inf")

    def test_ratio_transitions_drive_phase_mix(self):
        """Better observed predictor quality earns more GP batches."""
        split = _tiny_split()
        schedule = AdaptiveSchedule(warmup_epochs=0)
        engine = _adagp(schedule=schedule)
        train = list(split.train.batches(16, rng=np.random.default_rng(1)))

        schedule._recent_mape = 100.0  # terrible quality -> 1:1
        worst = engine.train_epoch(train, epoch=0)
        assert schedule.ratio_for_epoch(0) == (1, 1)

        schedule._recent_mape = 1.0  # excellent quality -> 4:1
        # A 3-batch epoch at 4:1 runs GP on every batch; quality is only
        # re-observed on BP batches, so the pinned value stays in force.
        best = engine.train_epoch(train, epoch=1)
        assert schedule.ratio_for_epoch(1) == (4, 1)
        assert best.counts[Phase.GP] > worst.counts[Phase.GP]

    def test_warmup_epochs_still_respected(self):
        split = _tiny_split()
        engine = _adagp(schedule=AdaptiveSchedule(warmup_epochs=2))
        history = engine.fit(_train_fn(split), _val_fn(split), epochs=2)
        assert history.gp_batches == [0, 0]


class TestHistoryGPShare:
    """History owns the GP-share arithmetic callers used to hand-roll."""

    def test_gp_share_and_fraction_recorded(self):
        split = _tiny_split()
        engine = _adagp()  # warm-up 1 epoch, then 2:1
        history = engine.fit(_train_fn(split), _val_fn(split), epochs=2)
        assert history.gp_fraction == [0.0, 2 / 3]  # 3 batches at 2:1
        expected = sum(history.gp_batches) / (
            sum(history.gp_batches) + sum(history.bp_batches)
        )
        assert history.gp_share == expected > 0.0

    def test_plain_bp_share_is_zero(self):
        split = _tiny_split()
        engine = bp_engine(
            _tiny_model(), CrossEntropyLoss(), lr=0.05, metric_fn=accuracy
        )
        history = engine.fit(_train_fn(split), _val_fn(split), epochs=1)
        assert history.gp_share == 0.0
        assert history.gp_fraction == [0.0]

    def test_empty_history_raises(self):
        from repro.core import History

        with pytest.raises(ValueError):
            History().gp_share

    def test_old_pickles_backfill_missing_fields(self):
        """A History pickled before gp_fraction existed must restore
        with the field defaulted, not AttributeError on first append."""
        from repro.core import History

        history = History(train_loss=[0.5], bp_batches=[3], gp_batches=[1])
        state = history.__dict__.copy()
        del state["gp_fraction"]  # simulate the pre-field pickle payload
        restored = History()
        restored.__setstate__(state)
        assert restored.gp_fraction == []
        assert restored.gp_share == 0.25
