"""Backend selection through the TrainingEngine and pipeline executor.

Proves the three selection levels compose: engine-level ``backend=``,
per-``PhaseStrategy`` overrides (GP batches on a different backend than
BP batches), inheritance by pipeline executor stages, and that backend
choice is orthogonal to bit-identical checkpoint/resume.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    HeuristicSchedule,
    Phase,
    adagp_engine,
    bp_engine,
    pipeline_adagp_engine,
)
from repro.data import synthetic_images
from repro.nn.backend import FusedBackend
from repro.nn.losses import CrossEntropyLoss, accuracy


class CountingBackend(FusedBackend):
    """Fused backend that counts conv dispatches, for routing assertions."""

    name = "counting"

    def __init__(self):
        super().__init__()
        self.conv_forward_calls = 0
        self.conv_backward_calls = 0

    def conv2d_forward(self, *args, **kwargs):
        self.conv_forward_calls += 1
        return super().conv2d_forward(*args, **kwargs)

    def conv2d_backward(self, *args, **kwargs):
        self.conv_backward_calls += 1
        return super().conv2d_backward(*args, **kwargs)


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _split(seed=0):
    return synthetic_images(3, 48, 24, image_size=8, seed=seed)


def _fns(split, seed=1):
    return (
        lambda: split.train.batches(16, rng=np.random.default_rng(seed)),
        lambda: split.val.batches(24, shuffle=False),
    )


def _adagp(seed=0, **kwargs):
    return adagp_engine(
        _model(seed),
        CrossEntropyLoss(),
        lr=0.05,
        metric_fn=accuracy,
        schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
        **kwargs,
    )


class TestEngineBackend:
    def test_bp_engine_fused_matches_numpy_first_batch(self):
        split = _split()
        inputs, targets = next(iter(split.train.batches(16, shuffle=False)))
        losses = {}
        for backend in ("numpy", "fused"):
            engine = bp_engine(
                _model(), CrossEntropyLoss(), lr=0.05, backend=backend
            )
            losses[backend] = engine.train_batch(inputs, targets).loss
        assert losses["fused"] == pytest.approx(losses["numpy"], abs=1e-4)

    def test_adagp_fused_end_to_end(self):
        split = _split()
        train_fn, val_fn = _fns(split)
        history = _adagp(backend="fused").fit(train_fn, val_fn, epochs=3)
        assert len(history.train_loss) == 3
        assert np.isfinite(history.train_loss).all()
        assert sum(history.gp_batches) > 0  # GP phase actually ran fused

    def test_engine_clears_model_caches_after_batch(self):
        split = _split()
        engine = bp_engine(_model(), CrossEntropyLoss(), lr=0.05)
        inputs, targets = next(iter(split.train.batches(16, shuffle=False)))
        engine.train_batch(inputs, targets)
        for module in engine.model.modules():
            for key, value in module.__dict__.items():
                if key.startswith("_cache") or key in module._extra_cache_attrs:
                    assert value is None, f"{type(module).__name__}.{key}"

    def test_strategy_level_backend_overrides_engine(self):
        """gp_backend pins Phase-GP streams to their own backend while BP
        batches keep the engine backend."""
        counting = CountingBackend()
        engine = _adagp(backend="numpy", gp_backend=counting)
        assert engine.strategies[Phase.GP].backend is counting
        split = _split()
        train_fn, val_fn = _fns(split)

        # Epoch 0 is pure warm-up: only the engine backend runs.
        engine.fit(train_fn, val_fn, epochs=1)
        assert counting.conv_forward_calls == 0

        # Later epochs stream GP batches through the counting backend,
        # forward-only: backward stays at zero.
        history = engine.fit(train_fn, val_fn, epochs=2)
        assert sum(history.gp_batches) > 0
        assert counting.conv_forward_calls > 0
        assert counting.conv_backward_calls == 0

    def test_pipeline_stages_inherit_engine_backend(self):
        counting = CountingBackend()
        split = _split()
        engine = pipeline_adagp_engine(
            _model(),
            CrossEntropyLoss(),
            num_stages=2,
            micro_batches=4,
            lr=0.05,
            schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
            backend=counting,
        )
        train_fn, val_fn = _fns(split)
        history = engine.fit(train_fn, val_fn, epochs=2)
        assert np.isfinite(history.train_loss).all()
        # Stage sub-models executed their conv slots on the engine backend.
        assert counting.conv_forward_calls > 0
        assert counting.conv_backward_calls > 0
        executor = engine.strategies[Phase.GP].executor
        executor.validate()


class TestBackendCheckpointOrthogonality:
    def _histories_equal(self, a, b):
        assert a.train_loss == b.train_loss
        assert a.val_loss == b.val_loss
        assert a.val_metric == b.val_metric
        assert a.bp_batches == b.bp_batches
        assert a.gp_batches == b.gp_batches

    def test_fused_resume_is_bit_identical(self, tmp_path):
        """Checkpoint/resume under the fused backend reproduces the
        uninterrupted fused run exactly — the backend introduces no
        hidden state outside the checkpoint."""
        split = _split()
        train_fn, val_fn = _fns(split)

        uninterrupted = _adagp(backend="fused").fit(train_fn, val_fn, epochs=4)

        path = str(tmp_path / "ckpt.pkl")
        first = _adagp(backend="fused")
        first.fit(train_fn, val_fn, epochs=2)
        first.save_checkpoint(path)

        resumed = _adagp(backend="fused")
        resumed.load_checkpoint(path)
        history = resumed.fit(train_fn, val_fn, epochs=2)
        self._histories_equal(history, uninterrupted)

    def test_checkpoint_loads_across_backends(self, tmp_path):
        """A checkpoint saved under one backend restores byte-identical
        state into an engine configured with another."""
        split = _split()
        train_fn, val_fn = _fns(split)
        fused = _adagp(backend="fused")
        fused.fit(train_fn, val_fn, epochs=2)
        path = str(tmp_path / "ckpt.pkl")
        fused.save_checkpoint(path)

        on_numpy = _adagp(backend="numpy")
        on_numpy.load_checkpoint(path)
        assert on_numpy.current_epoch == fused.current_epoch
        for key, value in fused.model.state_dict().items():
            np.testing.assert_array_equal(on_numpy.model.state_dict()[key], value)
        # And it keeps training without error on the other substrate.
        history = on_numpy.fit(train_fn, val_fn, epochs=1)
        assert np.isfinite(history.train_loss).all()
