"""Batched-vs-sequential predictor equivalence (the BP-phase fast path).

``GradientPredictor.predict_many``/``train_step_many`` stack every
layer's pooled activations into one trunk forward/backward.  These tests
pin the numerical contract: batched predictions match per-layer
predictions, and the batched backward accumulates exactly the sum of the
per-layer gradients at frozen weights (atol <= 1e-5).
"""

import numpy as np
import pytest

from repro import nn
from repro.core import AdaGPTrainer, GradientPredictor, HeuristicSchedule
from repro.data import synthetic_images
from repro.nn.losses import CrossEntropyLoss

RNG = np.random.default_rng(61)
ATOL = 1e-5


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _collect_entries(model, seed=0):
    """(layer, output, weight_grad, bias_grad) for one backprop batch."""
    layers = nn.predictable_layers(model)
    activations = {}

    def hook(layer, output):
        activations[id(layer)] = output

    for layer in layers:
        layer.forward_hook = hook
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((8, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, 8)
    try:
        outputs = model(x)
    finally:
        for layer in layers:
            layer.forward_hook = None
    _, grad = CrossEntropyLoss()(outputs, y)
    model.zero_grad()
    model.backward(grad)
    return [
        (
            layer,
            activations[id(layer)],
            layer.weight.grad,
            layer.bias.grad if layer.bias is not None else None,
        )
        for layer in layers
    ]


def _predictor(model, seed=5, **kwargs):
    return GradientPredictor.for_model(
        model, rng=np.random.default_rng(seed), **kwargs
    )


class TestPredictManyEquivalence:
    @pytest.mark.parametrize("normalize", [True, False])
    def test_matches_per_layer_predict(self, normalize):
        model = _model()
        entries = _collect_entries(model)
        predictor = _predictor(model, normalize_targets=normalize)
        # Give the per-layer scales realistic values first.
        for layer, output, w_grad, b_grad in entries:
            predictor.train_step(layer, output, w_grad, b_grad)
        layers = [e[0] for e in entries]
        outputs = [e[1] for e in entries]
        batched = predictor.predict_many(layers, outputs)
        for (layer, output, *_), (w_many, b_many) in zip(entries, batched):
            w_one, b_one = predictor.predict(layer, output)
            np.testing.assert_allclose(w_many, w_one, atol=ATOL, rtol=1e-5)
            if b_one is None:
                assert b_many is None
            else:
                np.testing.assert_allclose(b_many, b_one, atol=ATOL, rtol=1e-5)

    def test_mixed_conv_and_linear_layers_supported(self):
        model = _model()
        entries = _collect_entries(model)
        predictor = _predictor(model)
        results = predictor.predict_many(
            [e[0] for e in entries], [e[1] for e in entries]
        )
        for (layer, *_), (w_grad, b_grad) in zip(entries, results):
            assert w_grad.shape == layer.weight.shape
            assert b_grad.shape == layer.bias.shape

    def test_length_mismatch_rejected(self):
        model = _model()
        entries = _collect_entries(model)
        predictor = _predictor(model)
        with pytest.raises(ValueError):
            predictor.predict_many([e[0] for e in entries], [entries[0][1]])

    def test_empty_rejected(self):
        predictor = _predictor(_model())
        with pytest.raises(ValueError):
            predictor.predict_many([], [])


class TestTrainStepManyEquivalence:
    def _grads(self, predictor):
        return [
            np.zeros_like(p.data) if p.grad is None else p.grad.copy()
            for p in predictor.network.parameters()
        ]

    @pytest.mark.parametrize("normalize", [True, False])
    def test_gradient_equals_sum_of_per_layer_gradients(self, normalize):
        """At frozen weights, one batched backward == the summed
        per-layer backwards of the sequential loop."""
        model = _model()
        entries = _collect_entries(model)
        p_seq = _predictor(model, normalize_targets=normalize)
        p_bat = _predictor(model, normalize_targets=normalize)

        summed = None
        seq_metrics = []
        for layer, output, w_grad, b_grad in entries:
            seq_metrics.append(
                p_seq.train_step(layer, output, w_grad, b_grad, apply_update=False)
            )
            grads = self._grads(p_seq)
            summed = grads if summed is None else [
                s + g for s, g in zip(summed, grads)
            ]

        bat_metrics = p_bat.train_step_many(
            [e[0] for e in entries],
            [e[1] for e in entries],
            [e[2] for e in entries],
            [e[3] for e in entries],
            apply_update=False,
        )
        batched = self._grads(p_bat)

        for expected, actual in zip(summed, batched):
            np.testing.assert_allclose(actual, expected, atol=ATOL, rtol=1e-4)
        np.testing.assert_allclose(bat_metrics, seq_metrics, rtol=1e-6)

    def test_scales_updated_identically(self):
        model = _model()
        entries = _collect_entries(model)
        p_seq = _predictor(model)
        p_bat = _predictor(model)
        for layer, output, w_grad, b_grad in entries:
            p_seq.train_step(layer, output, w_grad, b_grad, apply_update=False)
        p_bat.train_step_many(
            [e[0] for e in entries],
            [e[1] for e in entries],
            [e[2] for e in entries],
            [e[3] for e in entries],
            apply_update=False,
        )
        for layer, *_ in entries:
            assert p_seq._scale_for(layer) == pytest.approx(
                p_bat._scale_for(layer)
            )

    def test_batched_training_reduces_error_on_fixed_targets(self):
        model = _model()
        entries = _collect_entries(model)
        predictor = _predictor(model, lr=5e-3)
        layers = [e[0] for e in entries]
        outputs = [e[1] for e in entries]
        w_grads = [e[2] for e in entries]
        b_grads = [e[3] for e in entries]
        first = predictor.train_step_many(layers, outputs, w_grads, b_grads)
        for _ in range(100):
            last = predictor.train_step_many(layers, outputs, w_grads, b_grads)
        assert sum(m for m, _ in last) < sum(m for m, _ in first) * 0.5


class TestTrainerPaths:
    """Both predictor paths work end-to-end through the trainer shim."""

    @pytest.mark.parametrize("batched", [True, False])
    def test_fit_collects_errors_either_way(self, batched):
        split = synthetic_images(3, 48, 24, image_size=8, seed=3)
        trainer = AdaGPTrainer(
            _model(seed=2),
            CrossEntropyLoss(),
            lr=0.05,
            schedule=HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
            batched_predictor=batched,
        )
        history = trainer.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(0)),
            lambda: split.val.batches(24, shuffle=False),
            epochs=2,
        )
        assert len(history.predictor_mape) == 2
        assert len(history.predictor_mape[0]) == 3
        assert history.gp_batches[1] > 0
