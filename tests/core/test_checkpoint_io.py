"""Checkpoint file-format tests: atomic writes, CRC-framed headers, and
the :class:`CheckpointCorrupt` surface for truncated / bit-rotted files.

Trajectory-level resume correctness lives in ``test_engine.py``; this
file covers the on-disk contract a crash-during-save or disk corruption
exercises — the fault-tolerance rung for *persistence*."""

import os
import pickle

import numpy as np
import pytest

from repro import nn
from repro.core import CheckpointCorrupt, bp_engine
from repro.core.engine.checkpoint import CHECKPOINT_MAGIC, engine_state
from repro.data import synthetic_images
from repro.nn.losses import CrossEntropyLoss


def _engine(seed=0):
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 3, rng=rng),
    )
    return bp_engine(model, CrossEntropyLoss(), lr=0.05)


def _trained_engine(seed=0):
    engine = _engine(seed)
    split = synthetic_images(3, 32, 16, image_size=8, seed=0)
    engine.fit(
        lambda: split.train.batches(16, rng=np.random.default_rng(1)),
        lambda: split.val.batches(16, shuffle=False),
        1,
    )
    return engine


def _assert_same_state(fresh, trained):
    assert pickle.dumps(fresh.model.state_dict()) == pickle.dumps(
        trained.model.state_dict()
    )
    assert fresh.history.train_loss == trained.history.train_loss
    assert fresh.current_epoch == trained.current_epoch


class TestAtomicSave:
    def test_round_trip_restores_state(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        trained = _trained_engine()
        trained.save_checkpoint(path)
        fresh = _engine()
        fresh.load_checkpoint(path)
        _assert_same_state(fresh, trained)

    def test_no_tmp_residue(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        _trained_engine().save_checkpoint(path)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        assert sorted(os.listdir(tmp_path)) == ["ckpt.pkl"]

    def test_overwrite_replaces_whole_file(self, tmp_path):
        """A save over a longer old checkpoint must not leave a stale
        tail (the os.replace property a plain truncating write lacks
        only on crash — this asserts the happy path stays well-formed)."""
        path = str(tmp_path / "ckpt.pkl")
        trained = _trained_engine()
        trained.save_checkpoint(path)
        with open(path, "ab") as handle:
            handle.write(b"\0" * 64)  # simulate a stale longer file
        trained.save_checkpoint(path)
        fresh = _engine()
        fresh.load_checkpoint(path)  # length check would reject a tail

    def test_file_is_framed(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        _trained_engine().save_checkpoint(path)
        with open(path, "rb") as handle:
            assert handle.read(4) == CHECKPOINT_MAGIC


class TestCorruptionDetection:
    def test_truncated_file_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        _trained_engine().save_checkpoint(path)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(CheckpointCorrupt, match="truncated"):
            _engine().load_checkpoint(path)

    def test_flipped_body_byte_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        _trained_engine().save_checkpoint(path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CheckpointCorrupt, match="CRC32"):
            _engine().load_checkpoint(path)

    def test_garbage_file_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a checkpoint of any vintage")
        with pytest.raises(CheckpointCorrupt, match="not a checkpoint"):
            _engine().load_checkpoint(path)

    def test_error_names_the_file(self, tmp_path):
        path = str(tmp_path / "which-one.pkl")
        with open(path, "wb") as handle:
            handle.write(b"junk")
        with pytest.raises(CheckpointCorrupt, match="which-one"):
            _engine().load_checkpoint(path)


class TestLegacyFormat:
    def test_bare_pickle_checkpoints_still_load(self, tmp_path):
        """Pre-framing checkpoints were a bare pickle of the state dict;
        existing files must keep loading."""
        path = str(tmp_path / "legacy.pkl")
        trained = _trained_engine()
        with open(path, "wb") as handle:
            pickle.dump(engine_state(trained), handle)
        fresh = _engine()
        fresh.load_checkpoint(path)
        _assert_same_state(fresh, trained)


class TestPublicSurface:
    def test_exception_importable_from_core(self):
        from repro.core import CheckpointCorrupt as from_core
        from repro.core.engine import CheckpointCorrupt as from_engine

        assert from_core is from_engine
        assert issubclass(from_core, RuntimeError)
