"""Tests for BLEU, IoU, mAP, and detection metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    bleu_score,
    detection_class_accuracy,
    iou,
    mean_average_precision,
    mean_squared_error,
)


class TestBleu:
    def test_perfect_match_is_100(self):
        sentences = [[1, 2, 3, 4, 5], [6, 7, 8, 9]]
        assert bleu_score(sentences, sentences) == pytest.approx(100.0)

    def test_no_overlap_is_zero_without_smoothing(self):
        assert bleu_score([[1, 2, 3, 4]], [[5, 6, 7, 8]], smooth=False) == 0.0

    def test_partial_overlap_between_zero_and_hundred(self):
        score = bleu_score([[1, 2, 3, 9, 9]], [[1, 2, 3, 4, 5]])
        assert 0 < score < 100

    def test_brevity_penalty_punishes_short_candidates(self):
        long_ref = [[1, 2, 3, 4, 5, 6, 7, 8]]
        full = bleu_score([[1, 2, 3, 4, 5, 6, 7, 8]], long_ref)
        short = bleu_score([[1, 2, 3, 4]], long_ref)
        assert short < full

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bleu_score([[1]], [[1], [2]])
        with pytest.raises(ValueError):
            bleu_score([], [])

    def test_order_matters(self):
        reference = [[1, 2, 3, 4, 5]]
        in_order = bleu_score([[1, 2, 3, 4, 5]], reference)
        shuffled = bleu_score([[5, 3, 1, 4, 2]], reference)
        assert shuffled < in_order


class TestIou:
    def test_identical_boxes(self):
        box = (0.0, 0.0, 1.0, 1.0)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou((0, 0, 1, 1), (2, 2, 3, 3)) == 0.0

    def test_half_overlap(self):
        value = iou((0, 0, 2, 2), (1, 0, 3, 2))
        assert value == pytest.approx(2.0 / 6.0)

    def test_degenerate_boxes(self):
        assert iou((0, 0, 0, 0), (0, 0, 1, 1)) == 0.0

    @given(
        x1=st.floats(0, 0.5), y1=st.floats(0, 0.5),
        w=st.floats(0.1, 0.5), h=st.floats(0.1, 0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_iou_symmetric_and_bounded(self, x1, y1, w, h):
        a = (x1, y1, x1 + w, y1 + h)
        b = (0.2, 0.2, 0.7, 0.7)
        assert iou(a, b) == pytest.approx(iou(b, a))
        assert 0.0 <= iou(a, b) <= 1.0


class TestMeanAveragePrecision:
    def test_perfect_detection_map_one(self):
        gts = [[(0, 0.1, 0.1, 0.3, 0.3)], [(1, 0.5, 0.5, 0.8, 0.8)]]
        preds = [
            [(0, 0.9, 0.1, 0.1, 0.3, 0.3)],
            [(1, 0.8, 0.5, 0.5, 0.8, 0.8)],
        ]
        assert mean_average_precision(preds, gts, num_classes=2) == pytest.approx(1.0)

    def test_wrong_class_scores_zero(self):
        gts = [[(0, 0.1, 0.1, 0.3, 0.3)]]
        preds = [[(1, 0.9, 0.1, 0.1, 0.3, 0.3)]]
        assert mean_average_precision(preds, gts, num_classes=2) == 0.0

    def test_misplaced_box_scores_zero(self):
        gts = [[(0, 0.1, 0.1, 0.3, 0.3)]]
        preds = [[(0, 0.9, 0.6, 0.6, 0.9, 0.9)]]
        assert mean_average_precision(preds, gts, num_classes=1) == 0.0

    def test_false_positives_reduce_precision(self):
        gts = [[(0, 0.1, 0.1, 0.3, 0.3)]]
        clean = [[(0, 0.9, 0.1, 0.1, 0.3, 0.3)]]
        noisy = [
            [
                (0, 0.95, 0.6, 0.6, 0.9, 0.9),  # confident false positive
                (0, 0.90, 0.1, 0.1, 0.3, 0.3),
            ]
        ]
        assert mean_average_precision(noisy, gts, 1) < mean_average_precision(
            clean, gts, 1
        )

    def test_duplicate_detections_count_once(self):
        """A duplicate ranked above another object's detection is a FP
        that drags interpolated precision below 1."""
        gts = [[(0, 0.1, 0.1, 0.3, 0.3), (0, 0.6, 0.6, 0.8, 0.8)]]
        preds = [
            [
                (0, 0.90, 0.1, 0.1, 0.3, 0.3),
                (0, 0.85, 0.1, 0.1, 0.3, 0.3),  # duplicate -> false positive
                (0, 0.80, 0.6, 0.6, 0.8, 0.8),
            ]
        ]
        value = mean_average_precision(preds, gts, 1)
        assert value == pytest.approx(0.5 + 0.5 * (2 / 3))

    def test_no_ground_truth_rejected(self):
        with pytest.raises(ValueError):
            mean_average_precision([[]], [[]], num_classes=1)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            mean_average_precision([[], []], [[]], num_classes=1)


class TestDetectionClassAccuracy:
    def test_all_correct(self):
        target = np.zeros((1, 8, 2, 2), dtype=np.float32)
        target[0, 0, 0, 0] = 1.0
        target[0, 5 + 2, 0, 0] = 1.0
        pred = np.zeros_like(target)
        pred[0, 5 + 2, 0, 0] = 5.0
        assert detection_class_accuracy(pred, target) == 100.0

    def test_all_wrong(self):
        target = np.zeros((1, 8, 2, 2), dtype=np.float32)
        target[0, 0, 0, 0] = 1.0
        target[0, 5 + 2, 0, 0] = 1.0
        pred = np.zeros_like(target)
        pred[0, 5 + 0, 0, 0] = 5.0
        assert detection_class_accuracy(pred, target) == 0.0

    def test_requires_objects(self):
        empty = np.zeros((1, 8, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            detection_class_accuracy(empty, empty)


def test_mse_helper():
    a = np.array([1.0, 2.0])
    b = np.array([1.0, 4.0])
    assert mean_squared_error(a, b) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mean_squared_error(a, np.zeros(3))
