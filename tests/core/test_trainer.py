"""Tests for the BP and ADA-GP trainers (§3.3, §3.4)."""

import numpy as np
import pytest

from repro import nn
from repro.core import AdaGPTrainer, BPTrainer, HeuristicSchedule, Phase
from repro.data import synthetic_images
from repro.nn.losses import CrossEntropyLoss, accuracy

RNG = np.random.default_rng(31)


def _tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _tiny_split(seed=0):
    return synthetic_images(3, 48, 24, image_size=8, seed=seed)


class TestBPTrainer:
    def test_single_batch_reduces_loss_over_steps(self):
        model = _tiny_model()
        trainer = BPTrainer(model, CrossEntropyLoss(), lr=0.05)
        x = RNG.standard_normal((16, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 16)
        first = trainer.train_batch(x, y)
        for _ in range(30):
            last = trainer.train_batch(x, y)
        assert last < first

    def test_fit_records_history(self):
        split = _tiny_split()
        trainer = BPTrainer(
            _tiny_model(), CrossEntropyLoss(), lr=0.05, metric_fn=accuracy
        )
        history = trainer.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(0)),
            lambda: split.val.batches(24, shuffle=False),
            epochs=3,
        )
        assert history.num_epochs == 3
        assert all(np.isfinite(v) for v in history.val_metric)

    def test_evaluate_does_not_change_weights(self):
        split = _tiny_split()
        trainer = BPTrainer(_tiny_model(), CrossEntropyLoss(), metric_fn=accuracy)
        before = trainer.model.state_dict()
        trainer.evaluate(split.val.batches(24, shuffle=False))
        after = trainer.model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_empty_epoch_rejected(self):
        trainer = BPTrainer(_tiny_model(), CrossEntropyLoss())
        with pytest.raises(ValueError):
            trainer.train_epoch([])


class TestAdaGPTrainer:
    def _trainer(self, schedule=None, seed=0, **kwargs):
        return AdaGPTrainer(
            _tiny_model(seed),
            CrossEntropyLoss(),
            lr=0.05,
            metric_fn=accuracy,
            schedule=schedule
            or HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),)),
            **kwargs,
        )

    def test_requires_predictable_layers(self):
        with pytest.raises(ValueError):
            AdaGPTrainer(nn.Sequential(nn.ReLU()), CrossEntropyLoss())

    def test_gp_batch_skips_backward_but_updates_weights(self):
        trainer = self._trainer()
        x = RNG.standard_normal((8, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 8)
        trainer.train_batch_bp(x, y)  # give predictor a scale estimate
        before = {
            name: p.data.copy() for name, p in trainer.model.named_parameters()
        }
        trainer.optimizer.zero_grad()
        trainer.train_batch_gp(x, y)
        # No gradients were accumulated (backprop skipped)...
        conv = trainer.layers[0]
        assert conv.weight.grad is None
        # ...yet predictable weights moved (predicted updates applied).
        changed = any(
            not np.array_equal(before[name], p.data)
            for name, p in trainer.model.named_parameters()
            if name.endswith("weight")
        )
        assert changed

    def test_gp_hooks_are_removed_after_batch(self):
        trainer = self._trainer()
        x = RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 4)
        trainer.train_batch_gp(x, y)
        assert all(layer.forward_hook is None for layer in trainer.layers)

    def test_bp_batch_trains_predictor(self):
        trainer = self._trainer()
        x = RNG.standard_normal((8, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 8)
        params_before = [
            p.data.copy() for p in trainer.predictor.network.parameters()
        ]
        trainer.train_batch_bp(x, y)
        params_after = list(trainer.predictor.network.parameters())
        moved = any(
            not np.array_equal(b, a.data)
            for b, a in zip(params_before, params_after)
        )
        assert moved

    def test_epoch_phase_accounting(self):
        split = _tiny_split()
        trainer = self._trainer(
            schedule=HeuristicSchedule(warmup_epochs=0, ladder=((10, (2, 1)),))
        )
        stats = trainer.train_epoch(
            split.train.batches(16, rng=np.random.default_rng(0)), epoch=0
        )
        counts = stats["counts"]
        assert counts[Phase.GP] == 2
        assert counts[Phase.BP] == 1

    def test_fit_collects_predictor_errors(self):
        split = _tiny_split()
        trainer = self._trainer()
        history = trainer.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(0)),
            lambda: split.val.batches(24, shuffle=False),
            epochs=2,
        )
        assert len(history.predictor_mape) == 2
        assert len(history.predictor_mape[0]) == 3  # three predictable layers
        assert history.gp_batches[0] == 0  # warm-up epoch
        assert history.gp_batches[1] > 0

    def test_gp_optimizer_used_for_predicted_updates(self):
        gp_moves = []

        class SpyOptimizer(nn.SGD):
            def apply_gradient(self, param, grad):
                gp_moves.append(param)
                super().apply_gradient(param, grad)

        model = _tiny_model()
        trainer = AdaGPTrainer(
            model,
            CrossEntropyLoss(),
            lr=0.05,
            gp_optimizer=SpyOptimizer(model.parameters(), lr=0.01),
            schedule=HeuristicSchedule(warmup_epochs=0),
        )
        x = RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 4)
        trainer.train_batch_gp(x, y)
        # weight + bias for each of the three predictable layers
        assert len(gp_moves) == 6

    def test_adaptive_schedule_receives_mape(self):
        from repro.core import AdaptiveSchedule

        schedule = AdaptiveSchedule(warmup_epochs=0)
        model = _tiny_model()
        trainer = AdaGPTrainer(
            model, CrossEntropyLoss(), lr=0.05, schedule=schedule
        )
        x = RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 4)
        trainer.train_batch_bp(x, y)
        assert schedule._recent_mape != float("inf")

    def test_evaluate_runs_without_hooks(self):
        split = _tiny_split()
        trainer = self._trainer()
        loss, metric = trainer.evaluate(split.val.batches(24, shuffle=False))
        assert np.isfinite(loss)
        assert np.isfinite(metric)


class TestBpVsAdaGpIntegration:
    def test_adagp_matches_bp_accuracy_on_easy_task(self):
        """The Table 1 claim at micro scale: ADA-GP lands near BP.

        The batch size is chosen so every post-warm-up epoch still
        contains BP batches (k=2, m=1 over 12 batches/epoch); with only
        a handful of batches per epoch a 4:1 ratio would leave whole
        epochs without a single true-gradient step.
        """
        split = synthetic_images(3, 96, 48, image_size=8, noise=0.3, seed=7)

        def fit(use_adagp):
            model = _tiny_model(seed=3)
            if use_adagp:
                trainer = AdaGPTrainer(
                    model, CrossEntropyLoss(), lr=0.05, metric_fn=accuracy,
                    schedule=HeuristicSchedule(
                        warmup_epochs=4, ladder=((4, (2, 1)),), final_ratio=(1, 1)
                    ),
                )
            else:
                trainer = BPTrainer(
                    model, CrossEntropyLoss(), lr=0.05, metric_fn=accuracy
                )
            history = trainer.fit(
                lambda: split.train.batches(8, rng=np.random.default_rng(1)),
                lambda: split.val.batches(48, shuffle=False),
                epochs=14,
            )
            return history.best_metric

        bp = fit(False)
        ada = fit(True)
        # Qualitative smoke bound: both learn far beyond the 33% chance
        # level.  The quantitative parity claim is exercised at proper
        # mini scale by the Table 1 experiment (see EXPERIMENTS.md).
        assert bp > 80.0
        assert ada > 60.0
