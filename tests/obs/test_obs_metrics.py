"""Metrics registry semantics: naming, labels, snapshot/delta/merge.

The cross-rank merge rules (counters/histograms sum, gauges keep the
first rank) are what make "W=2 rank-merge equals serial accounting" a
provable invariant in the integration tests.
"""

import pytest

from repro import obs


class TestNaming:
    def test_valid_names_accepted(self):
        reg = obs.MetricsRegistry()
        reg.counter("repro_dist_grad_wire_bytes")
        reg.gauge("repro_backend_pool_outstanding")
        reg.histogram("repro_engine_batch_seconds")

    @pytest.mark.parametrize(
        "bad",
        ["grad_bytes", "repro_bytes", "repro-dist-bytes", "repro_Dist_bytes", ""],
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError, match="repro_<subsystem>_<name>"):
            obs.MetricsRegistry().counter(bad)

    def test_kind_conflict_rejected(self):
        reg = obs.MetricsRegistry()
        reg.counter("repro_dist_sync_bytes")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("repro_dist_sync_bytes")


class TestCounter:
    def test_inc_and_labels(self):
        counter = obs.MetricsRegistry().counter("repro_engine_batches_total")
        counter.inc(phase="bp")
        counter.inc(2, phase="bp")
        counter.inc(phase="gp")
        assert counter.value(phase="bp") == 3
        assert counter.value(phase="gp") == 1
        assert counter.total() == 4

    def test_label_order_is_canonical(self):
        counter = obs.MetricsRegistry().counter("repro_backend_dispatch_total")
        counter.inc(op="conv", path="native")
        counter.inc(path="native", op="conv")
        assert counter.value(op="conv", path="native") == 2

    def test_monotone(self):
        counter = obs.MetricsRegistry().counter("repro_engine_batches_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        counter.set_to(10)
        with pytest.raises(ValueError, match="backwards"):
            counter.set_to(5)

    def test_set_to_pins_exact_value(self):
        # The bridging contract: external accumulators copy exactly.
        counter = obs.MetricsRegistry().counter("repro_dist_sync_bytes")
        counter.set_to(17_123)
        counter.set_to(17_123)  # idempotent re-bridge
        assert counter.value() == 17_123


class TestGaugeHistogram:
    def test_gauge_last_write_wins(self):
        gauge = obs.MetricsRegistry().gauge("repro_backend_pool_outstanding")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2

    def test_histogram_buckets(self):
        hist = obs.MetricsRegistry().histogram(
            "repro_engine_batch_seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 3.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(3.55)
        snap = hist.snapshot()["series"][""]
        assert snap["counts"] == [1, 1, 1]  # ≤0.1, ≤1.0, overflow


class TestSnapshotDelta:
    def test_delta_subtracts_counters_passes_gauges(self):
        reg = obs.MetricsRegistry()
        counter = reg.counter("repro_dist_sync_bytes")
        gauge = reg.gauge("repro_backend_pool_outstanding")
        hist = reg.histogram("repro_engine_batch_seconds", buckets=(1.0,))
        counter.inc(10)
        gauge.set(4)
        hist.observe(0.5)
        first = reg.snapshot()
        counter.inc(7)
        gauge.set(9)
        hist.observe(2.0)
        delta = obs.MetricsRegistry.delta(reg.snapshot(), first)
        assert delta["repro_dist_sync_bytes"]["series"][""] == 7
        assert delta["repro_backend_pool_outstanding"]["series"][""] == 9
        hrow = delta["repro_engine_batch_seconds"]["series"][""]
        assert hrow["count"] == 1 and hrow["counts"] == [0, 1]

    def test_snapshot_is_json_safe_plain_data(self, tmp_path):
        reg = obs.MetricsRegistry()
        reg.counter("repro_dist_sync_bytes").inc(3, phase="bp")
        path = tmp_path / "snap.json"
        obs.dump_snapshot(reg.snapshot(), path)
        assert obs.load_snapshot(path) == reg.snapshot()


class TestMerge:
    def test_rank_merge_equals_serial_accounting(self):
        """Two ranks each doing half the work merge to the serial total."""
        serial = obs.MetricsRegistry()
        ranks = [obs.MetricsRegistry() for _ in range(2)]
        for step in range(10):
            serial.counter("repro_dist_grad_wire_bytes").inc(100, phase="bp")
            serial.histogram(
                "repro_engine_batch_seconds", buckets=(1.0,)
            ).observe(0.5)
            rank = ranks[step % 2]
            rank.counter("repro_dist_grad_wire_bytes").inc(100, phase="bp")
            rank.histogram(
                "repro_engine_batch_seconds", buckets=(1.0,)
            ).observe(0.5)
        merged = obs.merge_snapshots([r.snapshot() for r in ranks])
        assert merged == serial.snapshot()

    def test_gauges_keep_first_rank(self):
        ranks = [obs.MetricsRegistry() for _ in range(2)]
        ranks[0].gauge("repro_backend_pool_outstanding").set(1)
        ranks[1].gauge("repro_backend_pool_outstanding").set(7)
        merged = obs.merge_snapshots([r.snapshot() for r in ranks])
        assert merged["repro_backend_pool_outstanding"]["series"][""] == 1

    def test_kind_conflict_across_ranks_rejected(self):
        a = obs.MetricsRegistry()
        b = obs.MetricsRegistry()
        a.counter("repro_dist_sync_bytes").inc()
        b.gauge("repro_dist_sync_bytes").set(1)
        with pytest.raises(TypeError, match="conflicting kinds"):
            obs.merge_snapshots([a.snapshot(), b.snapshot()])


class TestGlobalRegistry:
    def test_set_registry_swaps_and_restores(self):
        fresh = obs.MetricsRegistry()
        previous = obs.set_registry(fresh)
        try:
            assert obs.registry() is fresh
        finally:
            obs.set_registry(previous)
        assert obs.registry() is previous
