"""End-to-end observability: the ISSUE 10 acceptance criteria.

One adagp run with ``TracingCallback`` + ``MetricsCallback`` attached
must produce (a) a trace whose per-phase span totals reconcile with
``ThroughputTimer`` within 1%, (b) a metrics snapshot whose comm
counters equal ``CommStats`` exactly under W=2 DDP, and (c) chaos runs
whose fault/retry/rebuild increments match the ledger.  Plus: pipeline
spans rebuild a Timeline identical to the executor's, and the profiler
emits the Fig-15 phase×op table.
"""

import itertools

import numpy as np
import pytest

from repro import nn, obs
from repro.core import (
    HeuristicSchedule,
    Phase,
    adagp_engine,
    pipeline_adagp_engine,
)
from repro.core.engine.events import ThroughputTimer
from repro.data import synthetic_images
from repro.dist import ChaosTransport, Fault, ddp_engine, dp_strategy, shutdown
from repro.models import build_mini
from repro.nn.backend import FusedBackend
from repro.nn.losses import CrossEntropyLoss, accuracy
from repro.pipeline import Timeline, render_timeline


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def _split():
    return synthetic_images(3, 48, 24, image_size=8, seed=0)


def _schedule():
    return HeuristicSchedule(warmup_epochs=1, ladder=((1, (2, 1)),))


def _fit(engine, split, epochs=3):
    return engine.fit(
        lambda: split.train.batches(16, rng=np.random.default_rng(1)),
        lambda: split.val.batches(24, shuffle=False),
        epochs,
    )


class TestEngineReconciliation:
    def test_batch_span_totals_match_throughput_timer_within_1pct(self):
        """Acceptance (a): the trace and the timer measure the same
        batches through the same callback events, so their per-phase
        totals agree to within callback-dispatch skew (≪1%)."""
        tracer = obs.Tracer()
        timer = ThroughputTimer()
        engine = adagp_engine(
            _model(),
            CrossEntropyLoss(),
            lr=0.05,
            metric_fn=accuracy,
            schedule=_schedule(),
            callbacks=[timer, obs.TracingCallback(tracer)],
        )
        _fit(engine, _split())
        span_totals: dict[str, float] = {}
        for span in tracer.spans:
            if span.name == "engine.batch":
                span_totals[span.phase] = (
                    span_totals.get(span.phase, 0.0) + span.duration
                )
        timer_totals: dict[str, float] = {}
        for phase, seconds in timer.seconds.items():
            tag = obs.phase_tag(phase)
            timer_totals[tag] = timer_totals.get(tag, 0.0) + seconds
        assert set(span_totals) == {k for k, v in timer_totals.items() if v > 0}
        for tag, seconds in timer_totals.items():
            if seconds > 0:
                assert span_totals[tag] == pytest.approx(seconds, rel=0.01)

    def test_batch_counts_match_history_exactly(self):
        tracer = obs.Tracer()
        reg = obs.MetricsRegistry()
        engine = adagp_engine(
            _model(),
            CrossEntropyLoss(),
            lr=0.05,
            metric_fn=accuracy,
            schedule=_schedule(),
            callbacks=[obs.TracingCallback(tracer), obs.MetricsCallback(reg)],
        )
        history = _fit(engine, _split())
        batch_spans = [s for s in tracer.spans if s.name == "engine.batch"]
        gp_spans = sum(1 for s in batch_spans if s.phase == "gp")
        bp_spans = sum(1 for s in batch_spans if s.phase == "bp")
        assert gp_spans == sum(history.gp_batches)
        assert bp_spans == sum(history.bp_batches)
        live = reg.counter("repro_engine_batches_live")
        assert live.value(phase="gp") == gp_spans
        assert live.value(phase="bp") == bp_spans
        # Every batch span closed carrying its loss.
        assert all("loss" in s.args for s in batch_spans)

    def test_eval_spans_recorded_per_epoch(self):
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            engine = adagp_engine(
                _model(),
                CrossEntropyLoss(),
                lr=0.05,
                metric_fn=accuracy,
                schedule=_schedule(),
            )
            _fit(engine, _split())
        finally:
            obs.set_tracer(previous)
        evals = [s for s in tracer.spans if s.name == "engine.evaluate"]
        assert len(evals) == 3
        assert all(s.phase == "eval" for s in evals)


class TestDistObservability:
    def test_comm_counters_equal_commstats_exactly_w2(self):
        """Acceptance (b): bridged counters are set_to-pinned copies of
        CommStats.totals() — exact equality, not approximation."""
        reg = obs.MetricsRegistry()
        engine = ddp_engine(
            _model(),
            CrossEntropyLoss(),
            workers=2,
            transport="local",
            lr=0.05,
            metric_fn=accuracy,
            schedule=_schedule(),
        )
        engine.add_callback(obs.MetricsCallback(reg))
        _fit(engine, _split())
        comm = dp_strategy(engine).comm
        snap = reg.snapshot()
        totals = comm.totals()
        assert totals["grad_wire_bytes"] > 0 and totals["sync_bytes"] > 0
        for key, value in totals.items():
            assert snap[f"repro_dist_{key}"]["series"][""] == value, key
        ratio = comm.compression_ratio()
        assert snap["repro_dist_compression_ratio"]["series"][""] == ratio
        shutdown(engine)

    def test_comm_spans_on_global_tracer(self):
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            engine = ddp_engine(
                _model(),
                CrossEntropyLoss(),
                workers=2,
                transport="local",
                lr=0.05,
                metric_fn=accuracy,
                schedule=_schedule(),
            )
            _fit(engine, _split())
            shutdown(engine)
        finally:
            obs.set_tracer(previous)
        names = {s.name for s in tracer.spans if s.phase == "comm"}
        assert names >= {"dist.sync", "dist.gather", "dist.apply"}

    def test_chaos_fault_metrics_match_commstats(self):
        """PR 9 fault matrix rides through: a killed compute forces
        fault + rebuild increments, and the bridged counters show the
        ledger's exact numbers."""
        reg = obs.MetricsRegistry()
        wrapper = ChaosTransport(
            "local", faults=[Fault("kill", rank=1, op="compute", nth=1)]
        )
        engine = ddp_engine(
            _model(),
            CrossEntropyLoss(),
            workers=2,
            transport=wrapper,
            lr=0.05,
            metric_fn=accuracy,
            schedule=_schedule(),
            retry_backoff=0.0,
        )
        engine.add_callback(obs.MetricsCallback(reg))
        _fit(engine, _split())
        comm = dp_strategy(engine).comm
        totals = comm.totals()
        assert totals["faults"] >= 1 and totals["rebuilds"] >= 1
        snap = reg.snapshot()
        for key in ("faults", "retries", "rebuilds", "recovery_s", "recovery_bytes"):
            assert snap[f"repro_dist_{key}"]["series"][""] == totals[key], key
        shutdown(engine)

    def test_recovery_spans_traced(self):
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            wrapper = ChaosTransport(
                "local", faults=[Fault("kill", rank=1, op="compute", nth=1)]
            )
            engine = ddp_engine(
                _model(),
                CrossEntropyLoss(),
                workers=2,
                transport=wrapper,
                lr=0.05,
                metric_fn=accuracy,
                schedule=_schedule(),
                retry_backoff=0.0,
            )
            _fit(engine, _split())
            comm = dp_strategy(engine).comm
            shutdown(engine)
        finally:
            obs.set_tracer(previous)
        rebuild_spans = [s for s in tracer.spans if s.name == "dist.rebuild"]
        assert len(rebuild_spans) == comm.totals()["rebuilds"]
        assert all(s.phase == "recovery" for s in rebuild_spans)

    def test_per_epoch_rank_merge_equals_serial_accounting(self):
        """Merging per-epoch snapshots of the comm ledger reproduces the
        all-epoch totals — the merge semantics the multi-rank story
        relies on, driven by real W=2 traffic."""
        engine = ddp_engine(
            _model(),
            CrossEntropyLoss(),
            workers=2,
            transport="local",
            lr=0.05,
            metric_fn=accuracy,
            schedule=_schedule(),
        )
        _fit(engine, _split())
        comm = dp_strategy(engine).comm
        shutdown(engine)
        parts = []
        for _epoch, row in comm.epochs.items():
            reg = obs.MetricsRegistry()
            for key, value in row.items():
                reg.counter(f"repro_dist_{key}").set_to(value)
            parts.append(reg.snapshot())
        serial = obs.MetricsRegistry()
        for key, value in comm.totals().items():
            serial.counter(f"repro_dist_{key}").set_to(value)
        assert obs.merge_snapshots(parts) == serial.snapshot()


class TestPipelineObservability:
    def test_timeline_from_spans_matches_live_timeline(self):
        """The executor records spans on the virtual device clock, so a
        Timeline rebuilt from the trace is the live one — same tasks,
        same ASCII render."""
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            model = build_mini("ResNet50", 10, rng=np.random.default_rng(0))
            engine = pipeline_adagp_engine(
                model,
                CrossEntropyLoss(),
                num_stages=2,
                micro_batches=4,
                schedule=_schedule(),
                plateau_scheduler=False,
            )

            def batches():
                rng = np.random.default_rng(5)
                for _ in range(3):
                    x = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
                    yield x, rng.integers(0, 10, 8)

            engine.fit(batches, batches, epochs=2)
        finally:
            obs.set_tracer(previous)
        live = engine.strategies[Phase.GP].executor.timeline
        pipe_spans = [s for s in tracer.spans if s.name.startswith("pipe.")]
        assert len(pipe_spans) == len(live.tasks)
        rebuilt = Timeline.from_spans(pipe_spans)
        rebuilt.validate()

        def key(task):
            return (
                task.device,
                task.start,
                task.end,
                task.kind,
                task.micro_batch,
                task.stage,
                task.batch,
            )

        assert sorted(map(key, rebuilt.tasks)) == sorted(map(key, live.tasks))
        assert render_timeline(rebuilt, 2, width=60, label_by="batch") == (
            render_timeline(live, 2, width=60, label_by="batch")
        )
        # Span phases follow the engine scope: BP batches and GP streams.
        assert {s.phase for s in pipe_spans} == {"bp", "gp"}

    def test_stage_occupancy_cross_checks_timeline(self):
        tracer = obs.Tracer()
        spans = [
            # device 0: busy 2 of [0, 4] -> 50%; device 1: busy 3 of [1, 4].
            ("pipe.fw", 0.0, 1.0, 0),
            ("pipe.bw", 3.0, 4.0, 0),
            ("pipe.fw", 1.0, 4.0, 1),
        ]
        for name, start, end, track in spans:
            tracer.record(name, obs.BP, start, end, track=track)
        occupancy = obs.stage_occupancy(tracer.spans)
        assert occupancy[0]["occupancy"] == pytest.approx(0.5)
        assert occupancy[0]["bubble"] == pytest.approx(2.0)
        assert occupancy[1]["occupancy"] == pytest.approx(1.0)
        timeline = Timeline.from_spans(tracer.spans)
        assert timeline.makespan == 4.0


class TestProfiler:
    def test_phase_op_table_covers_training_phases(self):
        """The Fig-15 breakdown: profiled backend attributes op time to
        the engine's phases."""
        reg = obs.MetricsRegistry()
        profiled = obs.ProfilingBackend(FusedBackend(), registry=reg)
        engine = adagp_engine(
            _model(),
            CrossEntropyLoss(),
            lr=0.05,
            metric_fn=accuracy,
            schedule=_schedule(),
            backend=profiled,
        )
        _fit(engine, _split())
        table = obs.phase_op_table(reg.snapshot())
        assert {"bp", "gp", "eval"} <= set(table)
        assert "conv2d_backward" in table["bp"]
        assert "conv2d_backward" not in table["gp"]  # GP skips backward
        assert "conv2d_forward" in table["gp"]
        rendered = obs.render_phase_op_table(table)
        assert "phase bp" in rendered and "conv2d_forward" in rendered

    def test_profiled_run_matches_unprofiled_losses(self):
        histories = []
        for wrap in (False, True):
            backend = FusedBackend()
            if wrap:
                backend = obs.ProfilingBackend(
                    backend, registry=obs.MetricsRegistry()
                )
            engine = adagp_engine(
                _model(),
                CrossEntropyLoss(),
                lr=0.05,
                metric_fn=accuracy,
                schedule=_schedule(),
                backend=backend,
            )
            histories.append(_fit(engine, _split()))
        assert histories[0].train_loss == histories[1].train_loss
        assert histories[0].val_loss == histories[1].val_loss

    def test_sampling_scales_counts(self):
        reg = obs.MetricsRegistry()
        clock = itertools.count(0)
        tracer = obs.Tracer(clock=lambda: next(clock) * 0.001)
        profiled = obs.ProfilingBackend(
            FusedBackend(), registry=reg, tracer=tracer, sample_every=4
        )
        x = np.random.default_rng(0).standard_normal((2, 8)).astype(np.float32)
        w = np.random.default_rng(1).standard_normal((3, 8)).astype(np.float32)
        with obs.phase_scope("bp"):
            for _ in range(8):
                profiled.linear_forward(x, w, None)
        calls = reg.counter("repro_backend_op_calls")
        # 8 calls, 2 sampled, each scaled by 4 -> unbiased total of 8.
        assert calls.value(phase="bp", op="linear_forward") == 8

    def test_conv_ctx_repinned_to_profiler(self):
        reg = obs.MetricsRegistry()
        profiled = obs.ProfilingBackend(FusedBackend(), registry=reg)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        with obs.phase_scope("bp"):
            out, ctx = profiled.conv2d_forward(x, w, None, 1, 1)
            assert ctx.backend is profiled
            profiled.conv2d_backward(np.ones_like(out), w, ctx, with_bias=False)
        calls = reg.counter("repro_backend_op_calls")
        assert calls.value(phase="bp", op="conv2d_backward") == 1
