"""Tracer unit behaviour: determinism, bounds, exporters, phase scope.

The load-bearing property is bit-identical traces under an injected
clock — what makes trace-based assertions (pipeline timeline agreement,
reconciliation tests) stable fixtures instead of flaky timing tests.
"""

import itertools
import json

import pytest

from repro import obs
from repro.obs.trace import ENGINE_PHASE_TAGS, _NULL_CONTEXT
from repro.core.schedule import Phase


def _counting_clock(step=0.25):
    counter = itertools.count(0)
    return lambda: next(counter) * step


def _record_workload(tracer):
    with tracer.span("engine.batch", phase=obs.BP, epoch=0, batch=0):
        with tracer.span("op.conv", phase=obs.current_phase()):
            pass
    handle = tracer.begin("engine.epoch", epoch=0)
    tracer.end(handle, loss=1.5)
    tracer.record("pipe.fw", obs.GP, 0.0, 2.0, track=1, micro=3)


class TestDeterminism:
    def test_injected_clock_traces_bit_identical(self, tmp_path):
        blobs = []
        for run in range(2):
            tracer = obs.Tracer(clock=_counting_clock())
            _record_workload(tracer)
            path = tmp_path / f"run{run}.jsonl"
            tracer.to_jsonl(path)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_chrome_export_bit_identical(self, tmp_path):
        blobs = []
        for run in range(2):
            tracer = obs.Tracer(clock=_counting_clock())
            _record_workload(tracer)
            path = tmp_path / f"run{run}.json"
            tracer.to_chrome(path)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]


class TestSpans:
    def test_span_nesting_and_phase_stack(self):
        tracer = obs.Tracer(clock=_counting_clock())
        assert obs.current_phase("none") == "none"
        with tracer.span("outer", phase=obs.BP):
            assert obs.current_phase() == "bp"
            with tracer.span("inner", phase=obs.COMM):
                assert obs.current_phase() == "comm"
            assert obs.current_phase() == "bp"
        assert obs.current_phase("none") == "none"
        # Inner closes first; both carry their own phase.
        assert [(s.name, s.phase) for s in tracer.spans] == [
            ("inner", "comm"),
            ("outer", "bp"),
        ]

    def test_begin_end_args_merge(self):
        tracer = obs.Tracer(clock=_counting_clock())
        handle = tracer.begin("engine.batch", phase=obs.GP, batch=2)
        tracer.end(handle, loss=0.5)
        (span,) = tracer.spans
        assert span.args == {"batch": 2, "loss": 0.5}
        assert span.duration == pytest.approx(0.25)

    def test_decorator(self):
        tracer = obs.Tracer(clock=_counting_clock())

        @tracer.trace("work", phase=obs.EVAL)
        def work(x):
            return x + 1

        assert work(1) == 2
        assert tracer.spans[0].name == "work"
        assert tracer.spans[0].phase == "eval"

    def test_bounded_buffer_drops_new_spans(self):
        tracer = obs.Tracer(clock=_counting_clock(), max_spans=2)
        for index in range(5):
            tracer.record(f"s{index}", obs.BP, 0.0, 1.0)
        assert [s.name for s in tracer.spans] == ["s0", "s1"]
        assert tracer.dropped == 3

    def test_phase_scope_maps_engine_phases(self):
        with obs.phase_scope(Phase.WARMUP):
            assert obs.current_phase() == "bp"  # warm-up is true backprop
        with obs.phase_scope(Phase.GP):
            assert obs.current_phase() == "gp"
        assert ENGINE_PHASE_TAGS["warmup"] == "bp"


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        tracer = obs.Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b") is _NULL_CONTEXT
        with tracer.span("a"):
            pass
        assert tracer.begin("a") is None
        tracer.end(None)  # no-op, no raise
        tracer.record("a", obs.BP, 0.0, 1.0)
        assert tracer.spans == []

    def test_null_tracer_cannot_enable(self):
        with pytest.raises(RuntimeError, match="set_tracer"):
            obs.NULL_TRACER.enable()

    def test_global_tracer_install_and_restore(self):
        tracer = obs.Tracer(clock=_counting_clock())
        previous = obs.set_tracer(tracer)
        try:
            assert obs.tracer() is tracer
        finally:
            assert obs.set_tracer(previous) is tracer
        assert obs.tracer() is previous


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = obs.Tracer(clock=_counting_clock())
        _record_workload(tracer)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        loaded = obs.load_jsonl(path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in tracer.spans]

    def test_chrome_trace_event_shape(self, tmp_path):
        tracer = obs.Tracer(clock=_counting_clock())
        _record_workload(tracer)
        path = tmp_path / "trace.json"
        tracer.to_chrome(path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        # The epoch span was begun without a phase -> "untagged" category.
        assert {e["cat"] for e in events} == {"bp", "gp", "untagged"}
        micro = [e for e in events if e["name"] == "pipe.fw"]
        assert micro[0]["tid"] == 1 and micro[0]["dur"] == pytest.approx(2e6)
        # Round trip back into spans.
        loaded = obs.spans_from_chrome(path)
        assert len(loaded) == len(tracer.spans)

    def test_phase_seconds_aggregation(self):
        tracer = obs.Tracer(clock=_counting_clock(step=1.0))
        with tracer.span("a", phase=obs.BP):
            pass
        tracer.record("b", obs.GP, 0.0, 3.0)
        assert tracer.phase_seconds() == {"bp": 1.0, "gp": 3.0}
