"""Bench: regenerate Fig 20 (speedup over GPipe/DAPPLE/Chimera)."""

from repro.experiments import fig20_pipeline
from repro.experiments.formats import geometric_mean
from repro.pipeline import PipelineKind

# Paper: up to 1.68x, avg 1.654x (GPipe/DAPPLE); up to 1.6x, avg 1.575x
# (Chimera).
PAPER_AVERAGES = {
    PipelineKind.GPIPE: 1.654,
    PipelineKind.DAPPLE: 1.654,
    PipelineKind.CHIMERA: 1.575,
}


def test_bench_fig20_all_pipelines(benchmark):
    def run():
        return {
            kind: fig20_pipeline.run_fig20(kind, epochs=90, batches_per_epoch=20)
            for kind in PipelineKind
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for kind, rows in results.items():
        print(fig20_pipeline.format_fig20(rows))
        print()
        gm = geometric_mean([r.max_ for r in rows])
        benchmark.extra_info[f"{kind.value}_max_geomean"] = round(gm, 3)
        assert abs(gm - PAPER_AVERAGES[kind]) < 0.12
