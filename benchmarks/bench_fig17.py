"""Bench: regenerate Fig 17 (speedups over the WS baseline, all models)."""

from repro.accel import DataflowKind
from repro.experiments import fig17_19_speedup
from repro.experiments.formats import geometric_mean


def test_bench_fig17_ws(benchmark):
    def run():
        return fig17_19_speedup.run_speedups(
            DataflowKind.WEIGHT_STATIONARY, epochs=90, batches_per_epoch=20
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig17_19_speedup.format_speedups(rows))
    assert len(rows) == 13 * 3
    for dataset in ("Cifar10", "Cifar100", "ImageNet"):
        subset = [r for r in rows if r.dataset == dataset]
        gm = geometric_mean([r.max_ for r in subset])
        benchmark.extra_info[f"{dataset}_max_geomean"] = round(gm, 3)
        # Paper: 1.46x / 1.46x / 1.48x averages, up to 1.51-1.58x.
        assert 1.35 < gm < 1.6
        assert max(r.max_ for r in subset) < 1.75
