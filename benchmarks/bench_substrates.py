"""Microbenchmarks of the substrates.

The headline software-side measurement is ``test_bench_gp_vs_bp_batch``:
a Phase-GP batch (forward + predicted updates) against a full backprop
batch on the same model — the wall-clock expression of the paper's
"skipping the backpropagation step" speedup, here in NumPy.
"""

import numpy as np
import pytest

from repro import nn
from repro.accel import AcceleratorModel, AdaGPDesign
from repro.core import AdaGPTrainer, BPTrainer, HeuristicSchedule
from repro.models import build_mini, spec_for
from repro.nn.backend import list_backends, native_available
from repro.nn.losses import CrossEntropyLoss
from repro.pipeline import PipelineConfig, simulate_chimera


def _backend_params():
    """Every registered backend; native skips where it cannot build."""
    params = []
    for name in list_backends():
        marks = []
        if name == "native" and not native_available():
            marks.append(pytest.mark.skip(reason="native extension unavailable"))
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(scope="module")
def image_batch():
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((32, 3, 16, 16)).astype(np.float32),
        rng.integers(0, 10, 32),
    )


@pytest.fixture(scope="module")
def vgg_model():
    return build_mini("VGG13", 10, rng=np.random.default_rng(1))


@pytest.mark.parametrize("backend", _backend_params())
def test_bench_conv_forward(benchmark, backend):
    conv = nn.Conv2d(32, 64, 3, padding=1, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((16, 32, 16, 16)).astype(np.float32)
    with nn.use_backend(backend):
        benchmark(conv.forward, x)


@pytest.mark.parametrize("backend", _backend_params())
def test_bench_conv_backward(benchmark, backend):
    conv = nn.Conv2d(32, 64, 3, padding=1, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((16, 32, 16, 16)).astype(np.float32)
    grad = conv.forward(x).copy()

    def run():
        conv.zero_grad()
        conv.forward(x)
        return conv.backward(grad)

    with nn.use_backend(backend):
        benchmark(run)


def test_bench_bp_batch(benchmark, vgg_model, image_batch):
    trainer = BPTrainer(vgg_model, CrossEntropyLoss(), lr=0.01)
    x, y = image_batch
    benchmark(trainer.train_batch, x, y)


def test_bench_gp_vs_bp_batch(benchmark, image_batch):
    """Phase-GP batch wall-clock; extra_info records the BP/GP ratio."""
    model = build_mini("VGG13", 10, rng=np.random.default_rng(2))
    trainer = AdaGPTrainer(
        model, CrossEntropyLoss(), lr=0.01,
        schedule=HeuristicSchedule(warmup_epochs=0),
    )
    x, y = image_batch
    trainer.train_batch_bp(x, y)  # warm the predictor scales

    import time

    t0 = time.perf_counter()
    trainer.train_batch_bp(x, y)
    bp_time = time.perf_counter() - t0
    result = benchmark(trainer.train_batch_gp, x, y)
    benchmark.extra_info["bp_batch_seconds"] = bp_time
    assert result is not None or result is None  # loss float


def test_bench_predictor_inference(benchmark, vgg_model):
    from repro.core import GradientPredictor

    layers = nn.predictable_layers(vgg_model)
    predictor = GradientPredictor.for_model(vgg_model)
    conv = layers[4]
    rng = np.random.default_rng(3)
    output = rng.standard_normal((32, conv.out_channels, 4, 4)).astype(np.float32)
    benchmark(predictor.predict, conv, output)


def test_bench_accel_speedup_model(benchmark):
    spec = spec_for("ResNet50", "ImageNet")
    accelerator = AcceleratorModel()

    def run():
        return accelerator.speedup(
            spec, AdaGPDesign.MAX, HeuristicSchedule(), 90, 20
        )

    speedup = benchmark(run)
    assert 1.3 < speedup < 1.7


def test_bench_chimera_schedule(benchmark):
    cfg = PipelineConfig(4, 4)
    timeline = benchmark(simulate_chimera, cfg, 1.0, 2.0)
    assert timeline.makespan == 16
