"""Bench: regenerate Fig 21 (memory-access energy comparison)."""

from repro.experiments import fig21_energy
from repro.experiments.formats import geometric_mean


def test_bench_fig21(benchmark):
    def run():
        return fig21_energy.run_fig21(epochs=90, batches_per_epoch=20)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig21_energy.format_fig21(rows))
    assert len(rows) == 13
    mean_saving = 1.0 - geometric_mean(
        [r.efficient_mj / r.baseline_mj for r in rows]
    )
    benchmark.extra_info["mean_saving"] = round(mean_saving, 3)
    # Paper: ~34% average reduction.
    assert 0.25 < mean_saving < 0.45
