"""Bench: regenerate Table 1 (accuracy, BP vs ADA-GP) at reduced scale.

The full 13-model x 3-dataset table is produced by
``examples/table1_accuracy.py`` / ``python -m repro.experiments.runner``;
this bench times a representative 2-model column and checks the parity
claim.
"""

from repro.experiments import table1_accuracy

# Fast-converging representatives; the full 13-model table is
# examples/table1_accuracy.py (ResNet minis need ~24 epochs).
MODELS = ["VGG13", "DenseNet121"]


def test_bench_table1_reduced(benchmark):
    def run():
        return table1_accuracy.run_table1(
            models=MODELS, datasets=["Cifar10"], epochs=16,
            num_train=192, num_val=96,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table1_accuracy.format_table1(rows))
    for row in rows:
        benchmark.extra_info[f"{row.model}_bp"] = row.bp_accuracy
        benchmark.extra_info[f"{row.model}_adagp"] = row.adagp_accuracy
        # Qualitative parity at *reduced* scale (16 epochs, 6 batches
        # per epoch): ADA-GP must be far above chance and within the BP
        # band; the tight comparison is the full-scale table
        # (EXPERIMENTS.md), where post-warm-up epochs contain enough
        # true-gradient batches.
        assert row.adagp_accuracy > 50.0
        assert row.bp_accuracy > 40.0
