"""Bench: regenerate Table 4 (FPGA resources + power) and the
equal-power study of §6.6.1."""

from repro.experiments import table4_5_hardware


def test_bench_table4(benchmark):
    def run():
        return (
            table4_5_hardware.format_table4a(),
            table4_5_hardware.format_table4b(),
            table4_5_hardware.run_equal_resource_study(extra_pe_fraction=0.10),
        )

    table_a, table_b, study = benchmark(run)
    print()
    print(table_a)
    print()
    print(table_b)
    print()
    print(table4_5_hardware.format_equal_resource(study))
    # Paper values present by construction of the component library.
    assert "472004" in table_a
    assert "3.856" in table_b
    for row in study:
        assert row.adagp_max_gain > row.baseline_gain
