"""Machine-readable benchmark records (``BENCH_*.json`` at the repo root).

Every benchmark test calls :func:`record` with a section name and a
payload of timings/speedups; sections merge into one JSON file per
benchmark module so the perf trajectory is diffable across PRs and CI
runs can archive it as an artifact.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Optional

from repro.obs.snapshots import throughput_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent


def record(
    filename: str,
    section: str,
    payload: dict,
    workers: Optional[int] = None,
    throughput=None,
) -> Path:
    """Merge ``payload`` under ``section`` into ``REPO_ROOT/filename``.

    Every record stamps uniform environment metadata (python, machine,
    ``cores``, ``hostname``) under ``meta`` so any two ``BENCH_*.json``
    files are comparable at a glance.  Benchmarks that fan out pass
    ``workers=`` and the count lands in the section payload — parallel
    speedup numbers are meaningless without it.

    ``throughput=`` takes a ``ThroughputTimer`` (or an already-built
    ``repro.obs`` throughput snapshot dict) and embeds the *canonical*
    per-phase aggregation under ``payload["throughput"]`` — the same
    dict ``ThroughputTimer.summary`` and the experiment runners format,
    so a ``BENCH_*.json`` number can never disagree with the engine's
    own report.
    """
    path = REPO_ROOT / filename
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            data = {}
    meta = data.setdefault("meta", {})
    meta["python"] = platform.python_version()
    meta["machine"] = platform.machine()
    meta["cores"] = os.cpu_count() or 1
    meta["hostname"] = platform.node()
    if workers is not None:
        payload = {**payload, "workers": int(workers)}
    if throughput is not None:
        snapshot = (
            throughput
            if isinstance(throughput, dict)
            else throughput_snapshot(throughput)
        )
        payload = {**payload, "throughput": snapshot}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
