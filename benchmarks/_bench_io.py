"""Machine-readable benchmark records (``BENCH_*.json`` at the repo root).

Every benchmark test calls :func:`record` with a section name and a
payload of timings/speedups; sections merge into one JSON file per
benchmark module so the perf trajectory is diffable across PRs and CI
runs can archive it as an artifact.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def record(filename: str, section: str, payload: dict) -> Path:
    """Merge ``payload`` under ``section`` into ``REPO_ROOT/filename``."""
    path = REPO_ROOT / filename
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            data = {}
    data.setdefault("meta", {})["python"] = platform.python_version()
    data["meta"]["machine"] = platform.machine()
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
