"""Bench: the tune subsystem's parallel trial runner.

Runs the same tiny 6-trial random search twice — serially and on a
4-worker process pool — and records both wall times, trial rates and
the parallel speedup into ``BENCH_tune.json``.  The trials themselves
are deterministic, so the two runs do identical work and the ratio is a
clean measurement of the runner's process-pool scaling.

Gate (blocking in CI, where runners have >= 4 cores): parallel must be
>= 1.5x serial on 4 workers.  Six ~seconds-long trials over 4 workers
schedule as two waves, so the ideal is ~3x and 1.5x leaves margin for
pool start-up and core contention; on machines with fewer than 4 cores
the gate is recorded but skipped (process parallelism cannot beat the
physical core count).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_tune.py -q
"""

import os
import time

import pytest

from _bench_io import record
from repro.tune import Grid, LogUniform, RandomSearch, SearchRunner, SearchSpace

MIN_PARALLEL_SPEEDUP = 1.5
NUM_TRIALS = 6
WORKERS = 4

#: Small enough that 12 trial runs stay benchmark-scale, big enough that
#: one trial (~seconds) dwarfs process-pool start-up.
TRIAL_PARAMS = dict(
    model="VGG13", dataset="Cifar10", num_train=128, num_val=64,
    batch_size=32, epochs=4, lr=0.02,
)


def _search():
    space = SearchSpace(
        {
            "kind": "adaptive",
            "threshold_scale": LogUniform(1.0, 30.0),
            "warmup_epochs": Grid(1, 2),
        }
    )
    return RandomSearch(space, num_trials=NUM_TRIALS, seed=0, **TRIAL_PARAMS)


def test_bench_parallel_runner_gate(benchmark):
    search = _search()
    specs = search.specs()

    # Warm the trial path once (BLAS planning, template caches) so the
    # serial measurement doesn't carry one-time costs the pooled workers
    # would each pay anyway.
    SearchRunner().run(specs[:1])

    times: dict[str, float] = {}

    def measure():
        for name, workers in (("serial", 1), ("parallel", WORKERS)):
            runner = SearchRunner(workers=workers)
            start = time.perf_counter()
            results = runner.run(specs)
            times[name] = time.perf_counter() - start
            assert all(r.status == "ok" for r in results)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = times["serial"] / times["parallel"]
    cores = os.cpu_count() or 1
    benchmark.extra_info["serial_s"] = times["serial"]
    benchmark.extra_info["parallel_s"] = times["parallel"]
    benchmark.extra_info["speedup"] = speedup
    record(
        "BENCH_tune.json",
        "parallel_runner",
        {
            "model": "VGG13-mini",
            "num_trials": NUM_TRIALS,
            "serial_s": times["serial"],
            "parallel_s": times["parallel"],
            "serial_trials_per_s": NUM_TRIALS / times["serial"],
            "parallel_trials_per_s": NUM_TRIALS / times["parallel"],
            "speedup": speedup,
            "gate": MIN_PARALLEL_SPEEDUP,
            "gate_enforced": cores >= WORKERS,
        },
        workers=WORKERS,
    )
    print(
        f"\n{NUM_TRIALS}-trial search: serial {times['serial']:.2f} s, "
        f"{WORKERS}-worker {times['parallel']:.2f} s ({speedup:.2f}x, "
        f"{cores} cores)"
    )
    if cores < WORKERS:
        pytest.skip(
            f"only {cores} core(s): {WORKERS}-process parallelism cannot "
            f"reach the {MIN_PARALLEL_SPEEDUP}x gate (recorded, not enforced)"
        )
    assert speedup >= MIN_PARALLEL_SPEEDUP


def test_bench_journal_overhead(benchmark, tmp_path):
    """Journaling must be cheap: a journaled serial run vs a bare one.

    Also re-checks the resume contract under benchmark conditions — the
    second journaled run executes zero trials.
    """
    search = _search()
    specs = search.specs()
    SearchRunner().run(specs[:1])  # warm

    journal = tmp_path / "bench.jsonl"
    timings: dict[str, float] = {}

    def measure():
        start = time.perf_counter()
        SearchRunner().run(specs)
        timings["bare"] = time.perf_counter() - start
        runner = SearchRunner(journal=journal)
        start = time.perf_counter()
        runner.run(specs)
        timings["journaled"] = time.perf_counter() - start
        assert runner.executed == NUM_TRIALS
        resumed = SearchRunner(journal=journal)
        start = time.perf_counter()
        resumed.run(specs)
        timings["resumed"] = time.perf_counter() - start
        assert resumed.executed == 0

    benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = timings["journaled"] / timings["bare"] - 1.0
    record(
        "BENCH_tune.json",
        "journal",
        {
            "bare_s": timings["bare"],
            "journaled_s": timings["journaled"],
            "resumed_s": timings["resumed"],
            "overhead_fraction": overhead,
        },
    )
    print(
        f"\njournal overhead: bare {timings['bare']:.2f} s, journaled "
        f"{timings['journaled']:.2f} s (+{overhead:.1%}); resume "
        f"{timings['resumed']:.3f} s for {NUM_TRIALS} cached trials"
    )
    # Resume must be orders of magnitude faster than re-running.
    assert timings["resumed"] < timings["bare"] / 5
