"""Bench: TrainingEngine throughput and the backend/predictor fast paths.

Three measurements seed the perf trajectory of the engine refactor, all
recorded into ``BENCH_engine.json`` for cross-PR tracking:

1. **Batched vs per-layer predictor updates** — the BP-phase hot path.
   ``GradientPredictor.train_step_many`` stacks all layers' pooled
   activations into one trunk forward/backward; on a ResNet-style spec
   (18 predictable layers) it must be >= 1.5x faster than the
   sequential per-layer loop it replaced (typically ~2.4x here).
2. **BP-phase vs GP-phase batches/sec** through the engine — Phase GP
   skips the whole backward pass, so its software rate must beat the
   BP-phase rate even in NumPy, mirroring the accelerator-model claim.
3. **FusedBackend vs NumpyBackend** on a full ResNet50-mini BP batch —
   the blocking CI gate of the backend refactor (>= 1.3x; both numbers
   come from the same process, so machine noise largely cancels).
4. **GP-stream fast path** (``BENCH_gp.json``) — one full BP training
   step vs a hooked-GP step vs a batched-GP step, all no-grad on the
   fused backend, plus workspace-pool counters as the peak-allocation
   proxy.  Blocking CI gate: the batched no-grad GP step must be
   >= 1.5x faster than the BP step (the paper's Phase-GP asymmetry,
   measured rather than simulated); the hooked §3.4-faithful step must
   still beat BP outright while paying the per-layer predictor alpha
   per invocation.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q
"""

import time

import numpy as np

from _bench_io import record
from repro import nn
from repro.obs.snapshots import rate, throughput_snapshot
from repro.core import (
    GradientPredictor,
    HeuristicSchedule,
    Phase,
    ThroughputTimer,
    adagp_engine,
)
from repro.data import synthetic_images
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss

MIN_BATCHED_SPEEDUP = 1.5
MIN_FUSED_SPEEDUP = 1.3
MIN_GP_STREAM_SPEEDUP = 1.5


def _resnet_entries(seed=0):
    """(layer, activation, weight_grad, bias_grad) from one real backprop
    batch of the ResNet50 mini — the predictor's actual training input."""
    model = build_mini("ResNet50", 10, rng=np.random.default_rng(seed + 1))
    layers = nn.predictable_layers(model)
    activations = {}

    def hook(layer, output):
        activations[id(layer)] = output

    for layer in layers:
        layer.forward_hook = hook
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((16, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, 16)
    try:
        outputs = model(x)
    finally:
        for layer in layers:
            layer.forward_hook = None
    _, grad = CrossEntropyLoss()(outputs, y)
    model.zero_grad()
    model.backward(grad)
    entries = [
        (
            layer,
            activations[id(layer)],
            layer.weight.grad,
            layer.bias.grad if layer.bias is not None else None,
        )
        for layer in layers
    ]
    return model, entries


def test_bench_batched_predictor_fast_path(benchmark):
    model, entries = _resnet_entries()
    sequential = GradientPredictor.for_model(model, rng=np.random.default_rng(5))
    batched = GradientPredictor.for_model(model, rng=np.random.default_rng(5))
    layers = [e[0] for e in entries]
    outputs = [e[1] for e in entries]
    w_grads = [e[2] for e in entries]
    b_grads = [e[3] for e in entries]

    def run_sequential():
        for layer, output, w_grad, b_grad in entries:
            sequential.train_step(layer, output, w_grad, b_grad)

    def run_batched():
        batched.train_step_many(layers, outputs, w_grads, b_grads)

    # Warm both paths (scale estimates, BLAS planning) before timing.
    run_sequential()
    run_batched()
    rounds = 15
    start = time.perf_counter()
    for _ in range(rounds):
        run_sequential()
    sequential_s = (time.perf_counter() - start) / rounds

    benchmark.pedantic(run_batched, rounds=rounds, iterations=1)
    batched_s = benchmark.stats.stats.mean

    speedup = sequential_s / batched_s
    benchmark.extra_info["num_layers"] = len(entries)
    benchmark.extra_info["sequential_ms"] = sequential_s * 1e3
    benchmark.extra_info["batched_ms"] = batched_s * 1e3
    benchmark.extra_info["speedup"] = speedup
    record(
        "BENCH_engine.json",
        "batched_predictor",
        {
            "num_layers": len(entries),
            "sequential_ms": sequential_s * 1e3,
            "batched_ms": batched_s * 1e3,
            "speedup": speedup,
            "gate": MIN_BATCHED_SPEEDUP,
        },
    )
    print(
        f"\npredictor update, {len(entries)} ResNet50-mini layers: "
        f"sequential {sequential_s * 1e3:.2f} ms, batched {batched_s * 1e3:.2f} ms "
        f"({speedup:.2f}x)"
    )
    assert speedup >= MIN_BATCHED_SPEEDUP


def test_bench_engine_phase_rates(benchmark):
    """Batches/sec for BP-phase vs GP-phase batches through the engine."""
    split = synthetic_images(10, 96, 32, image_size=16, seed=0)
    timer = ThroughputTimer()
    engine = adagp_engine(
        build_mini("ResNet50", 10, rng=np.random.default_rng(1)),
        CrossEntropyLoss(),
        lr=0.05,
        schedule=HeuristicSchedule(warmup_epochs=1, ladder=((8, (2, 1)),)),
        callbacks=(timer,),
    )

    def run():
        return engine.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(2)),
            lambda: split.val.batches(32, shuffle=False),
            epochs=4,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    # One aggregation for everyone: rates come out of the canonical obs
    # snapshot, and the snapshot itself rides along in the record — the
    # bench numbers and the engine's own summary() share one source.
    snapshot = throughput_snapshot(timer)
    bp_rate = rate(snapshot, Phase.BP)
    warmup_rate = rate(snapshot, Phase.WARMUP)
    gp_rate = rate(snapshot, Phase.GP)
    benchmark.extra_info["bp_batches_per_s"] = bp_rate
    benchmark.extra_info["warmup_batches_per_s"] = warmup_rate
    benchmark.extra_info["gp_batches_per_s"] = gp_rate
    record(
        "BENCH_engine.json",
        "phase_rates",
        {
            "bp_batches_per_s": bp_rate,
            "warmup_batches_per_s": warmup_rate,
            "gp_batches_per_s": gp_rate,
            "gp_over_bp": gp_rate / bp_rate if bp_rate else float("nan"),
        },
        throughput=snapshot,
    )
    print(f"\n{timer.summary()}")
    # Skipping backward must pay off in software too.
    assert gp_rate > bp_rate


def test_bench_gp_stream_gate(benchmark):
    """No-grad Phase-GP steps vs a full BP training step (blocking gate).

    Three step kinds through the engine on ResNet50-mini, fused backend:

    * ``bp`` — plain backprop training batch (forward + loss grad + full
      backward + optimizer step), no predictor training: the §3.4
      baseline cost;
    * ``gp_hooked`` — Phase GP with per-layer predict hooks (paper
      semantics, predictor alpha paid per layer);
    * ``gp_batched`` — Phase GP with one stacked ``predict_many`` and a
      grouped optimizer apply after the no-grad forward.

    Gate: the batched no-grad GP step is >= 1.5x faster than the BP
    step, and the hooked step still beats BP outright.  Workspace-pool
    counters around a GP step are recorded as the peak-allocation proxy
    — a warm no-grad stream must run miss-free with zero outstanding
    checkouts.
    """
    from repro.core.engine.strategies import (
        BackpropStrategy,
        GradPredictStrategy,
    )
    from repro.nn.backend import backend_scope

    loss_fn = CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, 16)
    engine = adagp_engine(
        build_mini("ResNet50", 10, rng=np.random.default_rng(1)),
        loss_fn,
        lr=0.05,
        backend="fused",
    )
    # Plain BP (no predictor training) for the paper-faithful baseline.
    strategies = {
        "bp": BackpropStrategy(),
        "gp_hooked": GradPredictStrategy(),
        "gp_batched": GradPredictStrategy(batched_predict=True),
    }
    for strategy in strategies.values():
        strategy.bind(engine)

    pool = nn.get_backend("fused").pool

    def step(name, capture=None):
        phase = Phase.BP if name == "bp" else Phase.GP
        with backend_scope(engine.backend):
            strategies[name].train_batch(x, y, phase)
        if capture is not None:
            # Snapshot before clear_caches: clearing resets the pool's
            # hit/miss counters along with the model caches.
            capture.update(pool.stats())
        engine.model.clear_caches()

    # Warm every path (BLAS planning, workspace pool, predictor scales).
    for name in strategies:
        step(name)
        step(name)

    # Pool counters across one warm hooked-GP step: the peak-allocation
    # proxy.  A no-grad stream must be allocation-free (all workspace
    # acquisitions served by the pool) and leave nothing checked out.
    pool_stats: dict = {}
    step("gp_hooked", capture=pool_stats)

    # Per-variant blocks of rounds (a GP step mutates weights, so the
    # variants cannot share one model state trajectory anyway); each
    # block is short enough that machine drift between blocks stays
    # well inside the gate margin.
    rounds = 25
    times: dict[str, list[float]] = {name: [] for name in strategies}

    def measure():
        for name in strategies:
            for _ in range(rounds):
                start = time.perf_counter()
                step(name)
                times[name].append(time.perf_counter() - start)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    medians = {
        name: float(np.median(values)) for name, values in times.items()
    }
    hooked_speedup = medians["bp"] / medians["gp_hooked"]
    batched_speedup = medians["bp"] / medians["gp_batched"]
    benchmark.extra_info["bp_ms"] = medians["bp"] * 1e3
    benchmark.extra_info["gp_hooked_ms"] = medians["gp_hooked"] * 1e3
    benchmark.extra_info["gp_batched_ms"] = medians["gp_batched"] * 1e3
    benchmark.extra_info["batched_speedup"] = batched_speedup
    record(
        "BENCH_gp.json",
        "gp_stream",
        {
            "model": "ResNet50-mini",
            "batch": 16,
            "backend": "fused",
            "bp_step_ms": medians["bp"] * 1e3,
            "gp_hooked_step_ms": medians["gp_hooked"] * 1e3,
            "gp_batched_step_ms": medians["gp_batched"] * 1e3,
            "gp_hooked_speedup": hooked_speedup,
            "gp_batched_speedup": batched_speedup,
            "gate": MIN_GP_STREAM_SPEEDUP,
            "gp_step_pool": pool_stats,
        },
    )
    print(
        f"\nResNet50-mini steps: bp {medians['bp'] * 1e3:.2f} ms, "
        f"hooked gp {medians['gp_hooked'] * 1e3:.2f} ms "
        f"({hooked_speedup:.2f}x), batched gp "
        f"{medians['gp_batched'] * 1e3:.2f} ms ({batched_speedup:.2f}x); "
        f"gp-step pool {pool_stats}"
    )
    # The no-grad stream must be allocation-free once the pool is warm.
    assert pool_stats["misses"] == 0
    assert pool_stats["outstanding"] == 0
    # Skipping backward must beat the full BP step even with the
    # per-layer predictor alpha paid in software...
    assert hooked_speedup > 1.0
    # ...and the batched no-grad stream is the blocking 1.5x gate.
    assert batched_speedup >= MIN_GP_STREAM_SPEEDUP


def _time_op(fn, rounds=30):
    fn()  # warm (BLAS planning, workspace allocation, path caches)
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def _op_microbench():
    """Per-op NumPy-vs-Fused timings for the BENCH_engine.json record."""
    rng = np.random.default_rng(3)
    x_conv = rng.standard_normal((16, 32, 16, 16)).astype(np.float32)
    w3 = rng.standard_normal((32, 32, 3, 3)).astype(np.float32)
    w1 = rng.standard_normal((64, 32, 1, 1)).astype(np.float32)
    g3 = rng.standard_normal((16, 32, 16, 16)).astype(np.float32)
    x_lin = rng.standard_normal((256, 512)).astype(np.float32)
    w_lin = rng.standard_normal((128, 512)).astype(np.float32)
    q = rng.standard_normal((8, 4, 64, 32)).astype(np.float32)
    x_bn = rng.standard_normal((16, 64, 16, 16)).astype(np.float32)

    def ops_for(backend):
        def conv3x3():
            _, ctx = backend.conv2d_forward(x_conv, w3, None, 1, 1)
            backend.conv2d_backward(g3, w3, ctx)

        return {
            "conv3x3_fwd_bwd": conv3x3,
            "conv1x1_fwd": lambda: backend.conv2d_forward(x_conv, w1, None, 1, 0),
            "linear_fwd": lambda: backend.linear_forward(x_lin, w_lin, None),
            "attn_scores": lambda: backend.attn_scores(q, q),
            "bn_moments": lambda: backend.moments(x_bn, (0, 2, 3)),
        }

    timings = {}
    numpy_ops = ops_for(nn.get_backend("numpy"))
    fused_ops = ops_for(nn.get_backend("fused"))
    for name in numpy_ops:
        numpy_ms = _time_op(numpy_ops[name]) * 1e3
        fused_ms = _time_op(fused_ops[name]) * 1e3
        timings[name] = {
            "numpy_ms": numpy_ms,
            "fused_ms": fused_ms,
            "speedup": numpy_ms / fused_ms,
        }
    return timings


def test_bench_fused_backend_gate(benchmark):
    """FusedBackend must be >= 1.3x NumpyBackend on a ResNet50-mini BP
    batch (forward + loss + full backward) — the blocking CI gate of the
    backend refactor.  Both sides are measured in this process, so the
    ratio is stable on noisy runners."""
    loss_fn = CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, 16)
    models = {
        name: build_mini("ResNet50", 10, rng=np.random.default_rng(1))
        for name in ("numpy", "fused")
    }

    def bp_step(name):
        model = models[name]
        with nn.use_backend(name):
            outputs = model(x)
            _, grad = loss_fn(outputs, y)
            model.zero_grad()
            model.backward(grad)

    for name in models:  # warm both: BLAS planning, workspace pool fill
        bp_step(name)
        bp_step(name)

    # Interleave the two backends round-by-round and compare medians:
    # machine-load drift then hits both sides equally, keeping the ratio
    # stable on shared CI runners.
    rounds = 25
    times: dict[str, list[float]] = {"numpy": [], "fused": []}

    def measure():
        for _ in range(rounds):
            for name in ("numpy", "fused"):
                start = time.perf_counter()
                bp_step(name)
                times[name].append(time.perf_counter() - start)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    numpy_s = float(np.median(times["numpy"]))
    fused_s = float(np.median(times["fused"]))

    speedup = numpy_s / fused_s
    ops = _op_microbench()
    benchmark.extra_info["numpy_ms"] = numpy_s * 1e3
    benchmark.extra_info["fused_ms"] = fused_s * 1e3
    benchmark.extra_info["speedup"] = speedup
    record(
        "BENCH_engine.json",
        "fused_gate",
        {
            "model": "ResNet50-mini",
            "batch": 16,
            "numpy_step_ms": numpy_s * 1e3,
            "fused_step_ms": fused_s * 1e3,
            "speedup": speedup,
            "gate": MIN_FUSED_SPEEDUP,
            "ops": ops,
        },
    )
    print(
        f"\nResNet50-mini BP batch: numpy {numpy_s * 1e3:.2f} ms, "
        f"fused {fused_s * 1e3:.2f} ms ({speedup:.2f}x)"
    )
    assert speedup >= MIN_FUSED_SPEEDUP
