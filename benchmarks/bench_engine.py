"""Bench: TrainingEngine throughput and the batched predictor fast path.

Two measurements seed the perf trajectory of the engine refactor:

1. **Batched vs per-layer predictor updates** — the BP-phase hot path.
   ``GradientPredictor.train_step_many`` stacks all layers' pooled
   activations into one trunk forward/backward; on a ResNet-style spec
   (18 predictable layers) it must be >= 1.5x faster than the
   sequential per-layer loop it replaced (typically ~2.4x here).
2. **BP-phase vs GP-phase batches/sec** through the engine — Phase GP
   skips the whole backward pass, so its software rate must beat the
   BP-phase rate even in NumPy, mirroring the accelerator-model claim.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q
"""

import time

import numpy as np

from repro import nn
from repro.core import (
    GradientPredictor,
    HeuristicSchedule,
    Phase,
    ThroughputTimer,
    adagp_engine,
)
from repro.data import synthetic_images
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss

MIN_BATCHED_SPEEDUP = 1.5


def _resnet_entries(seed=0):
    """(layer, activation, weight_grad, bias_grad) from one real backprop
    batch of the ResNet50 mini — the predictor's actual training input."""
    model = build_mini("ResNet50", 10, rng=np.random.default_rng(seed + 1))
    layers = nn.predictable_layers(model)
    activations = {}

    def hook(layer, output):
        activations[id(layer)] = output

    for layer in layers:
        layer.forward_hook = hook
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((16, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, 16)
    try:
        outputs = model(x)
    finally:
        for layer in layers:
            layer.forward_hook = None
    _, grad = CrossEntropyLoss()(outputs, y)
    model.zero_grad()
    model.backward(grad)
    entries = [
        (
            layer,
            activations[id(layer)],
            layer.weight.grad,
            layer.bias.grad if layer.bias is not None else None,
        )
        for layer in layers
    ]
    return model, entries


def test_bench_batched_predictor_fast_path(benchmark):
    model, entries = _resnet_entries()
    sequential = GradientPredictor.for_model(model, rng=np.random.default_rng(5))
    batched = GradientPredictor.for_model(model, rng=np.random.default_rng(5))
    layers = [e[0] for e in entries]
    outputs = [e[1] for e in entries]
    w_grads = [e[2] for e in entries]
    b_grads = [e[3] for e in entries]

    def run_sequential():
        for layer, output, w_grad, b_grad in entries:
            sequential.train_step(layer, output, w_grad, b_grad)

    def run_batched():
        batched.train_step_many(layers, outputs, w_grads, b_grads)

    # Warm both paths (scale estimates, BLAS planning) before timing.
    run_sequential()
    run_batched()
    rounds = 15
    start = time.perf_counter()
    for _ in range(rounds):
        run_sequential()
    sequential_s = (time.perf_counter() - start) / rounds

    benchmark.pedantic(run_batched, rounds=rounds, iterations=1)
    batched_s = benchmark.stats.stats.mean

    speedup = sequential_s / batched_s
    benchmark.extra_info["num_layers"] = len(entries)
    benchmark.extra_info["sequential_ms"] = sequential_s * 1e3
    benchmark.extra_info["batched_ms"] = batched_s * 1e3
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\npredictor update, {len(entries)} ResNet50-mini layers: "
        f"sequential {sequential_s * 1e3:.2f} ms, batched {batched_s * 1e3:.2f} ms "
        f"({speedup:.2f}x)"
    )
    assert speedup >= MIN_BATCHED_SPEEDUP


def test_bench_engine_phase_rates(benchmark):
    """Batches/sec for BP-phase vs GP-phase batches through the engine."""
    split = synthetic_images(10, 96, 32, image_size=16, seed=0)
    timer = ThroughputTimer()
    engine = adagp_engine(
        build_mini("ResNet50", 10, rng=np.random.default_rng(1)),
        CrossEntropyLoss(),
        lr=0.05,
        schedule=HeuristicSchedule(warmup_epochs=1, ladder=((8, (2, 1)),)),
        callbacks=(timer,),
    )

    def run():
        return engine.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(2)),
            lambda: split.val.batches(32, shuffle=False),
            epochs=4,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    bp_rate = timer.batches_per_second(Phase.BP) + 0.0
    warmup_rate = timer.batches_per_second(Phase.WARMUP)
    gp_rate = timer.batches_per_second(Phase.GP)
    benchmark.extra_info["bp_batches_per_s"] = bp_rate
    benchmark.extra_info["warmup_batches_per_s"] = warmup_rate
    benchmark.extra_info["gp_batches_per_s"] = gp_rate
    print(f"\n{timer.summary()}")
    # Skipping backward must pay off in software too.
    assert gp_rate > bp_rate
