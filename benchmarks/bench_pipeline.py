"""Bench: measured pipeline-parallel speedups (the Fig 20 substrate).

Gates the executable pipeline engine's core claim: streaming Phase-GP
micro-batches across stage-partitioned virtual devices must beat
single-device execution of the same work.  The speedup is a ratio of
*measured* durations — the numerator (sum of slot times) and denominator
(virtual-clock makespan) come from the same run, so machine noise
largely cancels and the gate is stable even on shared CI runners.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -q
"""

import numpy as np
import pytest

from _bench_io import record
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss
from repro.pipeline import PipelineExecutor, PipelineKind

# Pipelining across 4 virtual devices is ideally 4x; > 1.0 is the hard
# acceptance gate (stage imbalance and fill/drain eat the rest).
MIN_GP_STREAM_SPEEDUP = 1.0

NUM_STAGES = 4
MICRO_BATCHES = 4
BATCH = 32


def _executor(kind: PipelineKind) -> PipelineExecutor:
    model = build_mini("ResNet50", 10, rng=np.random.default_rng(0))
    return PipelineExecutor.from_model(
        model,
        NUM_STAGES,
        input_shape=(3, 16, 16),
        micro_batches=MICRO_BATCHES,
        kind=kind,
    )


def test_gp_stream_beats_sequential():
    """Measured GP-stream makespan must beat sequential execution."""
    executor = _executor(PipelineKind.GPIPE)
    rng = np.random.default_rng(1)
    runs = [
        executor.run_gp_batch(
            rng.standard_normal((BATCH, 3, 16, 16)).astype(np.float32)
        )
        for _ in range(3)
    ]
    executor.validate()
    sequential = sum(run.compute_time for run in runs)
    speedup = sequential / executor.makespan
    record(
        "BENCH_pipeline.json",
        "gp_stream",
        {
            "num_stages": NUM_STAGES,
            "micro_batches": MICRO_BATCHES,
            "sequential_s": sequential,
            "makespan_s": executor.makespan,
            "speedup": speedup,
            "gate": MIN_GP_STREAM_SPEEDUP,
        },
    )
    print(f"\nGP-stream speedup over sequential: {speedup:.2f}x")
    assert speedup > MIN_GP_STREAM_SPEEDUP


@pytest.mark.parametrize("kind", [PipelineKind.GPIPE, PipelineKind.DAPPLE])
def test_bp_pipeline_beats_sequential(kind):
    """Even with flush bubbles, pipelined BP should beat one device."""
    executor = _executor(kind)
    rng = np.random.default_rng(2)
    loss_fn = CrossEntropyLoss()
    runs = []
    for _ in range(2):
        x = rng.standard_normal((BATCH, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 10, BATCH)
        runs.append(executor.run_bp_batch(x, y, loss_fn))
    executor.validate()
    sequential = sum(run.compute_time for run in runs)
    speedup = sequential / executor.makespan
    record(
        "BENCH_pipeline.json",
        f"bp_pipeline_{kind.value.lower()}",
        {
            "num_stages": NUM_STAGES,
            "micro_batches": MICRO_BATCHES,
            "sequential_s": sequential,
            "makespan_s": executor.makespan,
            "speedup": speedup,
            "gate": MIN_GP_STREAM_SPEEDUP,
        },
    )
    print(f"\n{kind.value} BP pipeline speedup over sequential: {speedup:.2f}x")
    assert speedup > MIN_GP_STREAM_SPEEDUP
