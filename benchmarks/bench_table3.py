"""Bench: regenerate Table 3 (YOLO detector class acc / mAP / cycles)."""

import pytest

from repro.experiments import table3_yolo


def test_bench_table3_reduced(benchmark):
    def run():
        return table3_yolo.run_table3(epochs=20, num_images=160)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table3_yolo.format_table3(rows))
    base, eff, max_ = rows
    # Cycle ratios match the paper's 1.17x / 1.26x.
    assert base.cycles_e9 / eff.cycles_e9 == pytest.approx(1.176, abs=0.02)
    assert base.cycles_e9 / max_.cycles_e9 == pytest.approx(1.261, abs=0.02)
    # Detection quality: both methods detect well above chance.
    assert base.class_accuracy > 50.0
    assert eff.class_accuracy > 50.0
    benchmark.extra_info["eff_ratio"] = round(base.cycles_e9 / eff.cycles_e9, 3)
    benchmark.extra_info["max_ratio"] = round(base.cycles_e9 / max_.cycles_e9, 3)
