"""Bench: regenerate Fig 16 (VGG13 per-layer cycle characterization)."""

from repro.experiments import fig16_characterization


def test_bench_fig16(benchmark):
    rows = benchmark(fig16_characterization.run_fig16)
    print()
    print(fig16_characterization.format_fig16(rows))
    assert len(rows) == 10
    for row in rows:
        # Paper figure shape: the ADA-GP stack is below the baseline bar
        # for every layer.
        assert row.adagp_total < row.baseline_cycles
    ratios = [r.baseline_cycles / r.adagp_total for r in rows]
    benchmark.extra_info["per_layer_ratio_range"] = (
        f"{min(ratios):.2f}-{max(ratios):.2f}"
    )
