"""Bench: regenerate Fig 15 (predictor MAPE/MSE per VGG13 layer)."""

from repro.experiments import fig15_predictor_error


def test_bench_fig15(benchmark):
    def run():
        return fig15_predictor_error.run_fig15(
            epochs=12, num_train=192, num_val=64
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig15_predictor_error.format_fig15(result, "mape"))
    print()
    print(fig15_predictor_error.format_fig15(result, "mse"))
    # Paper claim shape: MSE falls as training proceeds.
    for layer in (1, 2, 5):
        series = result.layer_mse(layer)
        assert series[-1] < series[0]
    benchmark.extra_info["layers"] = result.num_layers
