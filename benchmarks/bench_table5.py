"""Bench: regenerate Table 5 (ASIC area + power) and the equal-area
study of §6.6.1."""

from repro.experiments import table4_5_hardware


def test_bench_table5(benchmark):
    def run():
        return (
            table4_5_hardware.format_table5a(),
            table4_5_hardware.format_table5b(),
            table4_5_hardware.run_equal_resource_study(extra_pe_fraction=0.11),
        )

    table_a, table_b, study = benchmark(run)
    print()
    print(table_a)
    print()
    print(table_b)
    print()
    print(table4_5_hardware.format_equal_resource(study))
    assert "2982691" in table_a
    assert "3231136" in table_a
    for row in study:
        assert row.adagp_max_gain > row.baseline_gain
