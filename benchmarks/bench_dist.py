"""Bench: data-parallel training and AdaComp gradient compression.

Three records into ``BENCH_dist.json``:

1. **DDP scaling** — the same ADA-GP fit run serially and as
   ``ddp_engine(workers=2, transport="process")``.  Gate (blocking in
   CI where runners have >= 2 cores): the 2-worker run must be >=
   ``MIN_DDP_SPEEDUP``x serial.  On single-core machines process
   parallelism cannot beat the physical core count, so the ratio is
   recorded but the gate is skipped — the same
   recorded-but-not-enforced pattern as ``bench_native`` /
   ``bench_tune``.
2. **AdaComp compression** — always enforced, core-count independent:
   the measured steady-state compression ratio of
   :class:`~repro.dist.AdaCompCodec` on *real* ResNet50-mini BP
   gradients must clear ``MIN_ADACOMP_RATIO``x.  "Steady state" is the
   late window of a training run: AdaComp's residual-driven selection
   starts dense (first encode sends ~15% of elements — ``H == G`` makes
   ``|H|+|G| >= max|H|`` easy to satisfy) and thins out as residuals
   adapt, so the honest number — and the one the paper quotes — is the
   per-step ratio after warm-up, not the cumulative average that blends
   the cold start in.
3. **Recovery overhead** — the same fit run clean and under an injected
   kill-per-epoch chaos schedule (:class:`~repro.dist.ChaosTransport`
   over the local transport, so the number is 1-core-honest).  The
   bitwise faulted ≡ unfaulted assertion is *always* enforced — it is
   the correctness contract, not a perf property.  The wall-clock
   overhead gate follows the recorded-but-not-enforced pattern below 2
   cores, where timer noise on a saturated box dominates the signal.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_dist.py -q
"""

import os
import time

import numpy as np
import pytest

from _bench_io import record
from repro.core import bp_engine
from repro.data import synthetic_images
from repro.dist import (
    AdaCompCodec,
    ChaosTransport,
    Fault,
    ddp_engine,
    dp_strategy,
    shutdown,
)
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss, accuracy

MIN_DDP_SPEEDUP = 1.2
MIN_ADACOMP_RATIO = 40.0
WORKERS = 2

#: Ceiling on the chaos run's relative wall-clock cost: a kill-per-epoch
#: schedule (3 rebuilds over a 3-epoch fit) may at most double the fit.
MAX_RECOVERY_OVERHEAD = 1.0

#: AdaComp bin size for the compression gate — the compress-hard end of
#: the paper's range.  The ratio scales ~T/k for k sends per bin; on
#: ResNet50-mini BP gradients the measured steady-state here is ~44x
#: (T=1024 gives ~42x, T=4096 ~45x — the sweep lives in EXPERIMENTS.md).
ADACOMP_BIN = 2048
ADACOMP_STEPS = 60
ADACOMP_LATE_WINDOW = 10


def _split(seed=0):
    return synthetic_images(10, 128, 32, image_size=16, seed=seed)


def test_bench_ddp_scaling_gate(benchmark):
    """2-worker process-transport ADA-GP fit vs the serial fit."""
    from repro.core import HeuristicSchedule, adagp_engine

    split = _split()

    def model():
        return build_mini("VGG13", 10, rng=np.random.default_rng(1))

    def schedule():
        return HeuristicSchedule(warmup_epochs=1, ladder=((2, (1, 1)),))

    def train_fn():
        return split.train.batches(16, rng=np.random.default_rng(2))

    def val_fn():
        return split.val.batches(16)

    times: dict[str, float] = {}

    def measure():
        serial = adagp_engine(
            model(), CrossEntropyLoss(), lr=0.05, metric_fn=accuracy,
            schedule=schedule(),
        )
        start = time.perf_counter()
        serial.fit(train_fn, val_fn, 3)
        times["serial"] = time.perf_counter() - start

        ddp = ddp_engine(
            model(), CrossEntropyLoss(), workers=WORKERS,
            transport="process", lr=0.05, metric_fn=accuracy,
            schedule=schedule(),
        )
        start = time.perf_counter()
        ddp.fit(train_fn, val_fn, 3)
        times["ddp"] = time.perf_counter() - start
        shutdown(ddp)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = times["serial"] / times["ddp"]
    cores = os.cpu_count() or 1
    benchmark.extra_info["serial_s"] = times["serial"]
    benchmark.extra_info["ddp_s"] = times["ddp"]
    benchmark.extra_info["speedup"] = speedup
    record(
        "BENCH_dist.json",
        "ddp_scaling",
        {
            "model": "VGG13-mini",
            "epochs": 3,
            "transport": "process",
            "serial_s": times["serial"],
            "ddp_s": times["ddp"],
            "speedup": speedup,
            "gate": MIN_DDP_SPEEDUP,
            "gate_enforced": cores >= WORKERS,
        },
        workers=WORKERS,
    )
    print(
        f"\nADA-GP fit: serial {times['serial']:.2f} s, {WORKERS}-worker "
        f"{times['ddp']:.2f} s ({speedup:.2f}x, {cores} cores)"
    )
    if cores < WORKERS:
        pytest.skip(
            f"only {cores} core(s): {WORKERS}-process data parallelism "
            f"cannot reach the {MIN_DDP_SPEEDUP}x gate (recorded, not "
            "enforced)"
        )
    assert speedup >= MIN_DDP_SPEEDUP


def test_bench_adacomp_compression_gate(benchmark):
    """Steady-state AdaComp ratio on real ResNet50-mini BP gradients."""
    model = build_mini("ResNet50", 10, rng=np.random.default_rng(1))
    engine = bp_engine(model, CrossEntropyLoss(), lr=0.05, backend="fused")
    split = synthetic_images(10, 64, 16, image_size=32, seed=0)
    codec = AdaCompCodec(bin_size=ADACOMP_BIN)

    step_ratios: list[float] = []

    def measure():
        batches = iter([])
        for _ in range(ADACOMP_STEPS):
            try:
                inputs, targets = next(batches)
            except StopIteration:
                batches = split.train.batches(16, rng=np.random.default_rng(3))
                inputs, targets = next(batches)
            engine.train_batch(inputs, targets)
            wire = dense = 0
            for key, param in enumerate(engine.optimizer.parameters):
                if param.grad is None:
                    continue
                enc = codec.encode(key, param.grad)
                wire += enc.wire_bytes
                dense += enc.dense_bytes
            step_ratios.append(dense / wire)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    late = step_ratios[-ADACOMP_LATE_WINDOW:]
    steady_ratio = float(np.mean(late))
    benchmark.extra_info["steady_ratio"] = steady_ratio
    benchmark.extra_info["first_step_ratio"] = step_ratios[0]
    record(
        "BENCH_dist.json",
        "adacomp_compression",
        {
            "model": "ResNet50-mini",
            "batch": 16,
            "bin_size": ADACOMP_BIN,
            "steps": ADACOMP_STEPS,
            "late_window": ADACOMP_LATE_WINDOW,
            "first_step_ratio": step_ratios[0],
            "final_step_ratio": step_ratios[-1],
            "steady_ratio": steady_ratio,
            "gate": MIN_ADACOMP_RATIO,
            "gate_enforced": True,
        },
    )
    print(
        f"\nAdaComp T={ADACOMP_BIN} on ResNet50-mini BP grads: "
        f"step 0 {step_ratios[0]:.1f}x -> steady "
        f"{steady_ratio:.1f}x (last {ADACOMP_LATE_WINDOW} of "
        f"{ADACOMP_STEPS} steps)"
    )
    assert steady_ratio >= MIN_ADACOMP_RATIO


def test_bench_recovery_overhead_gate(benchmark):
    """Kill-per-epoch chaos fit vs the clean fit: bitwise identical
    always; wall-clock overhead gated where timing is meaningful."""
    import pickle

    from repro.core import HeuristicSchedule

    split = _split()

    def model():
        return build_mini("VGG13", 10, rng=np.random.default_rng(1))

    def run(transport):
        engine = ddp_engine(
            model(), CrossEntropyLoss(), workers=WORKERS,
            transport=transport, lr=0.05, metric_fn=accuracy,
            schedule=HeuristicSchedule(warmup_epochs=1, ladder=((2, (1, 1)),)),
            retry_backoff=0.0,
        )
        start = time.perf_counter()
        history = engine.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(2)),
            lambda: split.val.batches(16),
            3,
        )
        elapsed = time.perf_counter() - start
        state = pickle.dumps(engine.state_dict())
        totals = dp_strategy(engine).comm.totals()
        shutdown(engine)
        return history, state, elapsed, totals

    results: dict[str, tuple] = {}

    def measure():
        results["clean"] = run("local")
        results["chaos"] = run(
            ChaosTransport(
                "local",
                faults=[Fault("kill", rank=1, op="compute", nth=n) for n in (0, 6, 12)],
            )
        )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    h_clean, s_clean, clean_s, _ = results["clean"]
    h_chaos, s_chaos, chaos_s, totals = results["chaos"]
    overhead = chaos_s / clean_s - 1.0
    cores = os.cpu_count() or 1
    benchmark.extra_info["clean_s"] = clean_s
    benchmark.extra_info["chaos_s"] = chaos_s
    benchmark.extra_info["overhead"] = overhead
    bitwise = h_clean == h_chaos and s_clean == s_chaos
    record(
        "BENCH_dist.json",
        "recovery_overhead",
        {
            "model": "VGG13-mini",
            "epochs": 3,
            "transport": "chaos(local)",
            "kills_injected": 3,
            "clean_s": clean_s,
            "chaos_s": chaos_s,
            "overhead": overhead,
            "rebuilds": totals["rebuilds"],
            "recovery_s": totals["recovery_s"],
            "recovery_bytes": totals["recovery_bytes"],
            "bitwise_identical": bitwise,
            "gate": MAX_RECOVERY_OVERHEAD,
            "gate_enforced": cores >= WORKERS,
        },
        workers=WORKERS,
    )
    print(
        f"\nRecovery: clean {clean_s:.2f} s, 3-kill chaos {chaos_s:.2f} s "
        f"(+{overhead * 100:.0f}%, {totals['rebuilds']:.0f} rebuilds, "
        f"{totals['recovery_bytes'] / 1e6:.1f} MB re-sync)"
    )
    # The correctness half of the record is unconditional: recovery that
    # changes a bit is a wrong answer delivered slowly.
    assert bitwise
    assert totals["rebuilds"] >= 3
    if cores < WORKERS:
        pytest.skip(
            f"only {cores} core(s): wall-clock overhead recorded, gate "
            "not enforced"
        )
    assert overhead <= MAX_RECOVERY_OVERHEAD
