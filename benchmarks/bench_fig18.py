"""Bench: regenerate Fig 18 (speedups over the RS baseline, all models)."""

from repro.accel import DataflowKind
from repro.experiments import fig17_19_speedup
from repro.experiments.formats import geometric_mean


def test_bench_fig18_rs(benchmark):
    def run():
        return fig17_19_speedup.run_speedups(
            DataflowKind.ROW_STATIONARY, epochs=90, batches_per_epoch=20
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig17_19_speedup.format_speedups(rows))
    for dataset in ("Cifar10", "Cifar100", "ImageNet"):
        subset = [r for r in rows if r.dataset == dataset]
        gm = geometric_mean([r.max_ for r in subset])
        benchmark.extra_info[f"{dataset}_max_geomean"] = round(gm, 3)
        # Paper: ~1.46-1.47x averages on RS.
        assert 1.3 < gm < 1.6
