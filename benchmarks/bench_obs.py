"""Bench: observability overhead on a real ADA-GP fit (blocking gate).

One ResNet50-mini BP+GP fit (fused backend), four instrumentation
levels measured in the same process with interleaved rounds so machine
drift hits every level equally:

* ``baseline`` — no obs attached: the null global tracer, no callbacks
  (the engine still pushes its unconditional phase scope — that cost is
  part of every run and therefore part of the baseline);
* ``disabled`` — the full obs stack attached but the tracer switched
  off: ``TracingCallback`` + ``MetricsCallback`` on the callback list,
  a disabled ``Tracer`` installed globally (every seam branches on
  ``tracer.enabled`` and takes the shared-null-context path);
* ``enabled`` — the same stack with tracing on: spans buffered per
  fit/epoch/batch/eval, ledgers bridged at epoch boundaries;
* ``profiled`` — ``enabled`` plus a ``ProfilingBackend`` timing the
  hot ops at its documented low-overhead decimation
  (``sample_every=4`` — counts are scaled back, so totals stay
  unbiased; ``sample_every=1`` times every op and costs ~5% here, the
  price of the full Fig-15 table).

Blocking CI gate (the ISSUE 10 acceptance bar): disabled <= 2% and
enabled <= 5% median wall overhead over baseline; the sampled profiler
must also stay inside the enabled budget.  Emits ``BENCH_obs.json``.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q
"""

import time

import numpy as np

from _bench_io import record
from repro import obs
from repro.core import HeuristicSchedule, adagp_engine
from repro.data import synthetic_images
from repro.models import build_mini
from repro.nn.backend import FusedBackend
from repro.nn.losses import CrossEntropyLoss, accuracy

MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.05
PROFILER_SAMPLE_EVERY = 4

LEVELS = ("baseline", "disabled", "enabled", "profiled")


def _fit_once(level):
    """One full adagp fit at the given instrumentation level; returns
    (wall_seconds, span_count).  Model/engine construction happens
    outside the timed region; every level runs bit-identical work."""
    split = synthetic_images(10, 48, 32, image_size=16, seed=0)
    schedule = HeuristicSchedule(warmup_epochs=1, ladder=((4, (2, 1)),))
    backend = FusedBackend()
    callbacks = []
    tracer = None
    if level != "baseline":
        tracer = obs.Tracer(enabled=(level != "disabled"))
        registry = obs.MetricsRegistry()
        callbacks = [obs.TracingCallback(tracer), obs.MetricsCallback(registry)]
        if level == "profiled":
            backend = obs.ProfilingBackend(
                backend, registry=registry, sample_every=PROFILER_SAMPLE_EVERY
            )
    engine = adagp_engine(
        build_mini("ResNet50", 10, rng=np.random.default_rng(1)),
        CrossEntropyLoss(),
        lr=0.05,
        metric_fn=accuracy,
        schedule=schedule,
        backend=backend,
        callbacks=callbacks,
    )

    def fit():
        return engine.fit(
            lambda: split.train.batches(16, rng=np.random.default_rng(2)),
            lambda: split.val.batches(32, shuffle=False),
            epochs=3,
        )

    previous = obs.set_tracer(tracer) if tracer is not None else None
    try:
        start = time.perf_counter()
        fit()
        elapsed = time.perf_counter() - start
    finally:
        if tracer is not None:
            obs.set_tracer(previous)
    return elapsed, len(tracer.spans) if tracer is not None else 0


def test_bench_obs_overhead_gate(benchmark):
    for level in LEVELS:  # warm: BLAS planning, workspace pools, caches
        _fit_once(level)

    rounds = 7
    times: dict[str, list[float]] = {level: [] for level in LEVELS}
    spans = {level: 0 for level in LEVELS}

    def measure():
        for _ in range(rounds):
            for level in LEVELS:
                elapsed, count = _fit_once(level)
                times[level].append(elapsed)
                spans[level] = count

    benchmark.pedantic(measure, rounds=1, iterations=1)
    medians = {level: float(np.median(times[level])) for level in LEVELS}
    overhead = {
        level: medians[level] / medians["baseline"] - 1.0
        for level in LEVELS[1:]
    }
    benchmark.extra_info["baseline_ms"] = medians["baseline"] * 1e3
    for level, value in overhead.items():
        benchmark.extra_info[f"{level}_overhead"] = value
    record(
        "BENCH_obs.json",
        "overhead",
        {
            "model": "ResNet50-mini",
            "batch": 16,
            "backend": "fused",
            "profiler_sample_every": PROFILER_SAMPLE_EVERY,
            **{f"{level}_fit_ms": medians[level] * 1e3 for level in LEVELS},
            **{f"{level}_overhead": overhead[level] for level in LEVELS[1:]},
            "enabled_spans_per_fit": spans["enabled"],
            "gate": {
                "disabled": MAX_DISABLED_OVERHEAD,
                "enabled": MAX_ENABLED_OVERHEAD,
            },
        },
    )
    print(
        f"\nResNet50-mini adagp fit: baseline {medians['baseline'] * 1e3:.1f} ms; "
        + ", ".join(
            f"{level} {medians[level] * 1e3:.1f} ms ({overhead[level]:+.1%})"
            for level in LEVELS[1:]
        )
        + f"; {spans['enabled']} spans/fit"
    )
    # The disabled stack must be near-free and the full stack cheap —
    # the acceptance bar that makes always-attached observability viable.
    assert overhead["disabled"] <= MAX_DISABLED_OVERHEAD
    assert overhead["enabled"] <= MAX_ENABLED_OVERHEAD
    assert overhead["profiled"] <= MAX_ENABLED_OVERHEAD
