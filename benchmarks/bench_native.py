"""Bench: the native compiled conv backend against the fused baseline.

Measures the hot conv3x3 forward+backward pair — the op the C kernels
were written for — interleaved round-by-round with the fused BLAS
backend (same protocol as the fused 1.3x gate: load drift hits both
sides equally, medians keep the ratio stable on shared runners), plus a
whole ResNet50-mini BP step and a per-op table, all recorded into
``BENCH_native.json``.

Gate (blocking in CI): native conv3x3 fwd+bwd must be >=
``MIN_NATIVE_CONV_SPEEDUP``x the fused backend.  The native kernels
parallelize over samples with OpenMP, so the gate is enforced only
where that parallelism exists — a compiler built the extension and the
machine has >= 2 cores; on single-core machines the ratio is recorded
but not enforced (kernel-vs-BLAS alone is near parity).  Every
measurement is preceded by an equivalence sanity check at bench shapes
(rtol/atol 1e-3 — float32 summation-order noise at these sizes; the
strict 1e-5 equivalence lives in tests/nn/test_backend.py at test
shapes).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_native.py -q
"""

import os
import time

import numpy as np
import pytest

from _bench_io import record
from repro import nn
from repro.models import build_mini
from repro.nn.backend import NativeBackend, native_available
from repro.nn.losses import CrossEntropyLoss

MIN_NATIVE_CONV_SPEEDUP = 2.0
BENCH_RTOL = 1e-3
BENCH_ATOL = 1e-3

pytestmark = pytest.mark.skipif(
    not native_available(),
    reason="native extension unavailable (no C compiler or build failed)",
)


def _gate_enforced() -> bool:
    return (os.cpu_count() or 1) >= 2


def _conv_inputs():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((16, 32, 16, 16)).astype(np.float32)
    w = rng.standard_normal((32, 32, 3, 3)).astype(np.float32)
    g = rng.standard_normal((16, 32, 16, 16)).astype(np.float32)
    return x, w, g


def _check_conv_equivalence(x, w, g):
    """Native fwd+bwd must match fused at bench shapes before timing."""
    results = {}
    for name in ("fused", "native"):
        backend = nn.get_backend(name)
        out, ctx = backend.conv2d_forward(x, w, None, 1, 1)
        grads = backend.conv2d_backward(g, w, ctx)
        results[name] = (out, *grads[:2])
    for got, want in zip(results["native"], results["fused"]):
        np.testing.assert_allclose(got, want, rtol=BENCH_RTOL, atol=BENCH_ATOL)


def test_bench_native_conv_gate(benchmark):
    """conv3x3 fwd+bwd: native vs fused, interleaved medians."""
    x, w, g = _conv_inputs()
    _check_conv_equivalence(x, w, g)

    def conv_step(name):
        backend = nn.get_backend(name)
        _, ctx = backend.conv2d_forward(x, w, None, 1, 1)
        backend.conv2d_backward(g, w, ctx)

    for name in ("fused", "native"):  # warm: pools, kernel dispatch
        conv_step(name)
        conv_step(name)

    rounds = 30
    times: dict[str, list[float]] = {"fused": [], "native": []}

    def measure():
        for _ in range(rounds):
            for name in ("fused", "native"):
                start = time.perf_counter()
                conv_step(name)
                times[name].append(time.perf_counter() - start)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    fused_s = float(np.median(times["fused"]))
    native_s = float(np.median(times["native"]))
    speedup = fused_s / native_s
    cores = os.cpu_count() or 1
    benchmark.extra_info["fused_ms"] = fused_s * 1e3
    benchmark.extra_info["native_ms"] = native_s * 1e3
    benchmark.extra_info["speedup"] = speedup
    record(
        "BENCH_native.json",
        "conv_gate",
        {
            "shape": "x(16,32,16,16) w(32,32,3,3) pad1",
            "fused_ms": fused_s * 1e3,
            "native_ms": native_s * 1e3,
            "speedup": speedup,
            "gate": MIN_NATIVE_CONV_SPEEDUP,
            "gate_enforced": _gate_enforced(),
        },
    )
    print(
        f"\nconv3x3 fwd+bwd: fused {fused_s * 1e3:.2f} ms, "
        f"native {native_s * 1e3:.2f} ms ({speedup:.2f}x, {cores} cores)"
    )
    if not _gate_enforced():
        pytest.skip(
            f"only {cores} core(s): the OpenMP sample loop cannot reach the "
            f"{MIN_NATIVE_CONV_SPEEDUP}x gate (recorded, not enforced)"
        )
    assert speedup >= MIN_NATIVE_CONV_SPEEDUP


def _per_op_table():
    """Per-op fused-vs-native timings for the BENCH_native.json record."""
    rng = np.random.default_rng(5)
    x_conv = rng.standard_normal((16, 32, 16, 16)).astype(np.float32)
    w3 = rng.standard_normal((32, 32, 3, 3)).astype(np.float32)
    g3 = rng.standard_normal((16, 32, 16, 16)).astype(np.float32)
    x_lin = rng.standard_normal((256, 512)).astype(np.float32)
    w_lin = rng.standard_normal((128, 512)).astype(np.float32)

    def ops_for(backend):
        def conv3x3():
            _, ctx = backend.conv2d_forward(x_conv, w3, None, 1, 1)
            backend.conv2d_backward(g3, w3, ctx)

        def conv3x3_fwd():
            out, ctx = backend.conv2d_forward(x_conv, w3, None, 1, 1)
            ctx.release()
            return out

        return {
            "conv3x3_fwd": conv3x3_fwd,
            "conv3x3_fwd_bwd": conv3x3,
            "linear_fwd": lambda: backend.linear_forward(x_lin, w_lin, None),
        }

    def time_op(fn, rounds=20):
        fn()  # warm
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        return (time.perf_counter() - start) / rounds

    timings = {}
    fused_ops = ops_for(nn.get_backend("fused"))
    native_ops = ops_for(nn.get_backend("native"))
    for name in fused_ops:
        fused_ms = time_op(fused_ops[name]) * 1e3
        native_ms = time_op(native_ops[name]) * 1e3
        timings[name] = {
            "fused_ms": fused_ms,
            "native_ms": native_ms,
            "speedup": fused_ms / native_ms,
        }

    # The opt-in C GEMM, timed for the record: this row is *why* linear
    # dispatch stays on BLAS by default.
    c_linear = NativeBackend()
    c_linear._c_linear = True
    timings["linear_fwd_c_kernel"] = {
        "fused_ms": timings["linear_fwd"]["fused_ms"],
        "native_ms": time_op(
            lambda: c_linear.linear_forward(x_lin, w_lin, None)
        ) * 1e3,
    }
    timings["linear_fwd_c_kernel"]["speedup"] = (
        timings["linear_fwd_c_kernel"]["fused_ms"]
        / timings["linear_fwd_c_kernel"]["native_ms"]
    )
    return timings


def test_bench_native_model_step(benchmark):
    """ResNet50-mini BP step on native vs fused (recorded, no gate —
    the whole-model ratio mixes ops the native backend inherits)."""
    loss_fn = CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, 16)
    models = {
        name: build_mini("ResNet50", 10, rng=np.random.default_rng(1))
        for name in ("fused", "native")
    }

    def bp_step(name):
        model = models[name]
        with nn.use_backend(name):
            outputs = model(x)
            _, grad = loss_fn(outputs, y)
            model.zero_grad()
            model.backward(grad)

    # Equivalence sanity at model scale before timing anything.
    outs = {}
    for name in models:
        with nn.use_backend(name):
            outs[name] = models[name](x)
    np.testing.assert_allclose(
        outs["native"], outs["fused"], rtol=BENCH_RTOL, atol=BENCH_ATOL
    )

    for name in models:  # warm
        bp_step(name)
        bp_step(name)

    rounds = 15
    times: dict[str, list[float]] = {"fused": [], "native": []}

    def measure():
        for _ in range(rounds):
            for name in ("fused", "native"):
                start = time.perf_counter()
                bp_step(name)
                times[name].append(time.perf_counter() - start)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    fused_s = float(np.median(times["fused"]))
    native_s = float(np.median(times["native"]))
    speedup = fused_s / native_s
    ops = _per_op_table()
    benchmark.extra_info["fused_ms"] = fused_s * 1e3
    benchmark.extra_info["native_ms"] = native_s * 1e3
    benchmark.extra_info["speedup"] = speedup
    record(
        "BENCH_native.json",
        "model_step",
        {
            "model": "ResNet50-mini",
            "batch": 16,
            "fused_step_ms": fused_s * 1e3,
            "native_step_ms": native_s * 1e3,
            "speedup": speedup,
            "ops": ops,
        },
    )
    print(
        f"\nResNet50-mini BP batch: fused {fused_s * 1e3:.2f} ms, "
        f"native {native_s * 1e3:.2f} ms ({speedup:.2f}x)"
    )
