"""Bench: regenerate Table 2 (Transformer accuracy/BLEU/cycles)."""

import pytest

from repro.experiments import table2_transformer


def test_bench_table2_reduced(benchmark):
    def run():
        return table2_transformer.run_table2(
            epochs=12, adagp_epochs=18, num_sentences=128
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table2_transformer.format_table2(rows))
    base, ada = rows
    # Cycle columns are full-scale and match the paper's 1.13x ratio.
    assert base.cycles_e9 == pytest.approx(1245.87, rel=0.15)
    assert base.cycles_e9 / ada.cycles_e9 == pytest.approx(1.13, abs=0.03)
    benchmark.extra_info["cycle_ratio"] = round(base.cycles_e9 / ada.cycles_e9, 3)
