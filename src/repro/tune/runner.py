"""Parallel trial execution with crash isolation and a resume journal.

:class:`SearchRunner` runs a batch of :class:`~repro.tune.trial.TrialSpec`
objects either serially or on a :class:`concurrent.futures.ProcessPoolExecutor`
(trials are pure CPU-bound NumPy, so processes — not threads — are the
unit of parallelism).  Two properties make long searches safe:

* **Crash isolation** — a trial that raises (bad config, numerical
  blow-up) becomes a ``status="failed"`` :class:`TrialResult` carrying
  the error string; the pool and the remaining trials are unaffected.
  Even a hard worker death (e.g. OOM kill) only fails the trials that
  were in flight, never the search.  Deterministic in-trial failures
  are journaled like any result; pool-level (infrastructure) failures
  are *not*, so a resume retries them rather than trusting a verdict
  the trial never produced.
* **Journal resume** — with ``journal=<path>``, every finished trial is
  appended to a JSONL file as ``{"trial": spec, "result": result}``
  the moment it completes.  A rerun of the same search loads the
  journal first and only executes specs not yet recorded, so an
  interrupted search resumes without re-running finished trials and
  (trials being deterministic) produces bit-identical
  :meth:`~repro.tune.trial.TrialResult.deterministic_dict` outputs.
  A half-written trailing line (the interruption itself) is ignored.
"""

from __future__ import annotations

import json
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Optional, Sequence, Union

from .trial import TrialResult, TrialSpec, run_trial

JOURNAL_VERSION = 1


def run_trial_guarded(spec_dict: dict) -> dict:
    """Process-pool entry point: never raises, always returns a result
    dict (module-level so it pickles under every start method)."""
    spec = TrialSpec.from_dict(spec_dict)
    try:
        return run_trial(spec).to_dict()
    except Exception as err:  # crash isolation: the pool must survive
        return TrialResult.failed(spec, err).to_dict()


def load_journal(path: Union[str, Path]) -> dict[str, dict]:
    """Completed trials from a journal: ``trial_id -> journal record``.

    Tolerates a missing file (fresh search) and a torn final line (the
    write that an interruption cut short).
    """
    path = Path(path)
    if not path.exists():
        return {}
    records: dict[str, dict] = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn write at the interruption point
        if record.get("version") != JOURNAL_VERSION:
            continue
        records[record["trial"]["trial_id"]] = record
    return records


class SearchRunner:
    """Execute trial specs with ``workers`` processes and journaling.

    ``workers=1`` (the default) runs in-process — same results, no pool
    overhead, the right mode for tests and tiny searches.  The
    ``executed`` counter records how many trials actually ran (vs. were
    served from the journal) in the most recent :meth:`run`.
    """

    def __init__(
        self,
        workers: int = 1,
        journal: Optional[Union[str, Path]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.journal = Path(journal) if journal is not None else None
        self.executed = 0

    # ------------------------------------------------------------------
    def _record(self, spec: TrialSpec, result: TrialResult) -> None:
        if self.journal is None:
            return
        line = json.dumps(
            {
                "version": JOURNAL_VERSION,
                "trial": spec.to_dict(),
                "result": result.to_dict(),
            },
            sort_keys=True,
            # Strict RFC-8259 output: TrialResult.to_dict already maps
            # non-finite floats to null; anything else slipping through
            # should fail loudly, not emit NaN tokens.
            allow_nan=False,
        )
        with self.journal.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _from_journal(self, specs: Sequence[TrialSpec]) -> dict[str, TrialResult]:
        if self.journal is None:
            return {}
        records = load_journal(self.journal)
        done: dict[str, TrialResult] = {}
        for spec in specs:
            record = records.get(spec.trial_id)
            if record is None:
                continue
            if record["trial"] != spec.to_dict():
                raise ValueError(
                    f"journal {self.journal} holds trial {spec.trial_id!r} "
                    "with a different spec; this journal belongs to another "
                    "search — delete it or pass a fresh path"
                )
            done[spec.trial_id] = TrialResult.from_dict(record["result"])
        return done

    # ------------------------------------------------------------------
    def _run_serial(self, pending: Sequence[TrialSpec]) -> dict[str, TrialResult]:
        results: dict[str, TrialResult] = {}
        for spec in pending:
            result = TrialResult.from_dict(run_trial_guarded(spec.to_dict()))
            self._record(spec, result)
            results[spec.trial_id] = result
        return results

    def _run_pool(self, pending: Sequence[TrialSpec]) -> dict[str, TrialResult]:
        results: dict[str, TrialResult] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(run_trial_guarded, spec.to_dict()): spec
                for spec in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = futures[future]
                    try:
                        result = TrialResult.from_dict(future.result())
                    except Exception as err:
                        # A worker died outright (BrokenProcessPool et
                        # al.): an *infrastructure* failure, not a
                        # property of the trial.  Report it failed for
                        # this run but keep it out of the journal so a
                        # resume retries it instead of serving the
                        # broken-pool verdict forever.
                        results[spec.trial_id] = TrialResult.failed(spec, err)
                        continue
                    self._record(spec, result)
                    results[spec.trial_id] = result
        return results

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TrialSpec]) -> list[TrialResult]:
        """Run every spec (journal hits excluded) and return results in
        spec order."""
        ids = [spec.trial_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("trial ids must be unique within one run")
        results = self._from_journal(specs)
        pending = [spec for spec in specs if spec.trial_id not in results]
        self.executed = len(pending)
        if pending:
            runner = self._run_pool if self.workers > 1 else self._run_serial
            results.update(runner(pending))
        return [results[trial_id] for trial_id in ids]
