"""Parallel trial execution with crash isolation and a resume journal.

:class:`SearchRunner` runs a batch of :class:`~repro.tune.trial.TrialSpec`
objects either serially or on a :class:`concurrent.futures.ProcessPoolExecutor`
(trials are pure CPU-bound NumPy, so processes — not threads — are the
unit of parallelism).  Two properties make long searches safe:

* **Crash isolation** — a trial that raises (bad config, numerical
  blow-up) becomes a ``status="failed"`` :class:`TrialResult` carrying
  the error string; the pool and the remaining trials are unaffected.
  Even a hard worker death (e.g. OOM kill) only fails the trials that
  were in flight, never the search.  Deterministic in-trial failures
  are journaled like any result; pool-level (infrastructure) failures
  are *not*, so a resume retries them rather than trusting a verdict
  the trial never produced.
* **Journal resume** — with ``journal=<path>``, every finished trial is
  appended to a JSONL file as ``{"trial": spec, "result": result}``
  the moment it completes.  A rerun of the same search loads the
  journal first and only executes specs not yet recorded, so an
  interrupted search resumes without re-running finished trials and
  (trials being deterministic) produces bit-identical
  :meth:`~repro.tune.trial.TrialResult.deterministic_dict` outputs.
  A half-written trailing line (the interruption itself) is ignored.

Multi-host searches add a third property:

* **Claimed execution** — with ``claim=True`` several hosts (or
  processes) point runners at *one shared journal*; before executing a
  trial each runner appends a lease-timestamped claim record to the
  ``<journal>.claims`` sidecar under an ``fcntl.lockf`` critical
  section, so every trial runs exactly once across the fleet.  A claim
  whose lease expired without a journaled result is an *orphan* (its
  host crashed) and is silently reclaimed by the next runner.  Trials
  being deterministic, the union of all hosts' work is bit-identical to
  one serial run — the multi-host parallel-equals-serial contract.
"""

from __future__ import annotations

import json
import os
import socket
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Sequence, Union

try:  # POSIX-only; claim mode degrades to a hard error elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from .trial import TrialResult, TrialSpec, run_trial

JOURNAL_VERSION = 1


def run_trial_guarded(spec_dict: dict) -> dict:
    """Process-pool entry point: never raises, always returns a result
    dict (module-level so it pickles under every start method)."""
    spec = TrialSpec.from_dict(spec_dict)
    try:
        return run_trial(spec).to_dict()
    except Exception as err:  # crash isolation: the pool must survive
        return TrialResult.failed(spec, err).to_dict()


def load_journal(path: Union[str, Path]) -> dict[str, dict]:
    """Completed trials from a journal: ``trial_id -> journal record``.

    Tolerates a missing file (fresh search) and a torn final line (the
    write that an interruption cut short).
    """
    path = Path(path)
    if not path.exists():
        return {}
    records: dict[str, dict] = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn write at the interruption point
        if record.get("version") != JOURNAL_VERSION:
            continue
        records[record["trial"]["trial_id"]] = record
    return records


class SearchRunner:
    """Execute trial specs with ``workers`` processes and journaling.

    ``workers=1`` (the default) runs in-process — same results, no pool
    overhead, the right mode for tests and tiny searches.  The
    ``executed`` counter records how many trials actually ran (vs. were
    served from the journal) in the most recent :meth:`run`.

    ``claim=True`` turns the journal into a shared multi-host work
    queue: each trial is claimed under a file lock before running (see
    the module docstring).  Claim mode executes in-process and one
    trial at a time — fleet parallelism comes from running one claiming
    runner per host, not from a local pool — and ``lease`` seconds
    without a journaled result marks a claim orphaned (crashed host)
    and reclaimable.
    """

    def __init__(
        self,
        workers: int = 1,
        journal: Optional[Union[str, Path]] = None,
        claim: bool = False,
        lease: float = 300.0,
        poll_interval: float = 0.05,
        owner: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if claim:
            if journal is None:
                raise ValueError("claim=True needs a shared journal path")
            if workers != 1:
                raise ValueError(
                    "claim mode runs trials in-process (workers=1); "
                    "parallelism comes from one claiming runner per host"
                )
            if fcntl is None:
                raise RuntimeError("claim mode needs fcntl (POSIX file locks)")
            if lease <= 0:
                raise ValueError(f"lease must be > 0 seconds, got {lease}")
        self.workers = workers
        self.journal = Path(journal) if journal is not None else None
        self.claim = claim
        self.lease = float(lease)
        self.poll_interval = float(poll_interval)
        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        self.executed = 0

    # ------------------------------------------------------------------
    # Shared-journal locking + claims.
    # ------------------------------------------------------------------
    @property
    def _claims_path(self) -> Path:
        return self.journal.with_name(self.journal.name + ".claims")

    @contextmanager
    def _locked(self):
        """Exclusive cross-host critical section on ``<journal>.lock``."""
        lock_path = self.journal.with_name(self.journal.name + ".lock")
        with lock_path.open("a") as handle:
            fcntl.lockf(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.lockf(handle, fcntl.LOCK_UN)

    def _load_claims(self) -> dict[str, dict]:
        """Latest claim record per trial id (a reclaim supersedes the
        orphaned claim it replaces)."""
        path = self._claims_path
        if not path.exists():
            return {}
        claims: dict[str, dict] = {}
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a crashed host
            if record.get("version") != JOURNAL_VERSION:
                continue
            claims[record["trial_id"]] = record
        return claims

    def _claim_next(self, specs: Sequence[TrialSpec]) -> Optional[TrialSpec]:
        """Atomically claim the first spec that is neither journaled nor
        under a live lease; ``None`` when every remaining trial is owned
        by a live peer."""
        now = time.time()
        with self._locked():
            done = load_journal(self.journal)
            claims = self._load_claims()
            for spec in specs:
                if spec.trial_id in done:
                    continue
                claim = claims.get(spec.trial_id)
                if claim is not None and now - claim["ts"] < self.lease:
                    continue  # live claim on another host
                line = json.dumps(
                    {
                        "version": JOURNAL_VERSION,
                        "trial_id": spec.trial_id,
                        "owner": self.owner,
                        "ts": now,
                    },
                    sort_keys=True,
                    allow_nan=False,
                )
                with self._claims_path.open("a") as handle:
                    handle.write(line + "\n")
                    handle.flush()
                return spec
        return None

    # ------------------------------------------------------------------
    def _record(self, spec: TrialSpec, result: TrialResult) -> None:
        if self.journal is None:
            return
        line = json.dumps(
            {
                "version": JOURNAL_VERSION,
                "trial": spec.to_dict(),
                "result": result.to_dict(),
            },
            sort_keys=True,
            # Strict RFC-8259 output: TrialResult.to_dict already maps
            # non-finite floats to null; anything else slipping through
            # should fail loudly, not emit NaN tokens.
            allow_nan=False,
        )
        if self.claim:
            # Serialize appends across hosts sharing the journal.
            with self._locked():
                with self.journal.open("a") as handle:
                    handle.write(line + "\n")
                    handle.flush()
            return
        with self.journal.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _from_journal(self, specs: Sequence[TrialSpec]) -> dict[str, TrialResult]:
        if self.journal is None:
            return {}
        records = load_journal(self.journal)
        done: dict[str, TrialResult] = {}
        for spec in specs:
            record = records.get(spec.trial_id)
            if record is None:
                continue
            if record["trial"] != spec.to_dict():
                raise ValueError(
                    f"journal {self.journal} holds trial {spec.trial_id!r} "
                    "with a different spec; this journal belongs to another "
                    "search — delete it or pass a fresh path"
                )
            done[spec.trial_id] = TrialResult.from_dict(record["result"])
        return done

    # ------------------------------------------------------------------
    def _run_serial(self, pending: Sequence[TrialSpec]) -> dict[str, TrialResult]:
        results: dict[str, TrialResult] = {}
        for spec in pending:
            result = TrialResult.from_dict(run_trial_guarded(spec.to_dict()))
            self._record(spec, result)
            results[spec.trial_id] = result
        return results

    def _run_pool(self, pending: Sequence[TrialSpec]) -> dict[str, TrialResult]:
        results: dict[str, TrialResult] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(run_trial_guarded, spec.to_dict()): spec
                for spec in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = futures[future]
                    try:
                        result = TrialResult.from_dict(future.result())
                    except Exception as err:
                        # A worker died outright (BrokenProcessPool et
                        # al.): an *infrastructure* failure, not a
                        # property of the trial.  Report it failed for
                        # this run but keep it out of the journal so a
                        # resume retries it instead of serving the
                        # broken-pool verdict forever.
                        results[spec.trial_id] = TrialResult.failed(spec, err)
                        continue
                    self._record(spec, result)
                    results[spec.trial_id] = result
        return results

    def _run_claimed(self, pending: Sequence[TrialSpec]) -> dict[str, TrialResult]:
        """Multi-host mode: claim → run → journal, adopting peer results
        as they land; waits (bounded by lease reclaim) for trials other
        hosts own."""
        results: dict[str, TrialResult] = {}
        waiting = {spec.trial_id: spec for spec in pending}
        while waiting:
            progressed = False
            records = load_journal(self.journal)
            for trial_id in list(waiting):
                record = records.get(trial_id)
                if record is not None:
                    results[trial_id] = TrialResult.from_dict(record["result"])
                    del waiting[trial_id]
                    progressed = True
            if not waiting:
                break
            spec = self._claim_next(list(waiting.values()))
            if spec is not None:
                result = TrialResult.from_dict(run_trial_guarded(spec.to_dict()))
                self._record(spec, result)
                results[spec.trial_id] = result
                del waiting[spec.trial_id]
                self.executed += 1
                progressed = True
            if waiting and not progressed:
                # Every remaining trial is under a live claim elsewhere:
                # poll for its result (or its lease to orphan out).
                time.sleep(self.poll_interval)
        return results

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TrialSpec]) -> list[TrialResult]:
        """Run every spec (journal hits excluded) and return results in
        spec order."""
        ids = [spec.trial_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("trial ids must be unique within one run")
        results = self._from_journal(specs)
        pending = [spec for spec in specs if spec.trial_id not in results]
        if self.claim:
            self.executed = 0  # _run_claimed counts what actually ran here
            if pending:
                results.update(self._run_claimed(pending))
            return [results[trial_id] for trial_id in ids]
        self.executed = len(pending)
        if pending:
            runner = self._run_pool if self.workers > 1 else self._run_serial
            results.update(runner(pending))
        return [results[trial_id] for trial_id in ids]
