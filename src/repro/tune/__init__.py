"""Schedule search: map the accuracy-vs-speedup frontier of ADA-GP.

The paper's §3.5 phase controller ships a fixed heuristic ladder "for
simplicity"; this subsystem searches the general controller's knobs
(:class:`~repro.core.AdaptiveSchedule` thresholds/ratios,
:class:`~repro.core.HeuristicSchedule` ladders, warm-up lengths, GP
execution options) by running many :class:`~repro.core.TrainingEngine`
trials — in parallel, crash-isolated, journaled for resume — and
reporting the Pareto frontier of accuracy vs. realized GP share and the
cycle-model speedup it buys.

Layering: ``space`` (what to search) → ``search`` (which trials to run)
→ ``runner`` (how to run them) → ``trial`` (one engine run) →
``frontier`` (what the results mean).  Nothing below ``repro.core``
knows this package exists; the engine's only contributions are the
callback seam (:class:`~repro.core.PruneCallback`) and the
checkpoint-grade schedule state dicts.

Quickstart::

    from repro.tune import Grid, LogUniform, RandomSearch, SearchRunner, SearchSpace, pareto_front

    space = SearchSpace({
        "kind": "adaptive",
        "threshold_scale": LogUniform(1.0, 30.0),
        "warmup_epochs": Grid(4, 6),
    })
    results = RandomSearch(space, num_trials=12, epochs=16).run(
        SearchRunner(workers=4, journal="search.jsonl"))
    for best in pareto_front(results):
        print(best.trial_id, best.best_metric, best.gp_share)
"""

from .space import (
    Choice,
    Domain,
    Fixed,
    Grid,
    LogUniform,
    SearchSpace,
    Uniform,
    seed_for_trial,
    spawn_rngs,
    spawn_seeds,
)
from .trial import (
    BASE_THRESHOLDS,
    TrialResult,
    TrialSpec,
    run_trial,
    spec_from_config,
)
from .runner import JOURNAL_VERSION, SearchRunner, load_journal, run_trial_guarded
from .search import (
    GridSearch,
    HalvingOutcome,
    RandomSearch,
    SuccessiveHalving,
    draw_trials,
)
from .frontier import (
    describe_schedule,
    dominates,
    frontier_table,
    pareto_front,
    render_frontier,
)

__all__ = [
    "Domain",
    "Fixed",
    "Grid",
    "Choice",
    "Uniform",
    "LogUniform",
    "SearchSpace",
    "seed_for_trial",
    "spawn_rngs",
    "spawn_seeds",
    "BASE_THRESHOLDS",
    "TrialSpec",
    "TrialResult",
    "run_trial",
    "spec_from_config",
    "SearchRunner",
    "load_journal",
    "run_trial_guarded",
    "JOURNAL_VERSION",
    "GridSearch",
    "RandomSearch",
    "SuccessiveHalving",
    "HalvingOutcome",
    "draw_trials",
    "describe_schedule",
    "dominates",
    "pareto_front",
    "frontier_table",
    "render_frontier",
]
