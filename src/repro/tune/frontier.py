"""Pareto-frontier extraction and ASCII rendering for search results.

The schedule search optimizes two axes at once — accuracy (best
validation metric) and the benefit of skipping backward passes (realized
GP share, or the cycle-model speedup it buys).  No single scalar ranks
trials; the deliverable is the *frontier*: every trial no other trial
beats on both axes simultaneously.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from ..experiments.formats import format_table
from .trial import TrialResult

Axis = Callable[[TrialResult], float]


def _gp_share(result: TrialResult) -> float:
    return result.gp_share


def _best_metric(result: TrialResult) -> float:
    return result.best_metric


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """True when point ``a`` is at least as good as ``b`` on both axes
    and strictly better on one (both axes maximized)."""
    return a[0] >= b[0] and a[1] >= b[1] and (a[0] > b[0] or a[1] > b[1])


def pareto_front(
    results: Sequence[TrialResult],
    x: Axis = _gp_share,
    y: Axis = _best_metric,
    statuses: Sequence[str] = ("ok",),
) -> list[TrialResult]:
    """Non-dominated subset of ``results``, sorted by ``x`` ascending.

    Both axes are maximized.  Pruned and failed trials are excluded by
    default (their budgets differ, so their metrics aren't comparable);
    points with NaN on either axis never make the front.  Coincident
    points are all kept — each is evidence the same trade-off is
    achievable by more than one configuration.
    """
    candidates = [
        (x(result), y(result), result)
        for result in results
        if result.status in statuses
    ]
    candidates = [
        c for c in candidates if not (math.isnan(c[0]) or math.isnan(c[1]))
    ]
    front = [
        (cx, cy, result)
        for cx, cy, result in candidates
        if not any(
            dominates((ox, oy), (cx, cy))
            for ox, oy, other in candidates
            if other is not result
        )
    ]
    front.sort(key=lambda c: (c[0], c[1]))
    return [result for _, _, result in front]


def describe_schedule(result: TrialResult) -> str:
    """Compact human label for a trial's schedule config."""
    config = (result.spec or {}).get("schedule", {})
    kind = config.get("kind", "?")
    if kind == "adaptive":
        thresholds = ",".join(f"{t:g}" for t in config.get("thresholds", ()))
        ratios = ",".join(f"{k}:{m}" for k, m in config.get("ratios", ()))
        return (
            f"adaptive w={config.get('warmup_epochs')} "
            f"mape<=({thresholds}) r=({ratios})"
        )
    if kind == "heuristic":
        rungs = ",".join(
            f"{window}x{k}:{m}" for window, (k, m) in config.get("ladder", ())
        )
        final = config.get("final_ratio", ("?", "?"))
        rungs = rungs + "," if rungs else ""
        return (
            f"heuristic w={config.get('warmup_epochs')} "
            f"[{rungs}{final[0]}:{final[1]}]"
        )
    return str(config)


def frontier_table(
    results: Sequence[TrialResult],
    front: Optional[Sequence[TrialResult]] = None,
    title: str = "Accuracy vs GP-share frontier",
) -> str:
    """Per-trial table with the Pareto front marked (``*``)."""
    front = pareto_front(results) if front is None else front
    on_front = {id(result) for result in front}
    rows = []
    for result in sorted(
        results, key=lambda r: (math.isnan(r.gp_share), -(r.gp_share if not math.isnan(r.gp_share) else 0.0))
    ):
        rows.append(
            [
                "*" if id(result) in on_front else "",
                result.trial_id,
                describe_schedule(result),
                f"{result.best_metric:.1f}" if not math.isnan(result.best_metric) else "-",
                f"{result.gp_share:.0%}" if not math.isnan(result.gp_share) else "-",
                f"{result.cycle_speedup:.2f}x" if not math.isnan(result.cycle_speedup) else "-",
                result.status,
            ]
        )
    return format_table(
        ["", "Trial", "Schedule", "Best acc (%)", "GP share", "Cycle speedup", "Status"],
        rows,
        title=title,
    )


def render_frontier(
    results: Sequence[TrialResult],
    front: Optional[Sequence[TrialResult]] = None,
    width: int = 56,
    height: int = 14,
    x_axis: Axis = _gp_share,
    y_axis: Axis = _best_metric,
    x_label: str = "GP share",
    y_label: str = "best accuracy (%)",
) -> str:
    """ASCII scatter of all trials, Pareto-front members drawn as ``*``.

    Dominated trials draw as ``o``; the axes carry min/max ticks.  Width
    and height are the plot body in characters.
    """
    front = pareto_front(results, x=x_axis, y=y_axis) if front is None else front
    on_front = {id(member) for member in front}
    points = [
        (x_axis(result), y_axis(result), id(result) in on_front)
        for result in results
        if result.status == "ok"
        and not (math.isnan(x_axis(result)) or math.isnan(y_axis(result)))
    ]
    if not points:
        return "(no completed trials to plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for px, py, is_front in sorted(points, key=lambda p: p[2]):  # front last
        col = min(width - 1, int((px - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((py - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*" if is_front else "o"
    lines = [f"{y_label}  (* = Pareto front)"]
    lines.append(f"{y_hi:8.2f} +{'-' * width}+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:8.2f} +{'-' * width}+")
    lines.append(
        " " * 10 + f"{x_lo:<10.2f}{x_label:^{max(width - 20, 1)}}{x_hi:>10.2f}"
    )
    return "\n".join(lines)
