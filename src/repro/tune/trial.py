"""One schedule-search trial: spec in, engine run, measured result out.

A :class:`TrialSpec` is a JSON-safe description of one
:func:`~repro.core.adagp_engine` training run — the schedule under test
(:class:`~repro.core.AdaptiveSchedule` thresholds/ratios or
:class:`~repro.core.HeuristicSchedule` ladders, via their
``to_config`` dicts), the GP options (``batched_gp``), and the workload
(model, dataset preset, epochs, batch size, learning rate).  Specs are
what travels through the process pool and the results journal.

:func:`run_trial` executes a spec deterministically (all randomness
spawned from ``spec.seed``) and returns a :class:`TrialResult` carrying
the two frontier axes — best/final accuracy and realized GP share —
plus wall time and the accelerator cycle-model speedup of the realized
phase mix (:func:`repro.accel.schedule_speedup`).
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from ..core import Phase, PruneCallback, adagp_engine, schedule_from_config
from ..core.schedule import AdaptiveSchedule, HeuristicSchedule
from ..data import preset_split
from ..data.synthetic import DATASET_PRESETS, PAPER_TO_PRESET
from ..models import build_mini
from ..nn.losses import CrossEntropyLoss, accuracy

#: Default AdaptiveSchedule MAPE cut-offs that ``threshold_scale`` scales.
BASE_THRESHOLDS: tuple[float, ...] = (2.0, 5.0, 10.0)

#: Config keys that describe the schedule rather than the run.
_SCHEDULE_KEYS = {
    "kind",
    "warmup_epochs",
    "thresholds",
    "threshold_scale",
    "ratios",
    "ladder",
    "final_ratio",
}


def _listify(value: Any) -> Any:
    """Canonicalize containers the way JSON does (tuples -> lists), so a
    spec dict compares equal to its journal round-trip."""
    if isinstance(value, (list, tuple)):
        return [_listify(item) for item in value]
    if isinstance(value, dict):
        return {key: _listify(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class TrialSpec:
    """One fully-specified training trial (JSON-safe, picklable)."""

    trial_id: str
    schedule: dict  # ``schedule_from_config`` dict (kind + knobs)
    model: str = "VGG13"
    dataset: str = "Cifar10"
    num_train: int = 256
    num_val: int = 128
    batch_size: int = 32
    epochs: int = 12
    lr: float = 0.02
    batched_gp: bool = False
    design: str = "ADA-GP-Efficient"
    seed: int = 0
    prune: Optional[dict] = None  # PruneCallback kwargs (rungs/thresholds)

    def to_dict(self) -> dict:
        # Tuples canonicalize to lists: the journal's resume check
        # compares this dict against its JSON round-trip, which must be
        # an exact match even for hand-built specs carrying tuples.
        return _listify(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialSpec":
        return cls(**dict(data))

    def build_schedule(self) -> AdaptiveSchedule | HeuristicSchedule:
        return schedule_from_config(self.schedule)


@dataclass
class TrialResult:
    """Measured outcome of one trial.

    ``wall_time_s`` is the only nondeterministic field;
    :meth:`deterministic_dict` drops it, and two runs of the same spec
    (fresh, resumed, or in another worker process) must agree on that
    projection bit-for-bit.
    """

    trial_id: str
    status: str  # "ok" | "pruned" | "failed"
    spec: dict = field(default_factory=dict)
    epochs_run: int = 0
    best_metric: float = float("nan")
    final_metric: float = float("nan")
    val_metric: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    gp_share: float = float("nan")
    gp_fraction: list[float] = field(default_factory=list)
    cycle_speedup: float = float("nan")
    wall_time_s: float = 0.0
    error: Optional[str] = None

    #: Float slots that may legitimately hold NaN (failed trials) or, in
    #: a diverged run, inf.  They serialize as ``null`` so the journal
    #: stays strict RFC-8259 JSON (Python's NaN/Infinity tokens are not),
    #: and so failed results compare equal by dict (NaN != NaN would
    #: break the bit-identity contract).
    _FLOAT_FIELDS = ("best_metric", "final_metric", "gp_share", "cycle_speedup")
    _FLOAT_LIST_FIELDS = ("val_metric", "train_loss", "gp_fraction")

    def to_dict(self) -> dict:
        data = asdict(self)
        for name in self._FLOAT_FIELDS:
            if not math.isfinite(data[name]):
                data[name] = None
        for name in self._FLOAT_LIST_FIELDS:
            data[name] = [
                value if math.isfinite(value) else None for value in data[name]
            ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        data = dict(data)
        for name in cls._FLOAT_FIELDS:
            if data.get(name) is None:
                data[name] = float("nan")
        for name in cls._FLOAT_LIST_FIELDS:
            if name in data:
                data[name] = [
                    float("nan") if value is None else value
                    for value in data[name]
                ]
        return cls(**data)

    def deterministic_dict(self) -> dict:
        """Everything a deterministic re-run must reproduce exactly."""
        data = self.to_dict()
        data.pop("wall_time_s")
        return data

    def metric_at(self, epochs: int) -> float:
        """Monitored metric after ``epochs`` completed epochs (rung
        ranking); NaN when the trial never got that far."""
        if self.status == "failed" or len(self.val_metric) < epochs:
            return float("nan")
        return self.val_metric[epochs - 1]

    @classmethod
    def failed(cls, spec: TrialSpec, error: BaseException) -> "TrialResult":
        return cls(
            trial_id=spec.trial_id,
            status="failed",
            spec=spec.to_dict(),
            error=f"{type(error).__name__}: {error}",
        )


def spec_from_config(
    trial_id: str, config: Mapping[str, Any], seed: int = 0, **base: Any
) -> TrialSpec:
    """Map one sampled search-space configuration onto a :class:`TrialSpec`.

    Schedule keys (``kind``, ``warmup_epochs``, ``thresholds`` /
    ``threshold_scale`` / ``ratios`` for the adaptive controller,
    ``ladder`` / ``final_ratio`` for the heuristic one) become the
    spec's schedule config; any :class:`TrialSpec` field name (``lr``,
    ``batched_gp``, ``epochs``, ...) overrides the same-named ``base``
    keyword.  Unknown keys raise, so typos in a search space fail fast
    instead of silently searching nothing.
    """
    spec_fields = set(TrialSpec.__dataclass_fields__) - {"trial_id", "schedule", "seed"}
    schedule_cfg: dict[str, Any] = {}
    overrides: dict[str, Any] = {}
    for key, value in config.items():
        if key in _SCHEDULE_KEYS:
            schedule_cfg[key] = value
        elif key in spec_fields:
            overrides[key] = value
        else:
            raise ValueError(
                f"unknown search parameter {key!r}; schedule keys are "
                f"{sorted(_SCHEDULE_KEYS)}, spec fields {sorted(spec_fields)}"
            )
    kind = schedule_cfg.pop("kind", "adaptive")
    if kind == "adaptive":
        scale = float(schedule_cfg.pop("threshold_scale", 1.0))
        thresholds = schedule_cfg.pop("thresholds", BASE_THRESHOLDS)
        schedule = AdaptiveSchedule(
            warmup_epochs=int(schedule_cfg.pop("warmup_epochs", 6)),
            thresholds=tuple(float(t) * scale for t in thresholds),
            ratios=tuple(
                (int(k), int(m)) for k, m in schedule_cfg.pop(
                    "ratios", AdaptiveSchedule.__dataclass_fields__["ratios"].default
                )
            ),
        )
    elif kind == "heuristic":
        defaults = HeuristicSchedule(
            warmup_epochs=int(schedule_cfg.pop("warmup_epochs", 6))
        )
        ladder = schedule_cfg.pop("ladder", defaults.ladder)
        final = schedule_cfg.pop("final_ratio", defaults.final_ratio)
        schedule = HeuristicSchedule(
            warmup_epochs=defaults.warmup_epochs,
            ladder=tuple((int(w), (int(k), int(m))) for w, (k, m) in ladder),
            final_ratio=(int(final[0]), int(final[1])),
        )
    else:
        raise ValueError(f"unknown schedule kind {kind!r}")
    if schedule_cfg:
        raise ValueError(
            f"schedule keys {sorted(schedule_cfg)} do not apply to kind {kind!r}"
        )
    params = dict(base)
    params.update(overrides)
    return TrialSpec(
        trial_id=trial_id, schedule=schedule.to_config(), seed=seed, **params
    )


def _num_classes(dataset: str) -> int:
    preset = PAPER_TO_PRESET.get(dataset, dataset)
    return DATASET_PRESETS[preset][0]


_PRESET_TO_PAPER = {preset: paper for paper, preset in PAPER_TO_PRESET.items()}


def _paper_dataset(dataset: str) -> str:
    """Paper dataset name for the cycle model's ``spec_for`` registry
    (trial specs may use either paper names or preset aliases)."""
    if dataset in PAPER_TO_PRESET:
        return dataset
    return _PRESET_TO_PAPER[dataset]


def run_trial(spec: TrialSpec) -> TrialResult:
    """Execute one trial end-to-end; deterministic given ``spec``.

    All randomness — model init, batch shuffling — is spawned from
    ``spec.seed`` via one :class:`numpy.random.SeedSequence`, so a
    journal-resumed or process-pool re-run reproduces the original
    :meth:`TrialResult.deterministic_dict` exactly.
    """
    root = np.random.SeedSequence(spec.seed)
    model_ss, order_ss = root.spawn(2)
    split = preset_split(
        spec.dataset, num_train=spec.num_train, num_val=spec.num_val, seed=spec.seed
    )
    model = build_mini(
        spec.model, _num_classes(spec.dataset), rng=np.random.default_rng(model_ss)
    )
    prune_cb = PruneCallback(**spec.prune) if spec.prune else None
    engine = adagp_engine(
        model,
        CrossEntropyLoss(),
        lr=spec.lr,
        metric_fn=accuracy,
        schedule=spec.build_schedule(),
        batched_gp=spec.batched_gp,
        callbacks=(prune_cb,) if prune_cb is not None else (),
    )
    order_rng = np.random.default_rng(order_ss)  # advances across epochs
    start = time.perf_counter()
    history = engine.fit(
        lambda: split.train.batches(spec.batch_size, rng=order_rng),
        lambda: split.val.batches(max(spec.num_val, 1), shuffle=False),
        epochs=spec.epochs,
    )
    wall = time.perf_counter() - start
    counts = {
        Phase.BP: sum(history.bp_batches),
        Phase.GP: sum(history.gp_batches),
    }
    # Import deferred so repro.tune loads without the accel package in
    # play until a result actually needs costing.
    from ..accel import schedule_speedup

    return TrialResult(
        trial_id=spec.trial_id,
        status="pruned" if prune_cb is not None and prune_cb.pruned_at_epoch is not None else "ok",
        spec=spec.to_dict(),
        epochs_run=history.num_epochs,
        best_metric=history.best_metric,
        final_metric=history.final_metric,
        val_metric=list(history.val_metric),
        train_loss=list(history.train_loss),
        gp_share=history.gp_share,
        gp_fraction=list(history.gp_fraction),
        cycle_speedup=schedule_speedup(
            counts,
            spec.model,
            design=spec.design,
            batch=spec.batch_size,
            dataset=_paper_dataset(spec.dataset),
        ),
        wall_time_s=wall,
    )
