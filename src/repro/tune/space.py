"""Search-space primitives for schedule search.

A :class:`SearchSpace` maps parameter names to :class:`Domain` objects;
it can enumerate the full cartesian grid (finite domains only) or draw
deterministic random samples.  Randomness follows the repo's
``SeedSequence`` spawning pattern (see :func:`repro.nn.init.layer_rng`):
one root sequence per search, one spawned child stream per trial, so
trials never share a random stream no matter how many run, in what
order, or in which process.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

import numpy as np


class Domain:
    """One searchable parameter: a value set or distribution."""

    def sample(self, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def values(self) -> tuple:
        """Finite value set for grid enumeration."""
        raise TypeError(
            f"{type(self).__name__} is continuous and cannot be grid-"
            "enumerated; use RandomSearch or discretize it with Grid(...)"
        )


def _freeze(value: Any) -> Any:
    """Lists become tuples so sampled configs hash/compare like literals."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True, init=False)
class Grid(Domain):
    """An explicit finite value set, enumerated in order by the grid and
    sampled uniformly by random search."""

    options: tuple

    def __init__(self, *options: Any) -> None:
        if len(options) == 1 and isinstance(options[0], (list, tuple)):
            options = tuple(options[0])
        if not options:
            raise ValueError("Grid needs at least one option")
        object.__setattr__(self, "options", tuple(_freeze(o) for o in options))

    def sample(self, rng: np.random.Generator) -> Any:
        return self.options[int(rng.integers(len(self.options)))]

    def values(self) -> tuple:
        return self.options


class Choice(Grid):
    """Alias of :class:`Grid` kept for intent: categorical options that a
    random search picks among (and a grid still enumerates)."""


@dataclass(frozen=True, init=False)
class Fixed(Domain):
    """A constant passed through unchanged — what bare (non-``Domain``)
    values in a :class:`SearchSpace` wrap into.  Unlike ``Grid(value)``,
    a fixed sequence stays one value: ``Fixed((9, 1))`` is the ratio
    ``(9, 1)``, never a two-option grid over ``9`` and ``1``."""

    value: object

    def __init__(self, value: Any) -> None:
        object.__setattr__(self, "value", _freeze(value))

    def sample(self, rng: np.random.Generator) -> Any:
        return self.value

    def values(self) -> tuple:
        return (self.value,)


@dataclass(frozen=True)
class Uniform(Domain):
    """Continuous uniform on ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"need low < high, got [{self.low}, {self.high})")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class LogUniform(Domain):
    """Log-uniform on ``[low, high)`` — for scale-free knobs like MAPE
    thresholds or learning rates."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 < self.low < self.high:
            raise ValueError(
                f"need 0 < low < high, got [{self.low}, {self.high})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(
            math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        )


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators spawned from one root sequence.

    The per-trial analogue of :func:`repro.nn.init.layer_rng`: same seed
    and index always yield the same stream, and distinct indices never
    collide (SeedSequence spawning guarantees independence, unlike
    ``seed + i`` arithmetic).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def spawn_seeds(seed: int, count: int) -> list[int]:
    """JSON-safe per-trial seeds from the same spawning discipline.

    Each is the first state word of a spawned child sequence, so trial
    seeds inherit the non-collision property while remaining plain ints
    a :class:`~repro.tune.trial.TrialSpec` can journal.  Seeds here are
    keyed on *position*; prefer :func:`seed_for_trial` when a stable
    trial id exists — id-keyed seeds survive re-batching.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, np.uint32)[0]) for child in children]


def seed_for_trial(seed: int, trial_id: str) -> int:
    """JSON-safe training seed as a pure function of (root seed, trial id).

    The id is hashed (SHA-256, first 16 bytes) into a 4-word
    ``SeedSequence`` spawn key, so a trial's seed depends on nothing but
    the search's root seed and the trial's own identity — not its
    position in the batch, not how many trials were drawn around it,
    and not how many pool workers execute them.  That independence is
    what lets a journaled search resumed under a different ``workers=``
    count reproduce bit-identical trial results.
    """
    digest = hashlib.sha256(trial_id.encode("utf-8")).digest()
    spawn_key = tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )
    child = np.random.SeedSequence(seed, spawn_key=spawn_key)
    return int(child.generate_state(1, np.uint32)[0])


class SearchSpace:
    """Named parameter domains; non-``Domain`` values (scalars, tuples,
    ladders) are fixed constants passed through to every configuration —
    searchable sets must be explicit ``Grid``/``Choice`` domains.

    Example::

        space = SearchSpace({
            "kind": "adaptive",                       # fixed
            "final_ratio": (9, 1),                    # fixed (stays a pair)
            "threshold_scale": LogUniform(1.0, 30.0), # continuous
            "warmup_epochs": Grid(4, 6),              # finite
        })
    """

    def __init__(self, params: Mapping[str, Any]) -> None:
        if not params:
            raise ValueError("search space needs at least one parameter")
        self.params: dict[str, Domain] = {
            name: domain if isinstance(domain, Domain) else Fixed(domain)
            for name, domain in params.items()
        }

    def __len__(self) -> int:
        return len(self.params)

    @property
    def names(self) -> list[str]:
        return list(self.params)

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """One configuration; deterministic for a given generator state."""
        return {name: domain.sample(rng) for name, domain in self.params.items()}

    def sample_many(self, seed: int, count: int) -> list[dict[str, Any]]:
        """``count`` configurations from per-trial spawned streams.

        Each configuration is drawn from its *own* child stream, so
        configuration ``i`` is identical whether 5 or 500 trials are
        requested — prefixes of a larger search are free.
        """
        return [self.sample(rng) for rng in spawn_rngs(seed, count)]

    def grid_size(self) -> int:
        return math.prod(len(d.values()) for d in self.params.values())

    def grid(self) -> Iterator[dict[str, Any]]:
        """Every configuration of the cartesian grid, in deterministic
        (first parameter slowest) order.  Raises TypeError if any domain
        is continuous."""
        names = list(self.params)
        value_sets: Sequence[tuple] = [self.params[n].values() for n in names]
        for combo in itertools.product(*value_sets):
            yield dict(zip(names, combo))
