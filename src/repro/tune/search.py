"""Search drivers: grid, random, and successive halving.

Every driver turns a :class:`~repro.tune.space.SearchSpace` into
:class:`~repro.tune.trial.TrialSpec` lists; execution is delegated to a
:class:`~repro.tune.runner.SearchRunner`, so all drivers inherit
parallelism, crash isolation and journal resume.  Per-trial seeds and
configuration draws come from ``SeedSequence`` spawning
(:mod:`repro.tune.space`), which makes every driver deterministic in its
``seed`` — the property the journal-resume guarantee rests on.

:class:`SuccessiveHalving` additionally prunes: trials run rung by rung
with geometrically growing epoch budgets and only the top ``1/eta`` of
each rung is promoted — that synchronized ranking is where the compute
saving comes from.  Promoted re-runs also carry a
:class:`~repro.core.PruneCallback` armed with every earlier rung's
cutoff; with fully deterministic trials a promoted re-run reproduces
its rung prefix and meets every cutoff by construction, so the armed
callback is a divergence guard (nondeterministic backends, edited base
params) rather than the primary pruner.  It becomes the live stopper
when trials continue from checkpoints instead of re-running, and via
``TrialSpec.prune`` it prunes any standalone trial directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from .runner import SearchRunner
from .space import SearchSpace
from .trial import TrialResult, TrialSpec, spec_from_config


def draw_trials(
    space: SearchSpace, seed: int, count: int, prefix: str = "r"
) -> list[tuple[dict[str, Any], int]]:
    """``count`` (configuration, trial_seed) pairs from one root seed.

    Configurations come from per-trial spawned child streams (pair ``i``
    is independent of how many pairs are drawn after it); training seeds
    are id-keyed via :func:`~repro.tune.space.seed_for_trial` on the
    trial's base id ``f"{prefix}{i:03d}"`` — a pure function of identity,
    unaffected by batch composition or the executing worker count, so
    resumed and re-sharded searches reproduce identical trials.
    """
    from .space import seed_for_trial

    pairs: list[tuple[dict[str, Any], int]] = []
    for i, child in enumerate(np.random.SeedSequence(seed).spawn(count)):
        # The config stream is still the child's first split (unchanged
        # across the positional->id-keyed seed migration, so historical
        # searches draw the same configurations).
        config_ss, _ = child.spawn(2)
        config = space.sample(np.random.default_rng(config_ss))
        trial_seed = seed_for_trial(seed, f"{prefix}{i:03d}")
        pairs.append((config, trial_seed))
    return pairs


class GridSearch:
    """Every configuration of the space's cartesian grid, once.

    ``trial_seed`` fixes the training seed shared by all trials (an
    ablation wants the workload constant while the schedule varies);
    pass ``per_trial_seeds=True`` to spawn one seed per grid point
    instead.
    """

    def __init__(
        self,
        space: SearchSpace,
        trial_seed: int = 0,
        per_trial_seeds: bool = False,
        prefix: str = "g",
        **base: Any,
    ) -> None:
        self.space = space
        self.trial_seed = trial_seed
        self.per_trial_seeds = per_trial_seeds
        self.prefix = prefix
        self.base = base

    def specs(self) -> list[TrialSpec]:
        from .space import seed_for_trial

        configs = list(self.space.grid())
        return [
            spec_from_config(
                f"{self.prefix}{i:03d}",
                config,
                seed=(
                    seed_for_trial(self.trial_seed, f"{self.prefix}{i:03d}")
                    if self.per_trial_seeds
                    else self.trial_seed
                ),
                **self.base,
            )
            for i, config in enumerate(configs)
        ]

    def run(self, runner: Optional[SearchRunner] = None) -> list[TrialResult]:
        return (runner or SearchRunner()).run(self.specs())


class RandomSearch:
    """``num_trials`` independent draws from the space."""

    def __init__(
        self,
        space: SearchSpace,
        num_trials: int,
        seed: int = 0,
        prefix: str = "r",
        **base: Any,
    ) -> None:
        if num_trials < 1:
            raise ValueError(f"num_trials must be >= 1, got {num_trials}")
        self.space = space
        self.num_trials = num_trials
        self.seed = seed
        self.prefix = prefix
        self.base = base

    def specs(self) -> list[TrialSpec]:
        return [
            spec_from_config(f"{self.prefix}{i:03d}", config, seed=trial_seed, **self.base)
            for i, (config, trial_seed) in enumerate(
                draw_trials(self.space, self.seed, self.num_trials, self.prefix)
            )
        ]

    def run(self, runner: Optional[SearchRunner] = None) -> list[TrialResult]:
        return (runner or SearchRunner()).run(self.specs())


@dataclass
class HalvingOutcome:
    """Everything a successive-halving run produced.

    ``results`` holds every rung's trial results (rung-major order);
    ``survivors`` the final rung's promoted results, best first;
    ``cutoffs[k]`` the metric bar a trial had to meet at the end of rung
    ``k`` to be promoted.
    """

    rung_budgets: list[int]
    results: list[TrialResult] = field(default_factory=list)
    rungs: list[list[TrialResult]] = field(default_factory=list)
    cutoffs: list[float] = field(default_factory=list)
    survivors: list[TrialResult] = field(default_factory=list)


class SuccessiveHalving:
    """Prune-as-you-go random search (the classic SHA ladder).

    ``num_trials`` configurations start at ``min_epochs``; after each
    rung only the top ``ceil(n / eta)`` by the monitored metric at the
    rung boundary are promoted to an ``eta``-times larger budget, until
    ``max_epochs``.  Promotions re-run from scratch at the larger budget
    (trials are deterministic, so rung prefixes reproduce exactly and
    the journal deduplicates across interrupted searches); each re-run
    carries a :class:`~repro.core.PruneCallback` armed with the earlier
    cutoffs so the engine stops any re-run whose trajectory falls below
    an established bar — with deterministic trials that is a guard
    against divergence (a promoted re-run meets its own cutoffs by
    construction), not the mechanism that saves compute: the rung-level
    promotion is.

    Ties rank deterministically (metric, then trial index); failed or
    too-short trials rank last.
    """

    def __init__(
        self,
        space: SearchSpace,
        num_trials: int,
        seed: int = 0,
        min_epochs: int = 2,
        max_epochs: int = 16,
        eta: int = 2,
        monitor: str = "val_metric",
        mode: str = "max",
        prefix: str = "s",
        **base: Any,
    ) -> None:
        if num_trials < 2:
            raise ValueError(f"need at least 2 trials to halve, got {num_trials}")
        if not 1 <= min_epochs <= max_epochs:
            raise ValueError(
                f"need 1 <= min_epochs <= max_epochs, got {min_epochs}, {max_epochs}"
            )
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if monitor != "val_metric":
            # Rung ranking reads TrialResult.val_metric; other monitors
            # would need their own recorded series.
            raise ValueError("successive halving ranks by 'val_metric' only")
        reserved = {"epochs", "prune"} & set(base)
        if reserved:
            raise ValueError(
                f"{sorted(reserved)} are driver-managed in successive "
                "halving: budgets come from min_epochs/max_epochs and "
                "prune callbacks from the rung cutoffs"
            )
        self.space = space
        self.num_trials = num_trials
        self.seed = seed
        self.min_epochs = min_epochs
        self.max_epochs = max_epochs
        self.eta = eta
        self.monitor = monitor
        self.mode = mode
        self.prefix = prefix
        self.base = base

    def rung_budgets(self) -> list[int]:
        budgets = [self.min_epochs]
        while budgets[-1] < self.max_epochs:
            budgets.append(min(budgets[-1] * self.eta, self.max_epochs))
        return budgets

    def _rank_key(self, result: TrialResult, budget: int, index: int):
        value = result.metric_at(budget)
        if math.isnan(value):
            value = float("-inf") if self.mode == "max" else float("inf")
        ordered = -value if self.mode == "max" else value
        return (ordered, index)

    def run(self, runner: Optional[SearchRunner] = None) -> HalvingOutcome:
        runner = runner or SearchRunner()
        budgets = self.rung_budgets()
        outcome = HalvingOutcome(rung_budgets=budgets)
        # Seeds are keyed on the base id (f"{prefix}{index:03d}", no rung
        # suffix), so a promoted config trains from the same seed at
        # every rung — the determinism the rung-prefix guarantee needs.
        active = list(
            enumerate(
                draw_trials(self.space, self.seed, self.num_trials, self.prefix)
            )
        )
        for rung, budget in enumerate(budgets):
            # Arm earlier rungs' cutoffs (NaN cutoffs — a rung whose
            # worst survivor failed — establish no bar).
            armed = [
                (budgets[k], cutoff)
                for k, cutoff in enumerate(outcome.cutoffs)
                if not math.isnan(cutoff)
            ]
            prune = None
            if armed:
                prune = {
                    "rung_epochs": [epochs for epochs, _ in armed],
                    "thresholds": [cutoff for _, cutoff in armed],
                    "monitor": self.monitor,
                    "mode": self.mode,
                }
            specs = [
                spec_from_config(
                    f"{self.prefix}{index:03d}-r{rung}",
                    config,
                    seed=trial_seed,
                    epochs=budget,
                    prune=prune,
                    **self.base,
                )
                for index, (config, trial_seed) in active
            ]
            results = runner.run(specs)
            outcome.rungs.append(results)
            outcome.results.extend(results)
            ranked = sorted(
                zip((index for index, _ in active), active, results),
                key=lambda row: self._rank_key(row[2], budget, row[0]),
            )
            if rung == len(budgets) - 1:
                keep = max(1, math.ceil(len(ranked) / self.eta))
                outcome.survivors = [result for _, _, result in ranked[:keep]]
                break
            keep = max(1, math.ceil(len(ranked) / self.eta))
            kept = ranked[:keep]
            cutoff = kept[-1][2].metric_at(budget)
            outcome.cutoffs.append(cutoff)
            active = [pair for _, pair, _ in kept]
        return outcome
