"""Bridges copying existing stats objects into the metrics registry.

Each ``bridge_*`` function reads one established accumulator
(``ThroughputTimer``, ``CommStats``, ``WorkspacePool``, fold cache,
native dispatch counts, the adaptive schedule) and pins the
corresponding registry instruments to its **exact** values via
``Counter.set_to`` / ``Gauge.set``.  The original object stays the
source of truth; calling a bridge again re-pins, so bridges are safe to
run every epoch and once more at fit end.

Everything here is duck-typed — arguments are "anything with these
attributes" — so this module imports nothing from the rest of
``repro`` and the instrumented subsystems never import it back.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry, registry as _default_registry


def _reg(reg: Optional[MetricsRegistry]) -> MetricsRegistry:
    return reg if reg is not None else _default_registry()


def bridge_throughput(timer, reg: Optional[MetricsRegistry] = None) -> None:
    """``ThroughputTimer`` -> ``repro_engine_{batches,worker_batches,phase_seconds}``
    labelled by phase."""
    reg = _reg(reg)
    batches = reg.counter(
        "repro_engine_batches", "engine-observed batches per phase"
    )
    worker_batches = reg.counter(
        "repro_engine_worker_batches", "per-worker shard batches per phase"
    )
    seconds = reg.counter(
        "repro_engine_phase_seconds", "engine wall seconds per phase"
    )
    for phase, count in timer.batches.items():
        batches.set_to(count, phase=getattr(phase, "value", phase))
    for phase, count in getattr(timer, "worker_batches", {}).items():
        worker_batches.set_to(count, phase=getattr(phase, "value", phase))
    for phase, secs in timer.seconds.items():
        seconds.set_to(secs, phase=getattr(phase, "value", phase))


def bridge_comm(comm, reg: Optional[MetricsRegistry] = None) -> None:
    """``dist.CommStats`` -> ``repro_dist_*`` counters, one per ledger
    column, pinned to ``comm.totals()`` exactly."""
    reg = _reg(reg)
    totals = comm.totals()
    for key, value in totals.items():
        reg.counter(f"repro_dist_{key}", f"CommStats {key} total").set_to(value)
    ratio = comm.compression_ratio()
    if ratio == ratio:  # skip NaN (no gradient traffic yet)
        reg.gauge(
            "repro_dist_compression_ratio", "measured dense/wire gradient ratio"
        ).set(ratio)


def bridge_workspace(pool, reg: Optional[MetricsRegistry] = None) -> None:
    """``WorkspacePool`` -> ``repro_backend_pool_*``."""
    reg = _reg(reg)
    reg.counter("repro_backend_pool_hits", "workspace pool hits").set_to(pool.hits)
    reg.counter("repro_backend_pool_misses", "workspace pool misses").set_to(
        pool.misses
    )
    reg.gauge(
        "repro_backend_pool_outstanding", "buffers checked out right now"
    ).set(pool.outstanding)
    reg.gauge("repro_backend_pool_parked_bytes", "bytes parked in free lists").set(
        pool.parked_bytes()
    )


def bridge_fold_cache(
    cache, reg: Optional[MetricsRegistry] = None, **labels
) -> None:
    """Fold cache (``nn.passes`` :class:`FoldCache`) -> ``repro_passes_fold_*``
    (label with e.g. ``pass_name=conv_bn_relu`` when bridging several)."""
    reg = _reg(reg)
    reg.counter("repro_passes_fold_hits", "fold-cache hits").set_to(
        cache.hits, **labels
    )
    reg.counter("repro_passes_fold_misses", "fold-cache misses").set_to(
        cache.misses, **labels
    )
    reg.gauge("repro_passes_fold_entries", "live fold-cache entries").set(
        len(cache), **labels
    )


def bridge_fold_pipeline(pipeline, reg: Optional[MetricsRegistry] = None) -> None:
    """Every pass cache in a ``PassPipeline``, labelled by pass name."""
    for pipeline_pass in getattr(pipeline, "passes", ()):
        cache = getattr(pipeline_pass, "cache", None)
        if cache is not None and hasattr(cache, "hits"):
            bridge_fold_cache(
                cache, reg, pass_name=getattr(pipeline_pass, "name", "unknown")
            )


def bridge_native(backend, reg: Optional[MetricsRegistry] = None) -> None:
    """Native backend ``dispatch_counts`` -> ``repro_backend_dispatch``
    labelled (op, path=native|fallback)."""
    reg = _reg(reg)
    dispatch = reg.counter(
        "repro_backend_dispatch", "native-vs-fallback dispatch decisions"
    )
    for op, paths in getattr(backend, "dispatch_counts", {}).items():
        for path, count in paths.items():
            dispatch.set_to(count, op=op, path=path)


def bridge_schedule(schedule, reg: Optional[MetricsRegistry] = None) -> None:
    """Schedule state -> ``repro_schedule_*`` (adaptive MAPE gauge plus
    phase-decision counts when the caller tracks them)."""
    reg = _reg(reg)
    mape = getattr(schedule, "_recent_mape", None)
    if mape is not None:
        reg.gauge(
            "repro_schedule_recent_mape", "adaptive schedule EWMA of predictor MAPE"
        ).set(mape)


def bridge_all(
    *,
    timer=None,
    comm=None,
    pool=None,
    fold_cache=None,
    fold_pipeline=None,
    native=None,
    schedule=None,
    reg: Optional[MetricsRegistry] = None,
) -> None:
    """Run every bridge whose source is provided (``None`` skips)."""
    if timer is not None:
        bridge_throughput(timer, reg)
    if comm is not None:
        bridge_comm(comm, reg)
    if pool is not None:
        bridge_workspace(pool, reg)
    if fold_cache is not None:
        bridge_fold_cache(fold_cache, reg)
    if fold_pipeline is not None:
        bridge_fold_pipeline(fold_pipeline, reg)
    if native is not None:
        bridge_native(native, reg)
    if schedule is not None:
        bridge_schedule(schedule, reg)
