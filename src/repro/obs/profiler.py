"""Opt-in sampling per-op profiler wrapping backend dispatch.

:class:`ProfilingBackend` wraps any registered backend and times each
protocol op (``conv2d_forward``, ``linear_backward``, ``unfold``, ...),
attributing the time to the phase that is running via
:func:`repro.obs.trace.current_phase` — which the engine pushes around
every batch — and accumulating (phase, op) counts and seconds into the
metrics registry as ``repro_backend_op_calls`` / ``repro_backend_op_seconds``.
That is exactly the data behind the paper's Fig. 15 phase×op breakdown,
rendered by ``python -m repro.obs report``.

Sampling: ``sample_every=N`` times only every Nth call of each op (the
untimed calls still run the op, and still count toward picking the next
sample), scaling the recorded seconds by N so totals stay unbiased
estimates.  ``spans=True`` additionally records a tracer span per timed
op call — heavy, but gives op-level rows inside the Chrome trace.

This is the one ``repro.obs`` module that imports from ``repro``: it
subclasses :class:`repro.nn.backend.base.Backend` because
``resolve_backend`` type-checks backend instances.  ``repro.nn`` has no
imports back into ``repro.obs``, so no cycle.
"""

from __future__ import annotations

from typing import Optional

from ..nn.backend.base import Backend
from .metrics import MetricsRegistry, registry as _default_registry
from .trace import Tracer, current_phase, tracer as _default_tracer

#: Protocol ops that get timed; everything else delegates untouched.
PROFILED_OPS = (
    "unfold",
    "fold",
    "conv2d_forward",
    "conv2d_backward",
    "linear_forward",
    "linear_backward",
    "attn_scores",
    "attn_context",
    "attn_context_t",
    "moments",
    "adaptive_avg_pool2d",
    "adaptive_avg_pool2d_backward",
)


def _make_op(op_name: str):
    def timed(self, *args, **kwargs):
        inner_op = getattr(self.inner, op_name)
        self._counts[op_name] = count = self._counts.get(op_name, 0) + 1
        if (count - 1) % self.sample_every != 0:
            result = inner_op(*args, **kwargs)
        else:
            phase = current_phase("untagged")
            clock = self._clock
            if self.spans:
                with self._tracer.span(f"op.{op_name}", phase=phase):
                    start = clock()
                    result = inner_op(*args, **kwargs)
                    elapsed = clock() - start
            else:
                start = clock()
                result = inner_op(*args, **kwargs)
                elapsed = clock() - start
            self._op_calls.inc(self.sample_every, phase=phase, op=op_name)
            self._op_seconds.inc(
                elapsed * self.sample_every, phase=phase, op=op_name
            )
        # Forward conv contexts come back pinned to the inner backend;
        # re-pin to the profiler so the paired backward is timed too.
        if op_name == "conv2d_forward":
            result[1].backend = self
        return result

    timed.__name__ = op_name
    timed.__doc__ = f"Profiled delegate for Backend.{op_name}."
    return timed


class ProfilingBackend(Backend):
    """Time every protocol op of ``inner``, attributed to (phase, op).

    Parameters
    ----------
    inner:
        The backend doing the actual work.
    registry:
        Metrics registry for the (phase, op) counters; defaults to the
        process-global one.
    tracer:
        Tracer for optional op spans and — always — the profiling
        clock, so an injected deterministic clock makes profiled runs
        reproducible.  Defaults to the process-global tracer.
    sample_every:
        Time 1 in N calls per op (recorded values scaled by N).
    spans:
        Also record a tracer span per timed call.
    """

    def __init__(
        self,
        inner: Backend,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        sample_every: int = 1,
        spans: bool = False,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.inner = inner
        self.sample_every = int(sample_every)
        self.spans = bool(spans)
        self._tracer = tracer if tracer is not None else _default_tracer()
        self._clock = self._tracer.clock
        reg = registry if registry is not None else _default_registry()
        self._op_calls = reg.counter(
            "repro_backend_op_calls", "backend op invocations by (phase, op)"
        )
        self._op_seconds = reg.counter(
            "repro_backend_op_seconds", "backend op seconds by (phase, op)"
        )
        self._counts: dict[str, int] = {}

    # -- non-op protocol surface: plain delegation -----------------------
    def acquire_cols(self, *args, **kwargs):
        return self.inner.acquire_cols(*args, **kwargs)

    def release(self, array) -> None:
        self.inner.release(array)

    def clear_workspaces(self) -> None:
        self.inner.clear_workspaces()

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    def fold_pipeline(self):
        return self.inner.fold_pipeline()

    def __getattr__(self, name):
        # Anything outside the protocol (e.g. FusedBackend.pool) passes
        # through so duck-typed consumers see the inner backend's state.
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"ProfilingBackend({self.inner!r}, sample_every={self.sample_every})"


for _op in PROFILED_OPS:
    setattr(ProfilingBackend, _op, _make_op(_op))
del _op
