"""Span-based tracer with phase tags, bounded buffers and exporters.

One :class:`Tracer` records :class:`Span` rows — named intervals tagged
with a training *phase* (``bp`` / ``gp`` / ``predictor_train`` / ``eval``
/ ``comm`` / ``recovery``) — into a bounded in-memory buffer.  Call
sites open spans three ways:

* ``with tracer.span("dist.sync", phase=COMM, nbytes=n):`` — context
  manager (also usable as a decorator via :meth:`Tracer.trace`);
* ``handle = tracer.begin(...)`` / ``tracer.end(handle)`` — split
  open/close for callback pairs (``on_batch_begin``/``on_batch_end``);
* ``tracer.record(name, phase, start, end, ...)`` — pre-measured
  intervals on a caller-supplied clock (the pipeline executor's virtual
  device clocks).

The **disabled path is near-free**: the module-level default tracer is
a shared :data:`NULL_TRACER` whose ``enabled`` flag is ``False``; every
instrumented call site is gated on that one attribute (``span`` returns
one shared reusable no-op context manager, ``begin``/``record`` return
early), so leaving the instrumentation in hot paths costs one branch.

Determinism: the clock is injectable (``Tracer(clock=...)``), so tests
drive spans from a counting fake and the serialized trace is
bit-identical across runs.  The default clock is ``time.perf_counter``
— the one justified raw-clock site the ``obs-discipline`` lint rule
inline-exempts: every other timing in the instrumented subsystems must
route through this module.

This module deliberately imports nothing from the rest of ``repro`` so
any subsystem (core engine, dist, pipeline, backends) can instrument
itself without import cycles.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

#: Canonical phase tags (free-form strings are allowed, these are the
#: vocabulary the report/exporters group by).
BP = "bp"
GP = "gp"
PREDICTOR_TRAIN = "predictor_train"
EVAL = "eval"
COMM = "comm"
RECOVERY = "recovery"
PHASES = (BP, GP, PREDICTOR_TRAIN, EVAL, COMM, RECOVERY)

#: Map engine ``Phase`` enum values onto span phase tags (warm-up runs
#: true backprop, so it is BP time in every paper breakdown).
ENGINE_PHASE_TAGS = {"warmup": BP, "bp": BP, "gp": GP}


def phase_tag(phase) -> str:
    """The span phase tag for an engine ``Phase`` (or any string)."""
    value = getattr(phase, "value", phase)
    return ENGINE_PHASE_TAGS.get(str(value), str(value))


@dataclass
class Span:
    """One completed named interval."""

    name: str
    phase: str
    start: float
    end: float
    track: int = 0  # render lane (pipeline stage, rank, ...)
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        row = {
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
            "track": self.track,
        }
        if self.args:
            row["args"] = self.args
        return row

    @classmethod
    def from_dict(cls, row: dict) -> "Span":
        return cls(
            name=row["name"],
            phase=row.get("phase", ""),
            start=row["start"],
            end=row["end"],
            track=row.get("track", 0),
            args=row.get("args", {}),
        )


class _SpanHandle:
    """Open span state returned by :meth:`Tracer.begin`."""

    __slots__ = ("name", "phase", "start", "track", "args")

    def __init__(self, name: str, phase: str, start: float, track: int, args: dict):
        self.name = name
        self.phase = phase
        self.start = start
        self.track = track
        self.args = args


class _NullContext:
    """Shared reusable no-op context manager (the disabled span)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()

#: Innermost-wins stack of phase tags; lets the op profiler attribute
#: backend work to the phase that is running even when no span is open.
_PHASE_STACK: list[str] = []


def current_phase(default: str = "") -> str:
    """The innermost active phase tag (from :func:`phase_scope` or an
    enabled tracer's phase-tagged spans)."""
    return _PHASE_STACK[-1] if _PHASE_STACK else default


class phase_scope:
    """Context manager pushing a phase tag for :func:`current_phase`.

    Costs one list append/pop — cheap enough for the engine to enter
    around every batch unconditionally, which is what lets the op
    profiler attribute work to phases without tracing enabled.
    """

    __slots__ = ("_tag",)

    def __init__(self, phase) -> None:
        self._tag = phase_tag(phase)

    def __enter__(self) -> str:
        _PHASE_STACK.append(self._tag)
        return self._tag

    def __exit__(self, *exc_info) -> bool:
        _PHASE_STACK.pop()
        return False


class _TracerSpan:
    """Context manager for one enabled span (pushes its phase tag)."""

    __slots__ = ("_tracer", "_handle")

    def __init__(self, tracer: "Tracer", handle: _SpanHandle) -> None:
        self._tracer = tracer
        self._handle = handle

    def __enter__(self) -> _SpanHandle:
        _PHASE_STACK.append(self._handle.phase)
        return self._handle

    def __exit__(self, *exc_info) -> bool:
        _PHASE_STACK.pop()
        self._tracer.end(self._handle)
        return False


class Tracer:
    """Phase-tagged span recorder with a bounded buffer.

    Parameters
    ----------
    clock:
        Zero-argument monotonic time source.  Injecting a deterministic
        fake makes recorded spans bit-identical across runs (the trace
        determinism tests); the default is the process monotonic clock.
    max_spans:
        Buffer bound.  Past it new spans are *dropped* (counted in
        :attr:`dropped`) rather than evicting old ones — the head of a
        trace is what reconciles against History, and an unbounded
        buffer would let a long run eat the heap.
    enabled:
        Initial state; :meth:`enable` / :meth:`disable` flip it.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = 100_000,
        enabled: bool = True,
    ) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock if clock is not None else time.perf_counter  # repro: noqa[obs-discipline] — the tracer IS the clock
        self.max_spans = int(max_spans)
        self.enabled = bool(enabled)
        self.spans: list[Span] = []
        self.dropped = 0

    # -- recording -------------------------------------------------------
    def span(self, name: str, phase: str = "", track: int = 0, **args):
        """Context manager timing one span; no-op when disabled."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _TracerSpan(
            self, _SpanHandle(name, phase, self.clock(), track, args)
        )

    def trace(self, name: str, phase: str = ""):
        """Decorator form of :meth:`span`."""

        def deco(fn):
            def wrapped(*a, **kw):
                with self.span(name, phase=phase):
                    return fn(*a, **kw)

            wrapped.__name__ = getattr(fn, "__name__", name)
            wrapped.__doc__ = fn.__doc__
            return wrapped

        return deco

    def begin(
        self, name: str, phase: str = "", track: int = 0, **args
    ) -> Optional[_SpanHandle]:
        """Open a span; pair with :meth:`end`.  ``None`` when disabled."""
        if not self.enabled:
            return None
        return _SpanHandle(name, phase, self.clock(), track, args)

    def end(self, handle: Optional[_SpanHandle], **extra_args) -> None:
        """Close a span opened by :meth:`begin` (``None`` is a no-op, so
        callers need no disabled-path branch of their own)."""
        if handle is None:
            return
        if extra_args:
            handle.args.update(extra_args)
        self._store(
            Span(
                name=handle.name,
                phase=handle.phase,
                start=handle.start,
                end=self.clock(),
                track=handle.track,
                args=handle.args,
            )
        )

    def record(
        self,
        name: str,
        phase: str,
        start: float,
        end: float,
        track: int = 0,
        **args,
    ) -> None:
        """Store a pre-measured interval (caller-supplied clock, e.g.
        the pipeline executor's virtual device time)."""
        if not self.enabled:
            return
        self._store(Span(name, phase, start, end, track, args))

    def _store(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def clear(self) -> None:
        self.spans = []
        self.dropped = 0

    # -- aggregation -----------------------------------------------------
    def phase_seconds(self) -> dict[str, float]:
        """Total span seconds per phase tag (untagged spans under "")."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.phase] = totals.get(span.phase, 0.0) + span.duration
        return totals

    # -- exporters -------------------------------------------------------
    def to_jsonl(self, path) -> None:
        """One JSON object per line, in recording order — the diffable /
        deterministic format (sorted keys, no timestamps beyond the
        spans' own clock)."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")

    def to_chrome(self, path) -> None:
        """Chrome ``trace_event`` JSON — open in ``about:tracing`` or
        https://ui.perfetto.dev.  Spans become complete ("X") events;
        the phase tag is the category, the track the tid."""
        events = [
            {
                "name": span.name,
                "cat": span.phase or "untagged",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": span.track,
                "args": span.args,
            }
            for span in self.spans
        ]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)


class NullTracer(Tracer):
    """Permanently disabled tracer — the module default, so instrumented
    call sites need no None checks and pay one attribute read when
    tracing is off."""

    def __init__(self) -> None:
        super().__init__(enabled=False, max_spans=1)

    def enable(self) -> "Tracer":
        raise RuntimeError(
            "the shared NULL_TRACER cannot be enabled; install a real "
            "Tracer with repro.obs.set_tracer(Tracer())"
        )


NULL_TRACER = NullTracer()

_tracer: Tracer = NULL_TRACER


def tracer() -> Tracer:
    """The installed process-global tracer (default: :data:`NULL_TRACER`)."""
    return _tracer


def set_tracer(new: Optional[Tracer]) -> Tracer:
    """Install ``new`` as the process-global tracer (``None`` restores
    the null tracer); returns the previously installed one."""
    global _tracer
    previous = _tracer
    _tracer = new if new is not None else NULL_TRACER
    return previous


def load_jsonl(path) -> list[Span]:
    """Read spans back from a :meth:`Tracer.to_jsonl` file."""
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def spans_from_chrome(path) -> list[Span]:
    """Read spans back from a :meth:`Tracer.to_chrome` file."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    spans = []
    for event in data.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        start = event["ts"] / 1e6
        spans.append(
            Span(
                name=event["name"],
                phase=event.get("cat", ""),
                start=start,
                end=start + event.get("dur", 0.0) / 1e6,
                track=event.get("tid", 0),
                args=event.get("args", {}),
            )
        )
    return spans


def iter_spans(source) -> Iterable[Span]:
    """Normalize a tracer / span list / dict list into Span objects."""
    if isinstance(source, Tracer):
        return source.spans
    out = []
    for item in source:
        out.append(item if isinstance(item, Span) else Span.from_dict(item))
    return out
