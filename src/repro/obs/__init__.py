"""Phase-aware observability: tracing, metrics and profiling hooks.

ADA-GP's whole argument is a *phase-time* argument — the paper
attributes wall time to BP vs. GP vs. predictor work per layer and
per pipeline stage.  ``repro.obs`` makes the reproduction
self-measuring along exactly those axes:

* :mod:`~repro.obs.trace` — span-based :class:`Tracer` with phase tags
  (bp / gp / predictor_train / eval / comm / recovery), injectable
  clock for deterministic tests, bounded buffers, JSONL and Chrome
  ``trace_event`` exporters (open in Perfetto / ``about:tracing``).
* :mod:`~repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram``
  registry (names ``repro_<subsystem>_<name>``) with snapshot / delta /
  cross-rank merge semantics.
* :mod:`~repro.obs.bridges` — existing stats (``ThroughputTimer``,
  ``CommStats``, ``WorkspacePool``, fold caches, native dispatch
  counts, schedule MAPE) bridge in rather than being duplicated.
* :mod:`~repro.obs.callbacks` — :class:`TracingCallback` /
  :class:`MetricsCallback` attach at the engine callback seam.
* :mod:`~repro.obs.profiler` — opt-in sampling :class:`ProfilingBackend`
  wrapping any backend for the Fig-15 phase×op breakdown.
* :mod:`~repro.obs.snapshots` — the one throughput aggregation shared
  by ``ThroughputTimer.summary``, the experiment runners and the
  benchmark records.
* ``python -m repro.obs report`` — phase totals, stage occupancy /
  bubble time, phase×op table from a trace + metrics snapshot.

The default tracer is a no-op (:data:`NULL_TRACER`); instrumented hot
paths pay one attribute check until :func:`set_tracer` installs a real
one.
"""

from .bridges import (
    bridge_all,
    bridge_comm,
    bridge_fold_cache,
    bridge_fold_pipeline,
    bridge_native,
    bridge_schedule,
    bridge_throughput,
    bridge_workspace,
)
from .callbacks import MetricsCallback, TracingCallback
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    dump_snapshot,
    load_snapshot,
    merge_snapshots,
    registry,
    set_registry,
)
from .profiler import ProfilingBackend
from .report import (
    phase_op_table,
    phase_totals,
    render_phase_op_table,
    render_phase_totals,
    render_stage_occupancy,
    report_text,
    stage_occupancy,
)
from .snapshots import format_throughput, rate, throughput_snapshot
from .trace import (
    BP,
    COMM,
    EVAL,
    GP,
    NULL_TRACER,
    PHASES,
    PREDICTOR_TRAIN,
    RECOVERY,
    NullTracer,
    Span,
    Tracer,
    current_phase,
    load_jsonl,
    phase_scope,
    phase_tag,
    set_tracer,
    spans_from_chrome,
    tracer,
)

__all__ = [
    "BP",
    "COMM",
    "EVAL",
    "GP",
    "NULL_TRACER",
    "PHASES",
    "PREDICTOR_TRAIN",
    "RECOVERY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCallback",
    "MetricsRegistry",
    "NullTracer",
    "ProfilingBackend",
    "Span",
    "Tracer",
    "TracingCallback",
    "bridge_all",
    "bridge_comm",
    "bridge_fold_cache",
    "bridge_fold_pipeline",
    "bridge_native",
    "bridge_schedule",
    "bridge_throughput",
    "bridge_workspace",
    "current_phase",
    "dump_snapshot",
    "format_throughput",
    "load_jsonl",
    "load_snapshot",
    "merge_snapshots",
    "phase_op_table",
    "phase_scope",
    "phase_tag",
    "phase_totals",
    "rate",
    "registry",
    "render_phase_op_table",
    "render_phase_totals",
    "render_stage_occupancy",
    "report_text",
    "set_registry",
    "set_tracer",
    "spans_from_chrome",
    "stage_occupancy",
    "throughput_snapshot",
    "tracer",
]
