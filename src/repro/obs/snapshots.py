"""Canonical throughput/timing aggregation shared by every reporter.

Before this module, three code paths re-derived "batches per second"
independently — ``ThroughputTimer.summary``, the ``experiments``
runners, and each benchmark's hand-rolled rate math — and could
disagree on rounding, phase filtering, or worker-shard handling.  Now
:func:`throughput_snapshot` is the one place the numbers come from:
``ThroughputTimer.summary`` formats it, ``experiments.runner`` prints
it, and ``benchmarks/_bench_io`` embeds it in ``BENCH_*.json`` — so a
bench record and the engine's own report can never disagree.

Duck-typed like the rest of ``repro.obs``: a "timer" is anything with
``batches`` / ``worker_batches`` / ``seconds`` dicts keyed by phase.
"""

from __future__ import annotations


def _phase_value(phase) -> str:
    return str(getattr(phase, "value", phase))


def throughput_snapshot(timer) -> dict:
    """The canonical per-phase throughput dict.

    ``{phase: {"batches", "worker_batches", "seconds",
    "batches_per_second", "worker_batches_per_second"}}`` — phases with
    zero batches are omitted, rates are ``None`` (JSON-safe, unlike
    NaN) when no time accrued.
    """
    snap: dict[str, dict] = {}
    worker_batches = getattr(timer, "worker_batches", {})
    for phase, count in timer.batches.items():
        if not count:
            continue
        key = _phase_value(phase)
        seconds = timer.seconds.get(phase, 0.0)
        workers = worker_batches.get(phase, count)
        snap[key] = {
            "batches": count,
            "worker_batches": workers,
            "seconds": seconds,
            "batches_per_second": (count / seconds) if seconds > 0 else None,
            "worker_batches_per_second": (
                (workers / seconds) if seconds > 0 else None
            ),
        }
    return snap


def format_throughput(snapshot: dict) -> str:
    """Human-readable one-liner (the ``ThroughputTimer.summary`` format,
    preserved byte-for-byte so logs and tests keep parsing)."""
    parts = []
    for phase, row in snapshot.items():
        rate = row["batches_per_second"]
        rate_text = f"{rate:.2f}" if rate is not None else "nan"
        part = f"{phase}: {rate_text} batches/s ({row['batches']} batches)"
        if row["worker_batches"] != row["batches"]:
            wrate = row["worker_batches_per_second"]
            wrate_text = f"{wrate:.2f}" if wrate is not None else "nan"
            part += f" [{row['worker_batches']} worker shards, {wrate_text}/s]"
        parts.append(part)
    return "throughput — " + ("; ".join(parts) if parts else "no batches")


def rate(snapshot: dict, phase, per_worker: bool = False) -> float:
    """One phase's batches/s out of a snapshot (NaN when absent/timeless)
    — the lookup benchmarks use instead of re-dividing counts."""
    row = snapshot.get(_phase_value(phase))
    if row is None:
        return float("nan")
    value = row["worker_batches_per_second" if per_worker else "batches_per_second"]
    return float("nan") if value is None else value


def total_seconds(snapshot: dict) -> float:
    """Summed measured batch seconds across phases."""
    return sum(row["seconds"] for row in snapshot.values())


def total_batches(snapshot: dict) -> int:
    """Summed batches across phases."""
    return sum(row["batches"] for row in snapshot.values())
