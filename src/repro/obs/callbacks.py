"""Engine callbacks attaching the tracer and metrics registry.

:class:`TracingCallback` opens one span per batch (named
``engine.batch``, phase-tagged from the scheduled phase) plus per-epoch
and per-fit framing spans; :class:`MetricsCallback` counts batches as
they happen and re-runs the stat bridges each epoch end, discovering
the engine's attached accumulators (``ThroughputTimer`` on the callback
list, ``CommStats`` on any dist strategy, backend pool / fold cache /
native dispatch counts, schedule MAPE) so callers attach two callbacks
and get the whole registry populated.

Both are *duck-typed* callbacks — they implement the six hook methods
plus ``state_dict``/``load_state_dict`` without importing
``repro.core`` (``CallbackList`` never type-checks), which keeps
``repro.obs`` import-cycle-free.
"""

from __future__ import annotations

from typing import Optional

from . import bridges
from .metrics import MetricsRegistry, registry as _default_registry
from .trace import Tracer, phase_tag, tracer as _default_tracer


class TracingCallback:
    """Record ``engine.fit`` / ``engine.epoch`` / ``engine.batch`` spans.

    Batch spans carry the scheduled phase tag and, on close, the batch
    loss — so the Chrome trace alone can reconstruct a loss curve.
    Defaults to the process-global tracer; pass an explicit
    :class:`~repro.obs.trace.Tracer` (e.g. with an injected clock) for
    deterministic traces.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer
        self._fit = None
        self._epoch = None
        self._batch = None

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else _default_tracer()

    # -- Callback protocol (duck-typed) ---------------------------------
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass

    def on_fit_begin(self, engine, epochs):
        self._fit = self.tracer.begin("engine.fit", epochs=epochs)

    def on_epoch_begin(self, engine, epoch):
        self._epoch = self.tracer.begin("engine.epoch", epoch=epoch)

    def on_batch_begin(self, engine, epoch, batch_index, phase):
        self._batch = self.tracer.begin(
            "engine.batch",
            phase=phase_tag(phase),
            epoch=epoch,
            batch=batch_index,
        )

    def on_batch_end(self, engine, epoch, batch_index, result):
        tr = self.tracer
        if self._batch is not None and result is not None:
            loss = getattr(result, "loss", None)
            if loss is not None:
                self._batch.args["loss"] = float(loss)
        tr.end(self._batch)
        self._batch = None

    def on_epoch_end(self, engine, epoch, logs):
        self.tracer.end(self._epoch)
        self._epoch = None

    def on_fit_end(self, engine):
        self.tracer.end(self._fit)
        self._fit = None


class MetricsCallback:
    """Populate the metrics registry from a training run.

    Per batch: increments ``repro_engine_batches_live`` (labelled by
    phase) — a counter that exists even when no ``ThroughputTimer`` is
    attached.  Per epoch end and at fit end: runs every applicable
    bridge, discovering sources from the engine —

    * ``ThroughputTimer`` instances on ``engine.callbacks``,
    * ``CommStats`` via a ``comm`` attribute on any strategy,
    * the workspace pool via ``engine.backend.pool``,
    * fold-cache counters via the backend's ``fold_pipeline()`` passes,
    * native dispatch counts via ``engine.backend.dispatch_counts``,
    * ``_recent_mape`` on ``engine.schedule``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else _default_registry()

    # -- Callback protocol (duck-typed) ---------------------------------
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass

    def on_fit_begin(self, engine, epochs):
        pass

    def on_epoch_begin(self, engine, epoch):
        pass

    def on_batch_begin(self, engine, epoch, batch_index, phase):
        pass

    def on_batch_end(self, engine, epoch, batch_index, result):
        phase = getattr(result, "phase", None)
        self.registry.counter(
            "repro_engine_batches_live", "batches seen by MetricsCallback"
        ).inc(phase=phase_tag(phase) if phase is not None else "unknown")

    def on_epoch_end(self, engine, epoch, logs):
        self.bridge(engine)

    def on_fit_end(self, engine):
        self.bridge(engine)

    # -- bridging -------------------------------------------------------
    def bridge(self, engine) -> None:
        """Run every applicable bridge against ``engine``'s state."""
        reg = self.registry
        for callback in getattr(engine.callbacks, "callbacks", []):
            # ThroughputTimer duck-check: the three aggregation dicts.
            if (
                hasattr(callback, "batches")
                and hasattr(callback, "seconds")
                and hasattr(callback, "batches_per_second")
            ):
                bridges.bridge_throughput(callback, reg)
        seen: set[int] = set()
        for strategy in getattr(engine, "strategies", {}).values():
            comm = getattr(strategy, "comm", None)
            if comm is not None and hasattr(comm, "totals") and id(comm) not in seen:
                seen.add(id(comm))
                bridges.bridge_comm(comm, reg)
        backend = getattr(engine, "backend", None)
        pool = getattr(backend, "pool", None)
        if pool is not None and hasattr(pool, "hits"):
            bridges.bridge_workspace(pool, reg)
        if hasattr(backend, "dispatch_counts"):
            bridges.bridge_native(backend, reg)
        fold_pipeline = (
            backend.fold_pipeline() if hasattr(backend, "fold_pipeline") else None
        )
        if fold_pipeline is not None:
            bridges.bridge_fold_pipeline(fold_pipeline, reg)
        schedule = getattr(engine, "schedule", None)
        if schedule is not None:
            bridges.bridge_schedule(schedule, reg)

    def snapshot(self) -> dict:
        return self.registry.snapshot()
