"""CLI: ``python -m repro.obs report trace.jsonl [--metrics snap.json] [--json]``.

Renders the phase breakdown (and, with multi-track spans, stage
occupancy) from a JSONL or Chrome trace, plus the Fig-15-style
phase×op table when a metrics snapshot from a profiled run is given.
"""

from __future__ import annotations

import argparse
import json
import sys

from .metrics import load_snapshot
from .report import phase_op_table, phase_totals, report_text, stage_occupancy
from .trace import iter_spans, load_jsonl, spans_from_chrome


def _load_spans(path: str):
    if path.endswith(".jsonl"):
        return load_jsonl(path)
    return spans_from_chrome(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="phase / op breakdown of a run")
    report.add_argument(
        "trace", nargs="?", help="trace file (.jsonl or Chrome trace .json)"
    )
    report.add_argument(
        "--metrics", help="metrics snapshot JSON (for the phase×op table)"
    )
    report.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    opts = parser.parse_args(argv)

    spans = _load_spans(opts.trace) if opts.trace else None
    snapshot = load_snapshot(opts.metrics) if opts.metrics else None
    if spans is None and snapshot is None:
        parser.error("give a trace file and/or --metrics")

    if opts.json:
        payload = {}
        if spans is not None:
            spans = list(iter_spans(spans))
            payload["phase_totals"] = phase_totals(spans)
            payload["stage_occupancy"] = {
                str(track): row for track, row in stage_occupancy(spans).items()
            }
        if snapshot is not None:
            payload["phase_op"] = phase_op_table(snapshot)
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(report_text(spans, snapshot) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
