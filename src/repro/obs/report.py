"""Reports over traces and metric snapshots (Fig-15-style breakdowns).

Pure functions from spans / snapshots to plain dicts plus text
renderers, shared by ``python -m repro.obs report``, the examples and
the tests.  The phase×op table mirrors the source paper's Fig. 15: for
each training phase, where did the backend time go per op?
"""

from __future__ import annotations

from .trace import iter_spans


def phase_totals(spans) -> dict[str, float]:
    """Total span seconds per phase tag."""
    totals: dict[str, float] = {}
    for span in iter_spans(spans):
        totals[span.phase] = totals.get(span.phase, 0.0) + span.duration
    return totals


def phase_op_table(snapshot: dict) -> dict[str, dict[str, dict[str, float]]]:
    """``{phase: {op: {"calls", "seconds"}}}`` from a metrics snapshot
    holding the profiler's ``repro_backend_op_*`` counters."""
    table: dict[str, dict[str, dict[str, float]]] = {}

    def _fold(metric: str, field: str) -> None:
        entry = snapshot.get(metric)
        if not entry:
            return
        for label, value in entry["series"].items():
            parts = dict(part.split("=", 1) for part in label.split(",") if "=" in part)
            phase, op = parts.get("phase", "untagged"), parts.get("op", "?")
            cell = table.setdefault(phase, {}).setdefault(
                op, {"calls": 0.0, "seconds": 0.0}
            )
            cell[field] += value

    _fold("repro_backend_op_calls", "calls")
    _fold("repro_backend_op_seconds", "seconds")
    return table


def render_phase_op_table(table: dict) -> str:
    """ASCII phase×op breakdown, ops sorted by descending seconds."""
    lines = []
    for phase in sorted(table):
        ops = table[phase]
        phase_seconds = sum(cell["seconds"] for cell in ops.values())
        lines.append(f"phase {phase or 'untagged'} — {phase_seconds:.4f}s backend time")
        for op, cell in sorted(
            ops.items(), key=lambda item: -item[1]["seconds"]
        ):
            share = (
                cell["seconds"] / phase_seconds * 100 if phase_seconds > 0 else 0.0
            )
            lines.append(
                f"  {op:<28s} {cell['seconds']:>10.4f}s "
                f"{share:>5.1f}%  ({int(cell['calls'])} calls)"
            )
    return "\n".join(lines) if lines else "no profiled ops (profiler not attached?)"


def render_phase_totals(totals: dict[str, float]) -> str:
    grand = sum(totals.values())
    lines = [f"span time by phase — {grand:.4f}s total"]
    for phase, seconds in sorted(totals.items(), key=lambda item: -item[1]):
        share = seconds / grand * 100 if grand > 0 else 0.0
        lines.append(f"  {phase or 'untagged':<18s} {seconds:>10.4f}s {share:>5.1f}%")
    return "\n".join(lines)


def stage_occupancy(spans) -> dict[int, dict[str, float]]:
    """Per-track (pipeline stage / device) busy time and bubble share.

    For each track: ``busy`` is summed span time, ``span`` is the
    track's first-start-to-last-end window, ``occupancy`` their ratio
    and ``bubble`` the idle remainder — the quantity the Fig-20
    pipeline argument is about (GP streams exist to fill bubbles).
    """
    windows: dict[int, list[float]] = {}
    busy: dict[int, float] = {}
    for span in iter_spans(spans):
        window = windows.get(span.track)
        if window is None:
            windows[span.track] = [span.start, span.end]
        else:
            window[0] = min(window[0], span.start)
            window[1] = max(window[1], span.end)
        busy[span.track] = busy.get(span.track, 0.0) + span.duration
    out = {}
    for track, (start, end) in sorted(windows.items()):
        window_s = end - start
        occupancy = busy[track] / window_s if window_s > 0 else 1.0
        out[track] = {
            "busy": busy[track],
            "window": window_s,
            "occupancy": occupancy,
            "bubble": max(0.0, window_s - busy[track]),
        }
    return out


def render_stage_occupancy(occupancy: dict[int, dict[str, float]]) -> str:
    lines = ["stage occupancy (busy / window, bubble = idle)"]
    for track, row in occupancy.items():
        lines.append(
            f"  device {track}: {row['occupancy'] * 100:5.1f}% busy "
            f"({row['busy']:.4f}s of {row['window']:.4f}s, "
            f"bubble {row['bubble']:.4f}s)"
        )
    return "\n".join(lines)


def report_text(spans=None, snapshot: dict = None) -> str:
    """The full ``python -m repro.obs report`` body for whatever inputs
    are available."""
    sections = []
    if spans is not None:
        spans = list(iter_spans(spans))
        if spans:
            sections.append(render_phase_totals(phase_totals(spans)))
            if len({span.track for span in spans}) > 1:
                sections.append(render_stage_occupancy(stage_occupancy(spans)))
    if snapshot is not None:
        table = phase_op_table(snapshot)
        if table:
            sections.append(render_phase_op_table(table))
    return "\n\n".join(sections) if sections else "nothing to report"
