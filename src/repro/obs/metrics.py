"""Metrics registry: counters, gauges, histograms with label sets.

Naming follows ``repro_<subsystem>_<name>`` (enforced by a regex at
registration) so a snapshot is self-describing: ``repro_dist_grad_wire_bytes``,
``repro_backend_pool_hits``, ``repro_engine_batches``.  Existing stats
objects (``CommStats``, ``WorkspacePool``, ``ThroughputTimer``, ...)
**bridge into** the registry — they stay the source of truth and the
bridge copies their values with :meth:`Counter.set_to`, which is what
makes "metrics snapshot comm counters equal ``CommStats`` exactly" an
achievable invariant rather than two accumulators drifting apart.

Semantics:

* :class:`Counter` — monotone totals; ``merge`` sums across ranks.
* :class:`Gauge` — last-write-wins point-in-time values; ``merge``
  keeps ``self``'s value (rank-local level, e.g. outstanding buffers).
* :class:`Histogram` — fixed-bucket counts + sum/count; ``merge`` sums.

``snapshot()`` returns a plain nested dict (JSON-ready), ``delta()``
subtracts an earlier snapshot (gauges pass through), and
``merge_snapshots`` folds per-rank snapshots into cluster totals with
the same per-type rules — so a W=2 run merged equals one serial run's
accounting when the underlying work is identical.

Like ``trace``, this module imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Mapping, Optional, Sequence

_NAME_RE = re.compile(r"^repro_[a-z0-9]+(_[a-z0-9]+)+$")

#: Default histogram buckets — powers of 4 from 1µs to ~4s, a decent
#: spread for op/step latencies in seconds.
DEFAULT_BUCKETS = tuple(4.0**e for e in range(-10, 2))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} does not match repro_<subsystem>_<name> "
            "(lowercase, underscore-separated, at least three segments "
            "counting the repro_ prefix)"
        )
    return name


def _label_key(labels: Optional[Mapping[str, object]]) -> tuple:
    """Canonical hashable key for a label set (sorted (k, str(v)) pairs)."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared per-name state: a dict of label-key -> series."""

    kind = "abstract"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = _check_name(name)
        self.description = description
        self._series: dict[tuple, object] = {}

    def labels_seen(self) -> list[tuple]:
        return sorted(self._series)

    def _snap_value(self, value):
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "series": {
                _format_labels(key): self._snap_value(value)
                for key, value in sorted(self._series.items())
            },
        }


def _format_labels(key: tuple) -> str:
    """Stable string form of a label key: ``""`` or ``k=v,k2=v2``."""
    return ",".join(f"{k}={v}" for k, v in key)


def parse_labels(text: str) -> tuple:
    """Inverse of :func:`_format_labels`."""
    if not text:
        return ()
    return tuple(tuple(part.split("=", 1)) for part in text.split(","))


class Counter(_Instrument):
    """Monotone total. ``inc`` adds; ``set_to`` pins to an external
    accumulator's exact value (bridging), still monotone-checked."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def set_to(self, value: float, **labels) -> None:
        key = _label_key(labels)
        current = self._series.get(key, 0)
        if value < current:
            raise ValueError(
                f"counter {self.name}{dict(labels)} cannot move backwards: "
                f"{current} -> {value}"
            )
        self._series[key] = value

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        return sum(self._series.values())

    def _snap_value(self, value):
        return value


class Gauge(_Instrument):
    """Point-in-time level; last write wins."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = value

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0)

    def _snap_value(self, value):
        return value


class Histogram(_Instrument):
    """Fixed-bucket histogram with sum and count per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, description)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self._series[key] = series
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series["counts"][idx] += 1
        series["sum"] += value
        series["count"] += 1

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series["sum"] if series else 0.0

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series["count"] if series else 0

    def _snap_value(self, value):
        return {
            "counts": list(value["counts"]),
            "sum": value["sum"],
            "count": value["count"],
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named instrument store with snapshot/delta/merge semantics.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with the same name return the same instrument, so bridges and
    callbacks can look instruments up without threading references.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, description, **kwargs)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"requested {cls.kind}"
            )
        return inst

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def clear(self) -> None:
        self._instruments = {}

    # -- snapshot / delta ------------------------------------------------
    def snapshot(self) -> dict:
        """Plain nested dict: ``{name: {"kind": ..., "series": {...}}}``."""
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._instruments.items())
        }

    @staticmethod
    def delta(later: dict, earlier: dict) -> dict:
        """``later - earlier`` per series; counters/histograms subtract,
        gauges pass through ``later`` unchanged."""
        out = {}
        for name, entry in later.items():
            kind = entry["kind"]
            base = earlier.get(name, {"series": {}})
            series_out = {}
            for label, value in entry["series"].items():
                prev = base["series"].get(label)
                if kind == "gauge" or prev is None:
                    series_out[label] = value
                elif kind == "histogram":
                    series_out[label] = {
                        "counts": [
                            a - b
                            for a, b in zip(value["counts"], prev["counts"])
                        ],
                        "sum": value["sum"] - prev["sum"],
                        "count": value["count"] - prev["count"],
                        "buckets": list(value["buckets"]),
                    }
                else:
                    series_out[label] = value - prev
            out[name] = {"kind": kind, "series": series_out}
        return out


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold per-rank snapshots into cluster totals.

    Counters and histograms sum element-wise; gauges keep the first
    rank's value (rank-local levels do not aggregate meaningfully — a
    merged "outstanding buffers" total would describe no real process).
    """
    merged: dict = {}
    for snap in snapshots:
        for name, entry in snap.items():
            kind = entry["kind"]
            target = merged.setdefault(name, {"kind": kind, "series": {}})
            if target["kind"] != kind:
                raise TypeError(
                    f"metric {name!r} has conflicting kinds across ranks: "
                    f"{target['kind']} vs {kind}"
                )
            for label, value in entry["series"].items():
                existing = target["series"].get(label)
                if existing is None:
                    target["series"][label] = (
                        dict(value) if isinstance(value, dict) else value
                    )
                elif kind == "gauge":
                    pass  # first rank wins
                elif kind == "histogram":
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], value["counts"])
                    ]
                    existing["sum"] += value["sum"]
                    existing["count"] += value["count"]
                else:
                    target["series"][label] = existing + value
    return merged


def dump_snapshot(snapshot: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)


def load_snapshot(path) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (bridges and callbacks default to it)."""
    return _registry


def set_registry(new: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install a fresh global registry (``None`` -> new empty one);
    returns the previous registry (tests swap and restore)."""
    global _registry
    previous = _registry
    _registry = new if new is not None else MetricsRegistry()
    return previous
