"""The shared finding record every analysis pass emits.

One schema serves the AST linter, the static shape checker and the CLI:
``(file, line, rule, message)``.  ``file`` is a repo-relative POSIX
path so findings are stable across machines, which is what lets the
committed baseline grandfather a finding without pinning it to a line
number (lines drift on every unrelated edit; file+rule+message do not).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class Finding:
    """One analysis finding, machine-readable and baseline-able."""

    file: str
    line: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        return asdict(self)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching — deliberately excludes
        the line number so grandfathered findings survive edits
        elsewhere in the file."""
        return (self.file, self.rule, self.message)

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
