"""Static analysis for the repro codebase.

Three passes, one CLI (``python -m repro.analysis [--json] [lint|shapes|all]``):

* :mod:`repro.analysis.lint` — AST invariant linter enforcing the
  conventions PRs 2–6 made correctness depend on.
* :mod:`repro.analysis.shapes` — static shape checker that validates
  every registered :class:`~repro.models.specs.ModelSpec` (and live
  module graphs) without running a single GEMM.
* The sanitizer build variant (``REPRO_NATIVE_SANITIZE=1``) lives in
  :mod:`repro.nn.backend.native_build`; CI runs the native kernel
  equivalence tests under ASan/UBSan.
"""

from __future__ import annotations

from .findings import Finding
from .lint import all_rules, lint_paths, lint_source, load_baseline, split_baselined

__all__ = [
    "Finding",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "split_baselined",
]
