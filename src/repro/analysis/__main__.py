"""CLI: ``python -m repro.analysis [--json] [lint|shapes|all]``.

Exit code 1 on any non-baselined finding, 0 otherwise — this is the
blocking CI gate.  ``--json`` emits machine-readable findings
(``file``, ``line``, ``rule``, ``message``) for editors/tooling.
``lint --update-baseline`` regenerates the committed baseline (the
shipped one is empty: fix findings, don't grandfather them).

When ``ruff`` is on PATH, ``lint``/``all`` also run it as the generic
lint floor beneath the repo-specific rules (config in ``ruff.toml``);
when it is not installed the step is skipped with a notice, never an
error — the container toolchain is not required to have it.
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

from .findings import Finding
from .lint import lint_paths, load_baseline, split_baselined, write_baseline
from .shapes import check_all_specs


def _repo_root() -> Path:
    # src/repro/analysis/__main__.py -> repo root three levels up from src.
    return Path(__file__).resolve().parents[3]


def _run_ruff(root: Path) -> tuple[str, list[Finding]]:
    """(status, findings) from ruff; status in ok/failed/skipped."""
    ruff = shutil.which("ruff")
    if ruff is None:
        return "skipped", []
    proc = subprocess.run(
        [ruff, "check", "--output-format", "json", "src", "tests"],
        cwd=root,
        capture_output=True,
        text=True,
    )
    if proc.returncode == 0:
        return "ok", []
    findings = []
    try:
        entries = json.loads(proc.stdout or "[]")
    except json.JSONDecodeError:
        entries = []
    for entry in entries:
        try:
            rel = Path(entry["filename"]).resolve().relative_to(root).as_posix()
        except ValueError:
            rel = entry.get("filename", "?")
        findings.append(
            Finding(
                file=rel,
                line=int(entry.get("location", {}).get("row", 1)),
                rule=f"ruff:{entry.get('code') or 'error'}",
                message=entry.get("message", "ruff finding"),
            )
        )
    if not findings:
        # ruff failed without parseable findings (bad config, crash).
        findings.append(
            Finding(
                file="ruff.toml",
                line=1,
                rule="ruff:error",
                message=(proc.stderr or proc.stdout or "ruff failed").strip(),
            )
        )
    return "failed", findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis: invariant linter + shape checker.",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="all",
        choices=("lint", "shapes", "all"),
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the committed lint baseline from current findings",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root (default: autodetected from the package location)",
    )
    args = parser.parse_args(argv)

    root = (args.root or _repo_root()).resolve()
    notices: list[str] = []
    blocking: list[Finding] = []
    grandfathered: list[Finding] = []

    if args.command in ("lint", "all"):
        findings = lint_paths(root)
        if args.update_baseline:
            path = write_baseline(findings)
            print(f"baseline updated: {path} ({len(findings)} findings)")
            return 0
        new, old = split_baselined(findings, load_baseline())
        blocking.extend(new)
        grandfathered.extend(old)
        ruff_status, ruff_findings = _run_ruff(root)
        blocking.extend(ruff_findings)
        if ruff_status == "skipped":
            notices.append("ruff not installed; generic lint floor skipped")

    if args.command in ("shapes", "all"):
        blocking.extend(check_all_specs())

    if args.as_json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in blocking],
                    "grandfathered": len(grandfathered),
                    "notices": notices,
                },
                indent=2,
            )
        )
    else:
        for finding in blocking:
            print(finding.render())
        for notice in notices:
            print(f"note: {notice}", file=sys.stderr)
        summary = f"{len(blocking)} finding(s)"
        if grandfathered:
            summary += f", {len(grandfathered)} grandfathered"
        print(("FAIL: " if blocking else "OK: ") + summary, file=sys.stderr)

    return 1 if blocking else 0


if __name__ == "__main__":
    raise SystemExit(main())
