"""Static shape checker: validate specs and module graphs without a GEMM.

Two entry points:

* :func:`check_spec` — walks a :class:`~repro.models.specs.ModelSpec`
  layer list and proves (a) each layer's declared output follows from
  its declared input by the conv/pool/linear arithmetic, and (b) each
  layer's declared input is *reachable* from the dataflow so far.  The
  zoo's specs are flat lists with ``set_shape`` splices at branch forks
  and concat merges, so reachability is: sequential (input equals the
  running shape), fork (input equals some earlier activation — a branch
  re-reading the fork point, ResNet downsample shortcuts), or merge
  (input channels are a concat — a subset-sum of earlier activation
  channels at the same spatial size, which must include the running
  shape; YOLO's detection-head routes additionally allow the running
  shape to arrive through a 2x nearest-neighbour upsample).
* :func:`check_module` — symbolically propagates an ``('N', C, H, W)``
  shape through a live :class:`~repro.nn.module.Module` tree by type
  dispatch (Sequential/Residual/ConcatBranches/DenseConcat recurse),
  so a mis-wired model fails in milliseconds instead of at the first
  forward pass.

Both report the **first** inconsistent layer (expected vs declared) —
downstream mismatches are cascades of the first one.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Union

from .findings import Finding

#: Symbolic batch dimension.
N = "N"

Dim = Union[int, str]
Shape = tuple[Dim, ...]


def _fmt(shape: Sequence[Dim]) -> str:
    return "(" + ", ".join(str(d) for d in shape) + ")"


# ----------------------------------------------------------------------
# Spec checking.
# ----------------------------------------------------------------------
def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _subset_sum(target: int, values: Iterable[int]) -> bool:
    """Whether ``target`` is a sum of a sub-multiset of ``values``."""
    if target == 0:
        return True
    if target < 0:
        return False
    reachable = {0}
    for value in values:
        if value <= 0 or value > target:
            continue
        reachable |= {r + value for r in reachable if r + value <= target}
        if target in reachable:
            return True
    return target in reachable


def check_spec(spec) -> list[Finding]:
    """Validate one ModelSpec; empty list means consistent."""
    from repro.models.specs import LayerKind

    findings: list[Finding] = []

    def fail(index: int, layer, message: str) -> list[Finding]:
        findings.append(
            Finding(
                file=f"spec:{spec.name}",
                line=index + 1,
                rule="shape-spec",
                message=f"layer {index + 1} '{layer.name}' ({layer.kind.value}): "
                + message,
            )
        )
        return findings

    # Attention specs (Transformer) are not a single dataflow chain —
    # q/k/v read the same input and the score/context matmuls consume
    # pairs of intermediates — so only per-layer arithmetic is checked.
    chain = not any(layer.kind == LayerKind.MATMUL for layer in spec.layers)

    cur: tuple[int, int, int] = spec.input_shape
    seen: list[tuple[int, int, int]] = [cur]

    for index, layer in enumerate(spec.layers):
        # ------------------------------------------------ internal checks
        if layer.kind in (LayerKind.CONV, LayerKind.DEPTHWISE_CONV, LayerKind.POOL):
            if layer.stride <= 0:
                return fail(index, layer, f"stride must be positive, got {layer.stride}")
            expect_h = _conv_out(
                layer.in_h, layer.kernel_h_eff, layer.stride, layer.padding
            )
            expect_w = _conv_out(
                layer.in_w, layer.kernel_w_eff, layer.stride, layer.padding_w_eff
            )
            if (layer.out_h, layer.out_w) != (expect_h, expect_w):
                return fail(
                    index,
                    layer,
                    f"output spatial size should be {expect_h}x{expect_w} "
                    f"(in {layer.in_h}x{layer.in_w}, k={layer.kernel_h_eff}"
                    f"x{layer.kernel_w_eff}, s={layer.stride}, "
                    f"p={layer.padding}/{layer.padding_w_eff}) but spec "
                    f"declares {layer.out_h}x{layer.out_w}",
                )
            if layer.kind == LayerKind.POOL and layer.out_channels != layer.in_channels:
                return fail(
                    index,
                    layer,
                    f"pool must preserve channels: in {layer.in_channels} "
                    f"vs out {layer.out_channels}",
                )
            if (
                layer.kind == LayerKind.DEPTHWISE_CONV
                and layer.out_channels != layer.in_channels
            ):
                return fail(
                    index,
                    layer,
                    f"depthwise conv must preserve channels: in "
                    f"{layer.in_channels} vs out {layer.out_channels}",
                )
        elif layer.kind in (LayerKind.NORM, LayerKind.ACT):
            if (layer.out_channels, layer.out_h, layer.out_w) != (
                layer.in_channels,
                layer.in_h,
                layer.in_w,
            ):
                return fail(index, layer, "norm/act layers must preserve shape")
        if layer.in_channels < 0 or layer.out_channels <= 0:
            return fail(
                index,
                layer,
                f"channel counts must be positive: in {layer.in_channels}, "
                f"out {layer.out_channels}",
            )

        if not chain:
            continue

        # --------------------------------------------------- chain checks
        declared = (layer.in_channels, layer.in_h, layer.in_w)
        if layer.kind == LayerKind.LINEAR:
            flat = cur[0] * cur[1] * cur[2]
            if layer.in_channels != flat:
                return fail(
                    index,
                    layer,
                    f"linear in_features {layer.in_channels} != flattened "
                    f"running shape {_fmt(cur)} = {flat}",
                )
            cur = (layer.out_channels, 1, 1)
            seen.append(cur)
            continue

        ok = declared == cur or declared in seen
        merged = False
        if not ok:
            # Concat merge: channels at this spatial size (directly or
            # via a 2x upsample of the running shape) must sum to the
            # declared input channels, and must include the running
            # shape — a merge that drops the branch just produced is a
            # wiring bug, not a concat.
            spatial = (layer.in_h, layer.in_w)
            if (cur[1], cur[2]) == spatial:
                contrib = cur[0]
            elif (cur[1] * 2, cur[2] * 2) == spatial:
                contrib = cur[0]  # nearest-neighbour 2x upsample route
            else:
                contrib = None
            if contrib is not None:
                others = [
                    shape[0]
                    for shape in seen[:-1]  # seen[-1] is cur itself
                    if (shape[1], shape[2]) == spatial
                    or (shape[1] * 2, shape[2] * 2) == spatial
                ]
                ok = merged = _subset_sum(layer.in_channels - contrib, others)
        if not ok:
            return fail(
                index,
                layer,
                f"declared input {_fmt(declared)} is unreachable: running "
                f"shape is {_fmt(cur)} and no fork/concat of earlier "
                "activations produces it",
            )

        if merged:
            # The concat result is a real activation other branches of
            # the next block will re-read as their fork point.
            seen.append(declared)
        cur = (layer.out_channels, layer.out_h, layer.out_w)
        seen.append(cur)

    return findings


def check_all_specs(dataset: Optional[str] = None) -> list[Finding]:
    """check_spec over every registered zoo spec (all datasets by default)."""
    from repro.models import spec_registry

    findings: list[Finding] = []
    datasets = [dataset] if dataset else list(spec_registry.DATASETS)
    for ds in datasets:
        for spec in spec_registry.all_specs(ds).values():
            findings.extend(check_spec(spec))
    # Transformer / YOLO are buildable via spec_for but (depending on
    # registry wiring) may not be in all_specs; include them explicitly.
    for extra in ("Transformer", "YOLO-v3"):
        try:
            spec = spec_registry.spec_for(extra, "ImageNet")
        except (KeyError, ValueError):
            continue
        findings.extend(check_spec(spec))
    return findings


# ----------------------------------------------------------------------
# Module checking.
# ----------------------------------------------------------------------
class _ShapeError(Exception):
    def __init__(self, where: str, message: str) -> None:
        super().__init__(message)
        self.where = where
        self.message = message


def _require_rank(shape: Shape, rank: int, where: str, what: str) -> None:
    if len(shape) != rank:
        raise _ShapeError(
            where, f"{what} expects rank-{rank} input, got {_fmt(shape)}"
        )


def _propagate(module, shape: Shape, where: str) -> Shape:
    """Symbolic output shape of ``module`` on ``shape``.

    Unknown module types propagate the shape unchanged — the checker is
    conservative: it only reports inconsistencies it can prove.
    """
    from repro.nn import layers as L

    if isinstance(module, L.Sequential):
        for i, child in enumerate(module.layers):
            shape = _propagate(child, shape, f"{where}.layers[{i}]")
        return shape

    if isinstance(module, L.Residual):
        main = _propagate(module.main, shape, f"{where}.main")
        short = _propagate(module.shortcut, shape, f"{where}.shortcut")
        if main != short:
            raise _ShapeError(
                where,
                f"residual branches disagree: main {_fmt(main)} vs "
                f"shortcut {_fmt(short)}",
            )
        return main

    if isinstance(module, L.ConcatBranches):
        outs = [
            _propagate(branch, shape, f"{where}.branches[{i}]")
            for i, branch in enumerate(module.branches)
        ]
        first = outs[0]
        for i, out in enumerate(outs[1:], start=1):
            if len(out) != len(first) or out[0] != first[0] or out[2:] != first[2:]:
                raise _ShapeError(
                    where,
                    f"concat branches disagree outside the channel axis: "
                    f"branch 0 {_fmt(first)} vs branch {i} {_fmt(out)}",
                )
        channels = sum(out[1] for out in outs)
        return (first[0], channels) + tuple(first[2:])

    if isinstance(module, L.DenseConcat):
        out = _propagate(module.main, shape, f"{where}.main")
        if len(out) != len(shape) or out[0] != shape[0] or out[2:] != shape[2:]:
            raise _ShapeError(
                where,
                f"dense concat main branch changes non-channel dims: "
                f"input {_fmt(shape)} vs main {_fmt(out)}",
            )
        return (shape[0], shape[1] + out[1]) + tuple(shape[2:])

    if isinstance(module, L.Conv2d):
        _require_rank(shape, 4, where, "Conv2d")
        if shape[1] != module.in_channels:
            raise _ShapeError(
                where,
                f"Conv2d expects {module.in_channels} channels, input has "
                f"{shape[1]}",
            )
        out_h = _conv_out(shape[2], module.kernel_size, module.stride, module.padding)
        out_w = _conv_out(shape[3], module.kernel_size, module.stride, module.padding)
        if out_h <= 0 or out_w <= 0:
            raise _ShapeError(
                where,
                f"Conv2d output spatial size {out_h}x{out_w} is empty for "
                f"input {_fmt(shape)}",
            )
        return (shape[0], module.out_channels, out_h, out_w)

    if isinstance(module, (L.MaxPool2d, L.AvgPool2d)):
        _require_rank(shape, 4, where, type(module).__name__)
        out_h = _conv_out(shape[2], module.kernel_size, module.stride, module.padding)
        out_w = _conv_out(shape[3], module.kernel_size, module.stride, module.padding)
        if out_h <= 0 or out_w <= 0:
            raise _ShapeError(
                where,
                f"{type(module).__name__} output {out_h}x{out_w} is empty "
                f"for input {_fmt(shape)}",
            )
        return (shape[0], shape[1], out_h, out_w)

    if isinstance(module, L.AdaptiveAvgPool2d):
        _require_rank(shape, 4, where, "AdaptiveAvgPool2d")
        return (shape[0], shape[1]) + tuple(module.output_size)

    if isinstance(module, L.GlobalAvgPool2d):
        _require_rank(shape, 4, where, "GlobalAvgPool2d")
        return (shape[0], shape[1])

    if isinstance(module, L.BatchNorm2d):
        _require_rank(shape, 4, where, "BatchNorm2d")
        if shape[1] != module.num_features:
            raise _ShapeError(
                where,
                f"BatchNorm2d expects {module.num_features} channels, "
                f"input has {shape[1]}",
            )
        return shape

    if isinstance(module, L.BatchNorm1d):
        if len(shape) < 2 or shape[1] != module.num_features:
            raise _ShapeError(
                where,
                f"BatchNorm1d expects feature dim {module.num_features}, "
                f"input is {_fmt(shape)}",
            )
        return shape

    if isinstance(module, L.LayerNorm):
        if not shape or shape[-1] != module.normalized_shape:
            raise _ShapeError(
                where,
                f"LayerNorm expects last dim {module.normalized_shape}, "
                f"input is {_fmt(shape)}",
            )
        return shape

    if isinstance(module, L.Linear):
        if not shape or shape[-1] != module.in_features:
            raise _ShapeError(
                where,
                f"Linear expects last dim {module.in_features}, input is "
                f"{_fmt(shape)}",
            )
        return tuple(shape[:-1]) + (module.out_features,)

    if isinstance(module, L.Flatten):
        if len(shape) < 2:
            raise _ShapeError(where, f"Flatten expects rank >= 2, got {_fmt(shape)}")
        tail = shape[1:]
        if any(isinstance(d, str) for d in tail):
            raise _ShapeError(
                where, f"Flatten cannot fold symbolic dims {_fmt(shape)}"
            )
        return (shape[0], math.prod(tail))

    # Identity, Dropout, activations, and anything this checker does not
    # model: shape-preserving by assumption.
    return shape


def check_module(model, input_shape: Sequence[int]) -> list[Finding]:
    """Symbolically shape-check a live module tree.

    ``input_shape`` excludes the batch dim — pass ``(3, 32, 32)`` for a
    CIFAR CNN; the batch stays symbolic.
    """
    name = type(model).__name__
    shape: Shape = (N, *input_shape)
    try:
        _propagate(model, shape, name)
    except _ShapeError as exc:
        return [
            Finding(
                file=f"module:{name}",
                line=0,
                rule="shape-module",
                message=f"{exc.where}: {exc.message}",
            )
        ]
    return []
