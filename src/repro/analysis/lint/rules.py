"""The built-in invariant rules.

Each rule encodes one convention a past PR made correctness depend on;
the table in DESIGN.md ("Static analysis & enforced invariants") maps
every rule back to the PR that introduced its invariant and the bug
class it prevents.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from . import FileContext, Rule, register_rule

_NUMPY_NAMES = {"np", "numpy"}

#: The hot contraction entry points that must go through the backend.
_DISPATCHED_OPS = {"matmul", "einsum", "tensordot", "dot", "inner", "vdot"}

#: ``np.random`` members that construct independent generators (fine)
#: as opposed to drawing from the shared global stream (the PR-2 bug).
_RNG_CONSTRUCTORS = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _is_numpy_attr(node: ast.AST, attrs: set[str]) -> Optional[str]:
    """``np.<attr>`` / ``numpy.<attr>`` with attr in ``attrs``, or None."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_NAMES
    ):
        return node.attr
    return None


def _walk_skipping_functions(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class
    definitions (those are visited as their own units)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class BackendDispatchRule(Rule):
    """Hot tensor contractions in layer-level code must dispatch through
    ``current_backend()`` (PR 3) — a direct ``np.matmul`` silently runs
    on the wrong substrate when a phase/engine backend override is
    active, and never benefits from fused/native kernels."""

    name = "backend-dispatch"
    description = (
        "no direct np.matmul/einsum/tensordot/@ on hot paths; "
        "route through current_backend()"
    )
    scope = (
        "src/repro/nn/layers/",
        "src/repro/nn/functional.py",
        "src/repro/nn/passes/",
    )

    def visit(self, tree: ast.AST, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            op: Optional[str] = None
            if isinstance(node, ast.Call):
                name = _is_numpy_attr(node.func, _DISPATCHED_OPS)
                if name:
                    op = f"np.{name}()"
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                op = "the @ matmul operator"
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.MatMult
            ):
                op = "the @= matmul operator"
            if op:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"direct use of {op} in backend-scoped code; "
                        "dispatch through current_backend() so phase/engine "
                        "backend overrides apply (DESIGN.md §7)",
                    )
                )
        return findings


class CacheNamingRule(Rule):
    """Forward state consumed by backward must be ``_cache*``-prefixed or
    listed in ``_extra_cache_attrs`` (PR 3/4) — anything else is invisible
    to ``Module.clear_caches()`` and stays pinned between batches."""

    name = "cache-naming"
    description = (
        "attrs written in forward() and read in backward() must be "
        "_cache*-prefixed or declared in _extra_cache_attrs"
    )
    scope = ("src/",)

    _FORWARD = ("forward", "attend")
    _BACKWARD = ("backward", "backward_attend")

    @classmethod
    def _is_forward(cls, name: str) -> bool:
        return name in cls._FORWARD or name.startswith("_forward")

    @classmethod
    def _is_backward(cls, name: str) -> bool:
        return name in cls._BACKWARD or name.startswith("_backward")

    @staticmethod
    def _extra_cache_attrs(cls_node: ast.ClassDef) -> set[str]:
        declared: set[str] = set()
        for stmt in cls_node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_extra_cache_attrs"
                    and isinstance(value, (ast.Tuple, ast.List))
                ):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            declared.add(element.value)
        return declared

    @staticmethod
    def _self_attr_stores(fn: ast.FunctionDef) -> dict[str, int]:
        stores: dict[str, int] = {}
        for node in _walk_skipping_functions(fn.body):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                stores.setdefault(node.attr, node.lineno)
        return stores

    @staticmethod
    def _self_attr_loads(fn: ast.FunctionDef) -> set[str]:
        loads: set[str] = set()
        for node in _walk_skipping_functions(fn.body):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                loads.add(node.attr)
        return loads

    def visit(self, tree: ast.AST, ctx: FileContext) -> list[Finding]:
        findings = []
        for cls_node in ast.walk(tree):
            if not isinstance(cls_node, ast.ClassDef):
                continue
            extra = self._extra_cache_attrs(cls_node)
            stores: dict[str, int] = {}
            loads: set[str] = set()
            for stmt in cls_node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if self._is_forward(stmt.name):
                    for attr, line in self._self_attr_stores(stmt).items():
                        stores.setdefault(attr, line)
                elif self._is_backward(stmt.name):
                    loads |= self._self_attr_loads(stmt)
            for attr in sorted(stores.keys() & loads):
                if attr.startswith("_cache") or attr in extra:
                    continue
                line = stores[attr]
                findings.append(
                    Finding(
                        file=ctx.path,
                        line=line,
                        rule=self.name,
                        message=(
                            f"{cls_node.name}.{attr} is written in a forward "
                            "method and read in backward, but is neither "
                            "'_cache*'-prefixed nor declared in "
                            "_extra_cache_attrs — Module.clear_caches() will "
                            "never release it (DESIGN.md §8)"
                        ),
                    )
                )
        return findings


class VersionBumpRule(Rule):
    """Every ``<param>.data`` mutation must be followed by
    ``<param>.bump_version()`` in the same function (PR 4/6) — otherwise
    the fold-pass cache serves stale folded conv+BN weights."""

    name = "version-bump"
    description = (
        "mutating <param>.data requires <param>.bump_version() in the "
        "same function"
    )
    scope = ("src/",)

    @staticmethod
    def _data_base(target: ast.expr) -> Optional[ast.expr]:
        """The ``<param>`` expression of a ``<param>.data`` (or
        ``<param>.data[...]``) store target, or None."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr == "data":
            return target.value
        return None

    def visit(self, tree: ast.AST, ctx: FileContext) -> list[Finding]:
        findings = []
        for fn in _functions(tree):
            # Construction is not mutation: Parameter.__init__ sets
            # self.data without a version history to invalidate.
            if fn.name == "__init__":
                continue
            mutations: list[tuple[ast.AST, ast.expr]] = []
            bumps: list[tuple[int, str]] = []
            for node in _walk_skipping_functions(fn.body):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "bump_version"
                    ):
                        bumps.append(
                            (node.lineno, ast.dump(node.func.value))
                        )
                    continue
                for target in targets:
                    base = self._data_base(target)
                    if base is not None:
                        mutations.append((node, base))
            for node, base in mutations:
                key = ast.dump(base)
                covered = any(
                    line >= node.lineno and bumped == key
                    for line, bumped in bumps
                )
                if not covered:
                    owner = ast.unparse(base)
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"{owner}.data is mutated without a following "
                            f"{owner}.bump_version() in {fn.name}(); stale "
                            "Parameter versions serve stale folded weights "
                            "from the fold-pass cache (DESIGN.md §10)",
                        )
                    )
        return findings


class RngDisciplineRule(Rule):
    """No draws from numpy's shared global rng (PR 2) — module-level
    ``np.random.<fn>`` calls collide seeds across layers/workers;
    generators must come from ``nn.init.layer_rng`` or a spawned
    ``SeedSequence``."""

    name = "rng-discipline"
    description = (
        "no np.random.<fn> global-state calls; spawn generators from "
        "SeedSequence/layer_rng"
    )
    scope = ("src/",)

    def visit(self, tree: ast.AST, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr not in _RNG_CONSTRUCTORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in _NUMPY_NAMES
                ):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"np.random.{func.attr}() draws from numpy's "
                            "process-global rng — the PR-2 seed-collision "
                            "bug class; use nn.init.layer_rng or spawn from "
                            "a SeedSequence (DESIGN.md §5)",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _RNG_CONSTRUCTORS:
                            findings.append(
                                ctx.finding(
                                    self,
                                    node,
                                    f"importing numpy.random.{alias.name} "
                                    "exposes the process-global rng; spawn "
                                    "generators from SeedSequence/layer_rng "
                                    "instead (DESIGN.md §5)",
                                )
                            )
        return findings


class NoGradPurityRule(Rule):
    """Code lexically under ``with no_grad():`` must not populate
    ``_cache*`` attributes (PR 4) — forward-only streams are
    allocation-free precisely because nothing retains backward state;
    a real cache written there pins memory *and* lets a later
    ``backward()`` silently consume stale data."""

    name = "no-grad-purity"
    description = "no _cache* attribute assignment under no_grad()"
    scope = ("src/",)

    @staticmethod
    def _is_no_grad_with(node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Name) and func.id == "no_grad":
                    return True
                if isinstance(func, ast.Attribute) and func.attr == "no_grad":
                    return True
        return False

    @staticmethod
    def _is_sentinel(value: ast.expr) -> bool:
        return (isinstance(value, ast.Name) and value.id == "NO_GRAD") or (
            isinstance(value, ast.Attribute) and value.attr == "NO_GRAD"
        )

    def visit(self, tree: ast.AST, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.With) or not self._is_no_grad_with(node):
                continue
            for stmt in _walk_skipping_functions(node.body):
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                if value is not None and self._is_sentinel(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr.startswith(
                        "_cache"
                    ):
                        findings.append(
                            ctx.finding(
                                self,
                                stmt,
                                f"assignment to {ast.unparse(target)} inside "
                                "a no_grad() block: forward-only streams "
                                "must stay cache-free (assign the NO_GRAD "
                                "sentinel instead, DESIGN.md §8)",
                            )
                        )
        return findings


class ObsDisciplineRule(Rule):
    """Instrumentation in hot subsystems must route through ``repro.obs``
    (PR 10) — a bare ``print()`` in the engine/dist/pipeline/backend
    layers is unstructured output no exporter ever sees, and an ad-hoc
    ``time.perf_counter()`` accumulator is a fourth timing aggregation
    waiting to disagree with the tracer.  The tracer's own clock is the
    one justified raw-clock site (inline ``noqa``); pre-obs timers are
    grandfathered in the baseline."""

    name = "obs-discipline"
    description = (
        "no bare print()/ad-hoc time.perf_counter() in hot subsystems; "
        "instrument through repro.obs (spans, metrics, bridges)"
    )
    scope = (
        "src/repro/core/",
        "src/repro/dist/",
        "src/repro/pipeline/",
        "src/repro/nn/backend/",
        "src/repro/obs/",
    )

    def visit(self, tree: ast.AST, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "bare print() in an instrumented subsystem; emit a "
                        "span/metric via repro.obs (or write to an explicit "
                        "stream) so reports stay structured (DESIGN.md §14)",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "perf_counter"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (isinstance(func, ast.Name) and func.id == "perf_counter"):
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "ad-hoc time.perf_counter() timing in an instrumented "
                        "subsystem; open a repro.obs span (or inject the "
                        "tracer clock) so one aggregation owns the numbers "
                        "(DESIGN.md §14)",
                    )
                )
        return findings


for _rule in (
    BackendDispatchRule(),
    CacheNamingRule(),
    VersionBumpRule(),
    RngDisciplineRule(),
    NoGradPurityRule(),
    ObsDisciplineRule(),
):
    register_rule(_rule)
