"""AST-based invariant linter: rule framework, suppressions, baseline.

The repo's correctness conventions (backend dispatch, cache naming,
version bumps, rng discipline, no-grad purity — see DESIGN.md) are
cheap to follow and expensive to violate, because nothing at runtime
checks them: a direct ``np.matmul`` silently ignores the active
backend, an un-prefixed forward cache silently pins memory forever.
This package turns each convention into a :class:`Rule` that inspects
the AST and emits :class:`~repro.analysis.findings.Finding` records.

Mechanics:

* **Rules** implement ``visit(tree, ctx) -> [Finding]`` and declare a
  path ``scope`` (repo-relative prefixes) they apply to.  Every rule
  scoped ``("src/",)`` — cache-naming, version-bump, rng-discipline,
  no-grad-purity — covers the whole ``src/repro`` tree, so subsystems
  added later (``repro.tune``, ``repro.dist``) are linted by
  construction, with no per-package opt-in; only backend-dispatch pins
  explicit hot-path prefixes.
* **Suppression**: append ``# repro: noqa[rule-name]`` (or a bare
  ``# repro: noqa``) to a flagged line; a standalone
  ``# repro: noqa-file[rule-name]`` line suppresses the rule for the
  whole file.  Suppressions are for *justified* exceptions — add a
  reason next to them.
* **Baseline**: a committed JSON file of grandfathered findings
  (matched on file+rule+message, not line, so they survive unrelated
  edits).  ``python -m repro.analysis lint --update-baseline``
  regenerates it.  The shipped baseline is empty: fix findings, don't
  grandfather them.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..findings import Finding

__all__ = [
    "Rule",
    "FileContext",
    "all_rules",
    "register_rule",
    "lint_source",
    "lint_paths",
    "iter_source_files",
    "load_baseline",
    "write_baseline",
    "split_baselined",
    "DEFAULT_BASELINE",
]

#: The committed baseline of grandfathered findings.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?(?:\[(?P<rules>[^\]]+)\])?"
)


class FileContext:
    """Per-file state a rule visits against: path, source, suppressions."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        # line -> set of suppressed rule names ("*" = all rules).
        self._line_suppressions: dict[int, set[str]] = {}
        self._file_suppressions: set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            names = match.group("rules")
            rules = (
                {name.strip() for name in names.split(",") if name.strip()}
                if names
                else {"*"}
            )
            if match.group("file"):
                self._file_suppressions |= rules
            else:
                self._line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, rule: str, line: int) -> bool:
        if self._file_suppressions & {"*", rule}:
            return True
        at_line = self._line_suppressions.get(line, set())
        return bool(at_line & {"*", rule})

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            rule=rule.name,
            message=message,
        )


class Rule:
    """One enforced invariant.

    Subclasses set ``name``/``description``/``scope`` and implement
    :meth:`visit`.  ``scope`` lists repo-relative POSIX path prefixes
    the rule applies to (a file matches when its path starts with any
    prefix); an empty scope means every linted file.
    """

    name: str = ""
    description: str = ""
    scope: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.scope:
            return True
        return any(path.startswith(prefix) for prefix in self.scope)

    def visit(self, tree: ast.AST, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError


_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the default rule set (last registration wins)."""
    if not rule.name:
        raise ValueError(f"rule {type(rule).__name__} has no name")
    _RULES[rule.name] = rule
    return rule


def all_rules() -> list[Rule]:
    """The registered rules, importing the built-ins on first use."""
    from . import rules  # noqa: F401  (registration side effect)

    return [_RULES[name] for name in sorted(_RULES)]


def _select(rules: Optional[Sequence[str]]) -> list[Rule]:
    available = {rule.name: rule for rule in all_rules()}
    if rules is None:
        return list(available.values())
    unknown = sorted(set(rules) - set(available))
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown}; available: {sorted(available)}"
        )
    return [available[name] for name in rules]


def lint_source(
    source: str, path: str, rules: Optional[Sequence[str]] = None
) -> list[Finding]:
    """Lint one source string as if it lived at repo-relative ``path``.

    Suppression comments and rule scopes apply exactly as they do for
    on-disk files, which is what the fixture tests rely on.
    """
    ctx = FileContext(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                file=path,
                line=exc.lineno or 1,
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in _select(rules):
        if not rule.applies_to(path):
            continue
        for finding in rule.visit(tree, ctx):
            if not ctx.suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def iter_source_files(root: Path) -> Iterable[Path]:
    """Python files under ``root/src``, the linter's enforcement surface."""
    src = root / "src"
    base = src if src.is_dir() else root
    for path in sorted(base.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def lint_paths(
    root: Path,
    paths: Optional[Iterable[Path]] = None,
    rules: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint files (default: everything under ``root/src``)."""
    root = Path(root).resolve()
    findings: list[Finding] = []
    for path in paths if paths is not None else iter_source_files(root):
        path = Path(path).resolve()
        rel = path.relative_to(root).as_posix()
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), rel, rules)
        )
    return findings


# ----------------------------------------------------------------------
# Baseline.
# ----------------------------------------------------------------------
def load_baseline(path: Optional[Path] = None) -> set[tuple[str, str, str]]:
    """Baseline keys from ``path`` (missing file = empty baseline)."""
    path = Path(path) if path is not None else DEFAULT_BASELINE
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return {
        (entry["file"], entry["rule"], entry["message"])
        for entry in data.get("findings", [])
    }


def write_baseline(findings: Sequence[Finding], path: Optional[Path] = None) -> Path:
    """Persist ``findings`` as the new baseline (sorted, line-free)."""
    path = Path(path) if path is not None else DEFAULT_BASELINE
    entries = sorted(
        {
            (f.file, f.rule, f.message)
            for f in findings
        }
    )
    payload = {
        "comment": "Grandfathered lint findings; matched on file+rule+message.",
        "findings": [
            {"file": file, "rule": rule, "message": message}
            for file, rule, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def split_baselined(
    findings: Sequence[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, grandfathered)."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.baseline_key() in baseline else new).append(finding)
    return new, old
