"""Deterministic fault injection for the data-parallel transport layer.

:class:`ChaosTransport` wraps any registered transport and injects
faults from a *seeded, reproducible schedule*, so every distributed
failure mode is a test fixture, not a flake.  The five injected kinds
mirror the fault taxonomy in :mod:`repro.dist.transport`:

``kill``
    The worker rank really dies — ``kill_rank`` on the inner transport
    (``Process``: ``SIGKILL``; ``Local``: the replica object is
    dropped), any in-flight reply is drained away, and
    :class:`WorkerDied` is raised.  Recovery must respawn.
``delay``
    The reply exists but arrives late: the first collect raises
    :class:`WorkerTimeout` while the real reply is parked; the *retry*
    collect delivers it.  Exercises the retry-with-backoff path without
    depending on wall-clock timing.
``drop``
    The reply is consumed and discarded; every subsequent collect for
    that command raises :class:`WorkerTimeout` — a permanently lost
    payload, the timeout-escalation fixture.
``corrupt``
    The real reply is run through the genuine CRC32 wire framing with
    one byte flipped (:func:`corrupt_frame`), so the *actual detection
    code path* raises :class:`PayloadCorrupt` — not a simulated error.
``duplicate``
    The reply is delivered normally, then a stale copy of it is queued
    in front of the rank's future replies — the at-least-once-delivery
    fixture the sequence-number dedup must absorb.

Determinism: injections are decided per *collect event* either by an
explicit :class:`Fault` rule list (``rank``/``op``/``nth`` targeted —
the fault-matrix tests) or by per-kind rates drawn from a seeded
``numpy`` Generator whose consumption order is the collect order.  No
injection consults the clock, so a chaos run's fault sequence is a pure
function of (schedule, traffic) — which is what lets the acceptance
tests assert *bitwise* equality between faulted and unfaulted runs.

``ChaosTransport`` composes through the transport registry::

    from repro.dist import ChaosTransport, Fault, ddp_engine

    chaos = ChaosTransport("process", faults=[
        Fault("kill", rank=1, op="compute", nth=3),
    ])
    engine = ddp_engine(model, loss_fn, workers=2, transport=chaos)

The wrapper is built world-size-late (``resolve_transport`` binds it),
so the same chaos spec drops into any ``workers=`` count.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .transport import (
    PayloadCorrupt,
    Transport,
    TransportError,
    WorkerDied,
    WorkerTimeout,
    frame_payload,
    register_transport,
    resolve_transport,
    unframe_payload,
)

#: Injection kinds, in the (fixed, documented) order the seeded sampler
#: consults them — part of the schedule's determinism contract.
FAULT_KINDS = ("kill", "delay", "drop", "corrupt", "duplicate")


def corrupt_frame(frame: bytes, position: Optional[int] = None) -> bytes:
    """Flip one byte of a CRC32 frame (default: middle of the body), so
    :func:`~repro.dist.transport.unframe_payload` must detect it."""
    if position is None:
        position = max(len(frame) - 1, 0) // 2 + 8  # inside the body
        position = min(position, len(frame) - 1)
    corrupted = bytearray(frame)
    corrupted[position] ^= 0xFF
    return bytes(corrupted)


@dataclass
class Fault:
    """One targeted injection rule.

    Fires on the ``nth`` (0-based) *collect event* matching ``rank``
    and ``op`` (the submitted command's ``op``); ``None`` wildcards.
    Each rule fires exactly once.
    """

    kind: str
    rank: Optional[int] = None
    op: Optional[str] = None
    nth: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


@dataclass
class FaultEvent:
    """One injection that actually happened (the chaos ledger's unit)."""

    kind: str
    rank: int
    op: str
    collect_index: int


class ChaosTransport(Transport):
    """Fault-injecting wrapper over any registered transport.

    Parameters
    ----------
    inner:
        Transport spec the chaos wraps — a registered name or an
        instance.  Name specs are resolved when the world size is known
        (:meth:`bind_world`, called by ``resolve_transport``).
    faults:
        Explicit :class:`Fault` rules (deterministic targeting).
    rates:
        ``{kind: probability}`` for seeded random injection, evaluated
        per collect event in :data:`FAULT_KINDS` order (first hit
        wins).  Combines with ``faults`` — rules are checked first.
    seed:
        Seed of the rate sampler; same seed + same traffic = same
        fault sequence, reproducibly.
    """

    def __init__(
        self,
        inner: Union[str, Transport] = "local",
        faults: Iterable[Fault] = (),
        rates: Optional[dict[str, float]] = None,
        seed: int = 0,
        world_size: Optional[int] = None,
    ) -> None:
        # No super().__init__: the world size may be bound later.
        self._inner_spec = inner
        self.inner: Optional[Transport] = None
        # Own copies: matching consumes ``nth``, and the same rule list
        # must be reusable across runs (the determinism tests build two
        # identical chaos schedules from one spec).
        self.faults: list[Fault] = [copy.copy(rule) for rule in faults]
        self.rates = dict(rates or {})
        for kind in self.rates:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._fired: set[int] = set()  # indices into self.faults
        self._collect_index = 0
        #: Injections that actually happened, in order — test probe.
        self.events: list[FaultEvent] = []
        # Per-rank: ops of outstanding (submitted, uncollected) cmds.
        self._outstanding: dict[int, deque] = {}
        # Per-rank: parked replies (delay retries, duplicate stales).
        self._parked: dict[int, deque] = {}
        # Per-rank: a reply was dropped and nothing new submitted yet —
        # retry collects must time out instantly, not re-burn deadlines.
        self._lost: dict[int, bool] = {}
        self.started = False
        if world_size is not None:
            self.bind_world(world_size)
        elif isinstance(inner, Transport):
            self.bind_world(inner.world_size)

    # ------------------------------------------------------------------
    # World binding + plain delegation.
    # ------------------------------------------------------------------
    @property
    def world_size(self) -> Optional[int]:  # type: ignore[override]
        return None if self.inner is None else self.inner.world_size

    @world_size.setter
    def world_size(self, value) -> None:
        # Base-class attribute assignment is absorbed; the inner
        # transport owns the real value.
        pass

    def bind_world(self, world_size: int) -> None:
        if self.inner is not None:
            if self.inner.world_size != world_size:
                raise ValueError(
                    f"chaos transport already bound to world_size "
                    f"{self.inner.world_size}, cannot rebind to {world_size}"
                )
            return
        self.inner = resolve_transport(self._inner_spec, world_size)

    def _require_inner(self) -> Transport:
        if self.inner is None:
            raise TransportError(
                "ChaosTransport is not bound to a world size yet; resolve it "
                "through resolve_transport or pass world_size="
            )
        return self.inner

    def start(self, factory) -> None:
        inner = self._require_inner()
        inner.start(factory)
        for rank in self.worker_ranks:
            self._outstanding.setdefault(rank, deque())
            self._parked.setdefault(rank, deque())
            self._lost.setdefault(rank, False)
        self.started = True

    @property
    def worker_ranks(self) -> range:
        return self._require_inner().worker_ranks

    def alive(self, rank: int) -> bool:
        return self._require_inner().alive(rank)

    def kill_rank(self, rank: int) -> None:
        self._require_inner().kill_rank(rank)

    def respawn_rank(self, rank: int) -> None:
        self._require_inner().respawn_rank(rank)
        # The rank's in-flight traffic died with it.
        self._outstanding[rank] = deque()
        self._parked[rank] = deque()
        self._lost[rank] = False

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()
        self._outstanding.clear()
        self._parked.clear()
        self._lost.clear()
        self.started = False

    # ------------------------------------------------------------------
    # Injection decision.
    # ------------------------------------------------------------------
    def _decide(self, rank: int, op: str) -> Optional[str]:
        """The fault kind to inject on this collect event, if any.

        Consumes rng draws for the rate sampler regardless of rule
        matches, so rule edits never shift the random schedule."""
        index = self._collect_index
        self._collect_index += 1
        sampled: Optional[str] = None
        if self.rates:
            draws = self._rng.random(len(FAULT_KINDS))
            for kind, draw in zip(FAULT_KINDS, draws):
                rate = self.rates.get(kind, 0.0)
                if sampled is None and draw < rate:
                    sampled = kind
        for rule_index, rule in enumerate(self.faults):
            if rule_index in self._fired:
                continue
            if rule.rank is not None and rule.rank != rank:
                continue
            if rule.op is not None and rule.op != op:
                continue
            if rule.nth > 0:
                rule.nth -= 1
                continue
            self._fired.add(rule_index)
            self.events.append(FaultEvent(rule.kind, rank, op, index))
            return rule.kind
        if sampled is not None:
            self.events.append(FaultEvent(sampled, rank, op, index))
        return sampled

    # ------------------------------------------------------------------
    # The wrapped protocol.
    # ------------------------------------------------------------------
    def submit(self, rank: int, cmd: dict) -> None:
        inner = self._require_inner()
        inner.submit(rank, cmd)
        self._outstanding[rank].append(cmd.get("op", "?"))
        self._lost[rank] = False

    def _inner_collect(self, rank: int, timeout: Optional[float]) -> dict:
        reply = self._require_inner().collect(rank, timeout=timeout)
        if self._outstanding[rank]:
            self._outstanding[rank].popleft()
        return reply

    def collect(self, rank: int, timeout: Optional[float] = None) -> dict:
        # Parked replies (delay retry / duplicate stale) come first —
        # they are already "in the pipe" from the caller's view.
        if self._parked[rank]:
            return self._parked[rank].popleft()
        if self._lost[rank] and not self._outstanding[rank]:
            # The reply to this collect was dropped: nothing will ever
            # arrive until the caller submits again.
            raise WorkerTimeout(
                f"rank {rank}: reply dropped by chaos schedule", rank=rank
            )
        op = self._outstanding[rank][0] if self._outstanding[rank] else "?"
        kind = self._decide(rank, op)
        if kind is None:
            return self._inner_collect(rank, timeout)
        if kind == "kill":
            self._require_inner().kill_rank(rank)
            self._drain(rank)
            raise WorkerDied(
                f"rank {rank} killed by chaos schedule", rank=rank
            )
        if kind == "delay":
            reply = self._inner_collect(rank, timeout)
            self._parked[rank].append(reply)
            raise WorkerTimeout(
                f"rank {rank}: reply delayed by chaos schedule", rank=rank
            )
        if kind == "drop":
            self._inner_collect(rank, timeout)  # consumed, never delivered
            self._lost[rank] = True
            raise WorkerTimeout(
                f"rank {rank}: reply dropped by chaos schedule", rank=rank
            )
        if kind == "corrupt":
            reply = self._inner_collect(rank, timeout)
            # Real detection path: frame the reply, flip a byte, let the
            # CRC machinery reject it.
            unframe_payload(corrupt_frame(frame_payload(reply)), rank=rank)
            raise AssertionError("corrupt_frame slipped past the CRC")
        # duplicate: deliver now, park a stale copy in front of the
        # rank's future replies.
        reply = self._inner_collect(rank, timeout)
        self._parked[rank].append(copy.deepcopy(reply))
        return reply

    def _drain(self, rank: int) -> None:
        """Discard whatever in-flight replies the dead rank left behind
        so the kill is observable identically on every transport (a
        process's reply can survive in the pipe buffer; a local
        worker's sits in the reply queue)."""
        self._parked[rank].clear()
        while self._outstanding[rank]:
            self._outstanding[rank].popleft()
            try:
                self._require_inner().collect(rank, timeout=0.5)
            except TransportError:
                break

    def fault_counts(self) -> dict[str, int]:
        """Injections so far, by kind (the ledger summarized)."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts


def chaos(
    inner: Union[str, Transport] = "local",
    faults: Sequence[Fault] = (),
    rates: Optional[dict[str, float]] = None,
    seed: int = 0,
) -> ChaosTransport:
    """Convenience constructor mirroring :class:`ChaosTransport`."""
    return ChaosTransport(inner, faults=faults, rates=rates, seed=seed)


# A bare "chaos" resolves to a transparent wrapper over the local
# transport — useful to smoke-test the wrapping itself by name.
register_transport("chaos", lambda world_size: ChaosTransport("local", world_size=world_size))
