"""``ddp_engine``: the data-parallel engine factory + worker bootstrap.

``ddp_engine(model, loss_fn, workers=2, codec="adacomp",
transport="process")`` builds the usual serial engine (``inner="adagp"``
→ :func:`~repro.core.engine.factories.adagp_engine`, ``inner="bp"`` →
:func:`~repro.core.engine.factories.bp_engine`) and takes over its
per-phase strategies with one
:class:`~repro.dist.strategy.DataParallelStrategy`.  The returned object
is a plain :class:`~repro.core.engine.TrainingEngine` — fit loop,
callbacks, checkpointing and History all unchanged, all rank-0-only:

* **Checkpointing is rank-0-only by construction** — only the driver
  has a fit loop, so an attached
  :class:`~repro.core.engine.events.Checkpointing` callback fires once
  per world, and because the data-parallel strategy keeps its comm
  state off the engine, the checkpoint bytes equal the serial engine's.
* **History is the cross-worker aggregate** — every epoch row's
  loss/metric/predictor errors are shard-weighted merges over all ranks
  (see ``DataParallelStrategy._merge_results``); per-epoch comm bytes
  and the measured compression ratio live in
  ``dp_strategy(engine).comm``.
* **Replicas are built by a picklable factory** from one pickled
  payload (model + loss_fn + the same scalar kwargs), identically under
  ``LocalTransport`` and ``ProcessTransport``, then receive rank 0's
  full sync state before the first batch — construction-path symmetry
  is what makes the transport-parity gate bitwise.

Resume: replicas are not checkpointed — under ``resync="phase"`` the
trajectory is a function of rank-0 state alone (replica drift is always
re-broadcast away at phase boundaries before it can matter), so a
checkpoint of the driver is a checkpoint of the world.  After
``engine.load_checkpoint(...)`` call ``invalidate_replicas(engine)`` so
the next batch re-broadcasts rank-0 state; with the identity codec the
resumed trajectory is then bitwise identical to the uninterrupted run.
AdaComp residuals are the one exception — rank-local, ephemeral across
resume (documented lossy-codec caveat).
"""

from __future__ import annotations

import functools
import pickle
from typing import Iterable, Optional

from ..core.engine.engine import MetricFn, TrainingEngine
from ..core.engine.events import Callback
from ..core.engine.factories import adagp_engine, bp_engine
from .codec import resolve_codec
from .strategy import DataParallelStrategy
from .worker import DistWorker

_INNER_FACTORIES = {"adagp": adagp_engine, "bp": bp_engine}

#: Engine kwargs that carry live objects a worker process cannot share.
#: Replicas must *build* their own copies from scalar knobs, so passing
#: pre-built instances alongside ``workers > 1`` is rejected up front.
_OBJECT_KWARGS = ("optimizer", "predictor", "gp_optimizer")

#: Kwargs that only the driver's fit loop consumes: replicas receive
#: phases over the wire, never consult a schedule, and never evaluate,
#: so these stay out of the replica payload (and may be live objects).
_DRIVER_ONLY_KWARGS = ("schedule",)


def _build_worker(payload: bytes, rank: int) -> DistWorker:
    """Worker-rank bootstrap: unpickle the shared payload, rebuild the
    replica engine through the same factory the driver used, spawn a
    rank-local codec.  Module-level so ``functools.partial(_build_worker,
    payload)`` pickles cleanly into a child process."""
    spec = pickle.loads(payload)
    factory = _INNER_FACTORIES[spec["inner"]]
    engine = factory(spec["model"], spec["loss_fn"], **spec["kwargs"])
    return DistWorker(
        engine, spec["codec"].spawn(), rank=rank, world_size=spec["world_size"]
    )


def ddp_engine(
    model,
    loss_fn,
    workers: int = 2,
    codec="identity",
    transport="local",
    inner: str = "adagp",
    resync: str = "phase",
    metric_fn: Optional[MetricFn] = None,
    callbacks: Iterable[Callback] = (),
    timeout: Optional[float] = None,
    min_workers: int = 2,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    max_rebuilds: int = 3,
    **inner_kwargs,
) -> TrainingEngine:
    """Data-parallel training engine over ``workers`` ranks.

    ``inner`` selects the serial engine being distributed (``"adagp"``
    or ``"bp"``); every extra keyword argument flows to that factory on
    the driver *and* on every replica — which is why object-valued
    kwargs (``optimizer=``, ``predictor=``, ``gp_optimizer=``,
    ``schedule=``) are rejected for ``workers > 1``: pass scalar knobs
    (``lr=``, ``predictor_lr=``, ...) and let each rank build its own.
    ``metric_fn``, ``callbacks`` and the phase schedule stay driver-only
    (replicas never evaluate or run a fit loop).

    ``workers=1`` wires no transport at all and delegates every batch to
    the inner strategies — bitwise identical to the serial factory's
    engine, the cheap end of the parity ladder.

    Fault tolerance: ``timeout=`` bounds every ``collect`` (``None`` =
    the transport's own finite default), ``max_retries=`` /
    ``retry_backoff=`` govern transient-timeout retries,
    ``max_rebuilds=`` bounds deterministic rank rebuilds per fault, and
    ``min_workers=`` is the active-world floor below which training
    degrades to serial with a warning instead of aborting — see
    :class:`~repro.dist.strategy.DataParallelStrategy` for the full
    recovery ladder.
    """
    if inner not in _INNER_FACTORIES:
        raise ValueError(
            f"unknown inner engine {inner!r}; expected one of "
            f"{sorted(_INNER_FACTORIES)}"
        )
    factory = _INNER_FACTORIES[inner]
    base_codec = resolve_codec(codec)
    worker_factory = None
    if workers > 1:
        rejected = [key for key in _OBJECT_KWARGS if inner_kwargs.get(key) is not None]
        if rejected:
            raise ValueError(
                f"ddp_engine(workers={workers}) cannot replicate object-valued "
                f"kwargs {rejected}; use scalar knobs (lr=, predictor_lr=, ...) "
                "so every rank builds its own instances"
            )
        backend = inner_kwargs.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ValueError(
                "ddp_engine(workers > 1) needs the backend by name (str) so "
                "worker processes can resolve their own instance"
            )
        replica_kwargs = {
            key: value
            for key, value in inner_kwargs.items()
            if key not in _DRIVER_ONLY_KWARGS
        }
        payload = pickle.dumps(
            {
                "inner": inner,
                "model": model,
                "loss_fn": loss_fn,
                "kwargs": replica_kwargs,
                "codec": base_codec.spawn(),
                "world_size": workers,
            }
        )
        worker_factory = functools.partial(_build_worker, payload)
    engine = factory(
        model, loss_fn, metric_fn=metric_fn, callbacks=callbacks, **inner_kwargs
    )
    parallel = DataParallelStrategy(
        inner=engine.strategies,
        workers=workers,
        codec=base_codec,
        transport=transport,
        resync=resync,
        worker_factory=worker_factory,
        timeout=timeout,
        min_workers=min_workers,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        max_rebuilds=max_rebuilds,
    )
    engine.strategies = {phase: parallel for phase in engine.strategies}
    parallel.bind(engine)
    return engine


def dp_strategy(engine: TrainingEngine) -> DataParallelStrategy:
    """The engine's :class:`DataParallelStrategy` (comm stats, transport,
    ``close``); raises if ``engine`` was not built by :func:`ddp_engine`."""
    for strategy in engine.strategies.values():
        if isinstance(strategy, DataParallelStrategy):
            return strategy
    raise TypeError("engine has no DataParallelStrategy; build it with ddp_engine")


def invalidate_replicas(engine: TrainingEngine) -> None:
    """Mark every replica stale so the next batch re-broadcasts rank-0
    state — required after ``engine.load_checkpoint``."""
    dp_strategy(engine).invalidate_replicas()


def shutdown(engine: TrainingEngine) -> None:
    """Close the engine's transport and worker ranks; idempotent."""
    dp_strategy(engine).close()
