"""Comm substrate for data-parallel training, swappable like a backend.

A :class:`Transport` owns the worker ranks ``1..world_size-1`` (rank 0
is the driver process itself — the engine that runs the fit loop) and
moves command/reply dicts between them:

* :class:`LocalTransport` — workers are in-process objects, commands
  execute synchronously at submit time.  Zero-dependency, fully
  deterministic, the default for tests and 1-core CI.
* :class:`ProcessTransport` — one ``multiprocessing.Process`` per
  worker rank, a dedicated ``Pipe`` each, commands pickled across.
  Real parallelism; the bitwise-parity tests pin its results to
  ``LocalTransport``'s.

Both build workers from the *same* picklable factory
(``factory(rank) -> worker``, a ``functools.partial`` over one pickled
payload), so a replica's construction path — and therefore its state —
is identical whichever transport hosts it.  That construction symmetry,
plus the rank-ordered :meth:`Transport.allreduce`, is why swapping
transports cannot change a single bit of the training trajectory.

The protocol is strict request/reply: every :meth:`submit` owes exactly
one :meth:`collect` on the same rank, and :meth:`broadcast` pairs the
two for all ranks at once.  The data-parallel strategy alternates
submit-all / collect-all per batch, which keeps the pipes deadlock-free
by construction (no rank ever holds two outstanding commands).
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable, Optional

import numpy as np

from .codec import _ordered_sum

WorkerFactory = Callable[[int], object]


class Transport:
    """Command/reply fabric over worker ranks ``1..world_size-1``."""

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)
        self.started = False

    @property
    def worker_ranks(self) -> range:
        return range(1, self.world_size)

    def start(self, factory: WorkerFactory) -> None:
        """Build and launch every worker rank from ``factory(rank)``."""
        raise NotImplementedError

    def submit(self, rank: int, cmd: dict) -> None:
        """Send one command to ``rank``; owes exactly one :meth:`collect`."""
        raise NotImplementedError

    def collect(self, rank: int) -> dict:
        """Receive the reply to the oldest outstanding command on ``rank``."""
        raise NotImplementedError

    def broadcast(self, cmd: dict) -> list[dict]:
        """Submit ``cmd`` to every worker rank, collect every reply
        (rank order).  Returns the replies for ranks ``1..W-1``."""
        for rank in self.worker_ranks:
            self.submit(rank, cmd)
        return [self.collect(rank) for rank in self.worker_ranks]

    def barrier(self) -> None:
        """Block until every worker rank has drained its queue and
        acknowledged a ping."""
        self.broadcast({"op": "ping"})

    def allreduce(
        self, contributions: Iterable[Optional[np.ndarray]]
    ) -> Optional[np.ndarray]:
        """Exact rank-ordered sum of per-rank arrays (``None`` skipped).

        Gather-sum-broadcast rather than a ring: every rank sees all
        contributions and adds them in rank order, so the reduction is
        bitwise-deterministic — the property the parity gates rely on,
        and the deliberate trade against ring-allreduce bandwidth
        optimality at this world size.
        """
        return _ordered_sum(contributions)

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        raise NotImplementedError


class LocalTransport(Transport):
    """In-process workers, synchronous execution at submit time.

    Execution order is rank-sequential rather than concurrent, but each
    rank's computation depends only on its own shard and replica state,
    so results match :class:`ProcessTransport` bitwise.
    """

    def __init__(self, world_size: int) -> None:
        super().__init__(world_size)
        self._workers: dict[int, object] = {}
        self._replies: dict[int, list[dict]] = {}

    def start(self, factory: WorkerFactory) -> None:
        if self.started:
            return
        for rank in self.worker_ranks:
            self._workers[rank] = factory(rank)
            self._replies[rank] = []
        self.started = True

    def submit(self, rank: int, cmd: dict) -> None:
        self._replies[rank].append(self._workers[rank].handle(cmd))

    def collect(self, rank: int) -> dict:
        return self._replies[rank].pop(0)

    def close(self) -> None:
        self._workers.clear()
        self._replies.clear()
        self.started = False


def _process_worker_main(conn, rank: int, factory: WorkerFactory) -> None:
    """Child-process loop: build the replica, then serve the pipe until
    a ``close`` command arrives (acknowledged before exit)."""
    worker = factory(rank)
    while True:
        cmd = conn.recv()
        conn.send(worker.handle(cmd))
        if cmd.get("op") == "close":
            break
    conn.close()


class ProcessTransport(Transport):
    """One OS process + pipe per worker rank (``multiprocessing``).

    Workers are daemonic, so a crashed driver cannot leak them.  The
    factory and every command/reply crosses the pipe via pickle; numpy
    arrays pickle to their raw buffers, so gradient payloads cost their
    ``wire_bytes``, not a text encoding.
    """

    def __init__(self, world_size: int) -> None:
        super().__init__(world_size)
        self._procs: dict[int, mp.Process] = {}
        self._conns: dict[int, object] = {}

    def start(self, factory: WorkerFactory) -> None:
        if self.started:
            return
        for rank in self.worker_ranks:
            parent, child = mp.Pipe()
            proc = mp.Process(
                target=_process_worker_main,
                args=(child, rank, factory),
                daemon=True,
                name=f"repro-dist-rank{rank}",
            )
            proc.start()
            child.close()
            self._procs[rank] = proc
            self._conns[rank] = parent
        self.started = True

    def submit(self, rank: int, cmd: dict) -> None:
        self._conns[rank].send(cmd)

    def collect(self, rank: int) -> dict:
        return self._conns[rank].recv()

    def close(self) -> None:
        if not self.started:
            return
        for rank, conn in self._conns.items():
            try:
                conn.send({"op": "close"})
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs.values():
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
        self._procs.clear()
        self._conns.clear()
        self.started = False


def resolve_transport(spec, world_size: int) -> Transport:
    """Resolve a transport spec: ``"local"``/``"process"``, a
    :class:`Transport` instance (world size must match), or ``None``
    (local)."""
    if spec is None:
        return LocalTransport(world_size)
    if isinstance(spec, Transport):
        if spec.world_size != world_size:
            raise ValueError(
                f"transport world_size {spec.world_size} != workers {world_size}"
            )
        return spec
    if isinstance(spec, str):
        if spec == "local":
            return LocalTransport(world_size)
        if spec == "process":
            return ProcessTransport(world_size)
        raise ValueError(
            f"unknown transport {spec!r}; expected 'local', 'process', "
            "or a Transport instance"
        )
    raise TypeError(f"cannot resolve transport from {type(spec).__name__}")
