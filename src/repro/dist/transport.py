"""Comm substrate for data-parallel training, swappable like a backend.

A :class:`Transport` owns the worker ranks ``1..world_size-1`` (rank 0
is the driver process itself — the engine that runs the fit loop) and
moves command/reply dicts between them:

* :class:`LocalTransport` — workers are in-process objects, commands
  execute synchronously at submit time.  Zero-dependency, fully
  deterministic, the default for tests and 1-core CI.
* :class:`ProcessTransport` — one ``multiprocessing.Process`` per
  worker rank, a dedicated ``Pipe`` each, commands pickled across.
  Real parallelism; the bitwise-parity tests pin its results to
  ``LocalTransport``'s.

Both build workers from the *same* picklable factory
(``factory(rank) -> worker``, a ``functools.partial`` over one pickled
payload), so a replica's construction path — and therefore its state —
is identical whichever transport hosts it.  That construction symmetry,
plus the rank-ordered :meth:`Transport.allreduce`, is why swapping
transports cannot change a single bit of the training trajectory.

The protocol is strict request/reply: every :meth:`submit` owes exactly
one :meth:`collect` on the same rank, and :meth:`broadcast` pairs the
two for all ranks at once.  The data-parallel strategy alternates
submit-all / collect-all per batch, which keeps the pipes deadlock-free
by construction (no rank ever holds two outstanding commands).

Fault model (PR 9).  The fabric is no longer assumed perfect:

* Every :class:`ProcessTransport` payload is **CRC32-framed**
  (:func:`frame_payload` / :func:`unframe_payload`), so a corrupted
  pipe read surfaces as :class:`PayloadCorrupt` instead of an unpickle
  crash — and :class:`~repro.dist.faults.ChaosTransport` can corrupt
  real frame bytes to prove the detection path end to end.
* :meth:`ProcessTransport.collect` polls the pipe under a **deadline**
  (default finite — no blocking path can hang forever) and heartbeats
  ``Process.is_alive()`` between polls, raising :class:`WorkerTimeout`
  or :class:`WorkerDied` instead of blocking on a hung or dead rank.
* :meth:`close` escalates join → terminate → kill, is idempotent, and
  every started :class:`ProcessTransport` registers with an ``atexit``
  guard — an exception mid-fit can no longer leak worker processes.
* :meth:`kill_rank` / :meth:`respawn_rank` / :meth:`alive` give the
  recovery layer (and the chaos injector) explicit rank lifecycle
  control; respawn rebuilds the rank from the factory captured at
  :meth:`start`, so a rebuilt replica's construction path is identical
  to the original's.

Transports resolve through a **registry** (:func:`register_transport`),
so new fabrics — including the fault-injection wrapper in
:mod:`repro.dist.faults` — compose by name exactly like
``repro.nn.backend`` substrates.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import pickle
import struct
import time
import weakref
import zlib
from typing import Callable, Iterable, Optional

import numpy as np

from .codec import _ordered_sum

WorkerFactory = Callable[[int], object]


# ----------------------------------------------------------------------
# Fault taxonomy.
# ----------------------------------------------------------------------
class TransportError(RuntimeError):
    """Base of every transport-fabric failure; carries the rank."""

    def __init__(self, message: str, rank: Optional[int] = None) -> None:
        super().__init__(message)
        self.rank = rank


class WorkerDied(TransportError):
    """The worker process behind a rank is gone (crash, kill, EOF)."""


class WorkerTimeout(TransportError):
    """No reply inside the collect deadline; the worker may be hung,
    slow, or its reply may have been dropped."""


class WorkerError(TransportError):
    """The worker's command handler raised — a deterministic
    application error relayed intact, not a fabric fault (retrying
    would reproduce it)."""


class PayloadCorrupt(TransportError):
    """A framed payload failed its CRC32 check (or could not be
    unpickled): the bytes on the wire are not the bytes that were
    sent."""


# ----------------------------------------------------------------------
# CRC32 wire framing.
# ----------------------------------------------------------------------
#: Frame layout: magic, CRC32 of the pickled body, body length, body.
FRAME_MAGIC = b"RDF1"
_FRAME_HEADER = struct.Struct("<4sII")


def frame_payload(obj: object) -> bytes:
    """Pickle ``obj`` into a CRC32-framed byte string."""
    body = pickle.dumps(obj)
    return _FRAME_HEADER.pack(FRAME_MAGIC, zlib.crc32(body), len(body)) + body


def unframe_payload(data: bytes, rank: Optional[int] = None) -> object:
    """Verify and unpickle a :func:`frame_payload` byte string.

    Raises :class:`PayloadCorrupt` on a bad magic, a truncated body, a
    CRC mismatch, or an unpicklable body — every way wire bytes can
    differ from sent bytes maps to the one named error the recovery
    policy handles.
    """
    if len(data) < _FRAME_HEADER.size:
        raise PayloadCorrupt(
            f"frame truncated to {len(data)} bytes", rank=rank
        )
    magic, crc, size = _FRAME_HEADER.unpack_from(data)
    body = data[_FRAME_HEADER.size:]
    if magic != FRAME_MAGIC:
        raise PayloadCorrupt(f"bad frame magic {magic!r}", rank=rank)
    if len(body) != size:
        raise PayloadCorrupt(
            f"frame body {len(body)} bytes, header promised {size}", rank=rank
        )
    if zlib.crc32(body) != crc:
        raise PayloadCorrupt("frame CRC32 mismatch", rank=rank)
    try:
        return pickle.loads(body)
    except Exception as err:
        raise PayloadCorrupt(f"frame unpickle failed: {err}", rank=rank) from err


class Transport:
    """Command/reply fabric over worker ranks ``1..world_size-1``."""

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)
        self.started = False

    @property
    def worker_ranks(self) -> range:
        return range(1, self.world_size)

    def start(self, factory: WorkerFactory) -> None:
        """Build and launch every worker rank from ``factory(rank)``."""
        raise NotImplementedError

    def submit(self, rank: int, cmd: dict) -> None:
        """Send one command to ``rank``; owes exactly one :meth:`collect`."""
        raise NotImplementedError

    def collect(self, rank: int, timeout: Optional[float] = None) -> dict:
        """Receive the reply to the oldest outstanding command on ``rank``.

        ``timeout`` bounds the wait where the fabric can actually block
        (``None`` means the transport's own default deadline — never
        forever); raises :class:`WorkerTimeout` past the deadline and
        :class:`WorkerDied` when the rank is gone.
        """
        raise NotImplementedError

    def broadcast(self, cmd: dict, timeout: Optional[float] = None) -> list[dict]:
        """Submit ``cmd`` to every worker rank, collect every reply
        (rank order).  Returns the replies for ranks ``1..W-1``."""
        for rank in self.worker_ranks:
            self.submit(rank, cmd)
        return [self.collect(rank, timeout=timeout) for rank in self.worker_ranks]

    def barrier(self) -> None:
        """Block until every worker rank has drained its queue and
        acknowledged a ping."""
        self.broadcast({"op": "ping"})

    def allreduce(
        self, contributions: Iterable[Optional[np.ndarray]]
    ) -> Optional[np.ndarray]:
        """Exact rank-ordered sum of per-rank arrays (``None`` skipped).

        Gather-sum-broadcast rather than a ring: every rank sees all
        contributions and adds them in rank order, so the reduction is
        bitwise-deterministic — the property the parity gates rely on,
        and the deliberate trade against ring-allreduce bandwidth
        optimality at this world size.
        """
        return _ordered_sum(contributions)

    # Rank lifecycle (the recovery layer's hooks).
    def alive(self, rank: int) -> bool:
        """Whether ``rank`` is still able to serve commands."""
        raise NotImplementedError

    def kill_rank(self, rank: int) -> None:
        """Forcibly take ``rank`` down (hung-worker escalation, chaos
        injection); outstanding replies are lost."""
        raise NotImplementedError

    def respawn_rank(self, rank: int) -> None:
        """Rebuild ``rank`` from the factory captured at :meth:`start` —
        the same construction path as the original, so a respawned
        replica is deterministic."""
        raise NotImplementedError

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class LocalTransport(Transport):
    """In-process workers, synchronous execution at submit time.

    Execution order is rank-sequential rather than concurrent, but each
    rank's computation depends only on its own shard and replica state,
    so results match :class:`ProcessTransport` bitwise.

    Fault semantics mirror the process fabric's so chaos tests are
    transport-agnostic: a killed rank raises :class:`WorkerDied` on
    submit and collect until :meth:`respawn_rank`, and a worker whose
    ``handle`` raises replies with a relayed fault record instead of
    blowing up the driver mid-protocol (same as a process worker).
    """

    def __init__(self, world_size: int) -> None:
        super().__init__(world_size)
        self._workers: dict[int, object] = {}
        self._replies: dict[int, list[dict]] = {}
        self._dead: set[int] = set()
        self._factory: Optional[WorkerFactory] = None

    def start(self, factory: WorkerFactory) -> None:
        if self.started:
            return
        self._factory = factory
        for rank in self.worker_ranks:
            self._workers[rank] = factory(rank)
            self._replies[rank] = []
        self.started = True

    def submit(self, rank: int, cmd: dict) -> None:
        if rank in self._dead:
            raise WorkerDied(f"rank {rank} was killed", rank=rank)
        try:
            reply = self._workers[rank].handle(cmd)
        except Exception as err:  # relay, like a process worker would
            reply = _fault_reply(rank, cmd, err)
        self._replies[rank].append(reply)

    def collect(self, rank: int, timeout: Optional[float] = None) -> dict:
        if rank in self._dead:
            raise WorkerDied(f"rank {rank} was killed", rank=rank)
        if not self._replies[rank]:
            raise WorkerTimeout(f"rank {rank} has no outstanding reply", rank=rank)
        return self._replies[rank].pop(0)

    def alive(self, rank: int) -> bool:
        return rank not in self._dead and rank in self._workers

    def kill_rank(self, rank: int) -> None:
        self._workers.pop(rank, None)
        self._replies[rank] = []
        self._dead.add(rank)

    def respawn_rank(self, rank: int) -> None:
        if self._factory is None:
            raise TransportError("transport was never started", rank=rank)
        self._workers[rank] = self._factory(rank)
        self._replies[rank] = []
        self._dead.discard(rank)

    def close(self) -> None:
        self._workers.clear()
        self._replies.clear()
        self._dead.clear()
        self.started = False


def _fault_reply(rank: int, cmd: dict, err: BaseException) -> dict:
    """The relayed-error reply a worker sends when its handler raises —
    deterministic application failures cross the wire as data, so the
    driver can distinguish them from fabric faults (no point retrying)."""
    reply = {
        "fault": "worker_error",
        "rank": rank,
        "error": f"{type(err).__name__}: {err}",
    }
    if isinstance(cmd, dict) and "seq" in cmd:
        reply["seq"] = cmd["seq"]
    return reply


def _process_worker_main(conn, rank: int, factory: WorkerFactory) -> None:
    """Child-process loop: build the replica, then serve CRC-framed
    commands until a ``close`` arrives (acknowledged before exit) or the
    driver disappears (EOF on the pipe — exit quietly, never linger)."""
    worker = factory(rank)
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):  # driver gone; daemonic belt+braces
            break
        try:
            cmd = unframe_payload(data, rank=rank)
        except PayloadCorrupt as err:
            conn.send_bytes(
                frame_payload(
                    {"fault": "payload_corrupt", "rank": rank, "error": str(err)}
                )
            )
            continue
        try:
            reply = worker.handle(cmd)
        except Exception as err:
            reply = _fault_reply(rank, cmd, err)
        conn.send_bytes(frame_payload(reply))
        if cmd.get("op") == "close":
            break
    conn.close()


#: Started process transports, closed by the atexit guard below so a
#: crashed driver (or a test that forgot ``close``) never leaks workers.
_LIVE_TRANSPORTS: "weakref.WeakSet[ProcessTransport]" = weakref.WeakSet()


def _close_live_transports() -> None:  # pragma: no cover - atexit path
    for transport in list(_LIVE_TRANSPORTS):
        try:
            transport.close()
        except Exception:
            pass


atexit.register(_close_live_transports)


class ProcessTransport(Transport):
    """One OS process + pipe per worker rank (``multiprocessing``).

    Workers are daemonic, so a crashed driver cannot leak them; started
    transports additionally register with an ``atexit`` guard that
    closes them (join → terminate → kill) on interpreter exit.  The
    factory and every command/reply crosses the pipe CRC32-framed via
    pickle; numpy arrays pickle to their raw buffers, so gradient
    payloads cost their ``wire_bytes``, not a text encoding.

    Parameters
    ----------
    timeout:
        Default :meth:`collect` deadline in seconds.  Finite by design:
        with a dead or hung rank, *every* blocking path must surface a
        :class:`WorkerTimeout`/:class:`WorkerDied` rather than block the
        fit loop forever.
    heartbeat:
        Liveness-poll interval inside :meth:`collect`: between pipe
        polls the worker process is checked with ``is_alive()``, so a
        crashed rank raises :class:`WorkerDied` within one heartbeat
        instead of burning the whole deadline.
    """

    def __init__(
        self,
        world_size: int,
        timeout: float = 60.0,
        heartbeat: float = 0.05,
    ) -> None:
        super().__init__(world_size)
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = float(timeout)
        self.heartbeat = float(heartbeat)
        self._procs: dict[int, mp.Process] = {}
        self._conns: dict[int, object] = {}
        self._factory: Optional[WorkerFactory] = None

    def start(self, factory: WorkerFactory) -> None:
        if self.started:
            return
        self._factory = factory
        for rank in self.worker_ranks:
            self._spawn(rank)
        self.started = True
        _LIVE_TRANSPORTS.add(self)

    def _spawn(self, rank: int) -> None:
        parent, child = mp.Pipe()
        proc = mp.Process(
            target=_process_worker_main,
            args=(child, rank, self._factory),
            daemon=True,
            name=f"repro-dist-rank{rank}",
        )
        proc.start()
        child.close()
        self._procs[rank] = proc
        self._conns[rank] = parent

    def submit(self, rank: int, cmd: dict) -> None:
        try:
            self._conns[rank].send_bytes(frame_payload(cmd))
        except (BrokenPipeError, OSError) as err:
            raise WorkerDied(f"rank {rank} pipe is down: {err}", rank=rank) from err

    def collect(self, rank: int, timeout: Optional[float] = None) -> dict:
        """Poll-with-heartbeat until a framed reply, the deadline, or
        evidence of death — whichever comes first."""
        conn = self._conns[rank]
        proc = self._procs[rank]
        deadline = time.monotonic() + (self.timeout if timeout is None else timeout)
        while True:
            remaining = deadline - time.monotonic()
            interval = max(0.0, min(self.heartbeat, remaining))
            try:
                if conn.poll(interval):
                    return unframe_payload(conn.recv_bytes(), rank=rank)
            except (EOFError, OSError) as err:
                raise WorkerDied(
                    f"rank {rank} closed its pipe: {err}", rank=rank
                ) from err
            if not proc.is_alive():
                # A reply can outlive its sender in the pipe buffer;
                # only an *empty* pipe plus a dead process is death.
                if conn.poll(0):
                    return unframe_payload(conn.recv_bytes(), rank=rank)
                raise WorkerDied(
                    f"rank {rank} process died (exitcode {proc.exitcode})",
                    rank=rank,
                )
            if remaining <= 0:
                raise WorkerTimeout(
                    f"rank {rank}: no reply within {self.timeout if timeout is None else timeout:.3g}s",
                    rank=rank,
                )

    def alive(self, rank: int) -> bool:
        proc = self._procs.get(rank)
        return proc is not None and proc.is_alive()

    def kill_rank(self, rank: int) -> None:
        proc = self._procs.get(rank)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5)

    def respawn_rank(self, rank: int) -> None:
        if self._factory is None:
            raise TransportError("transport was never started", rank=rank)
        self.kill_rank(rank)
        old = self._conns.pop(rank, None)
        if old is not None:
            old.close()
        self._spawn(rank)

    def close(self, timeout: float = 5.0) -> None:
        """Escalating shutdown: polite close → join(timeout) → terminate
        → kill.  Never blocks unboundedly (a worker hung inside its
        handler cannot zombify the driver) and never leaves a live
        child behind; idempotent."""
        if not self.started:
            return
        for rank, conn in self._conns.items():
            try:
                conn.send_bytes(frame_payload({"op": "close"}))
                # Bounded ack wait: a hung worker never answers.
                if conn.poll(timeout):
                    conn.recv_bytes()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs.values():
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - kill-resistant worker
                proc.kill()
                proc.join(timeout=timeout)
        self._procs.clear()
        self._conns.clear()
        self.started = False
        _LIVE_TRANSPORTS.discard(self)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
#: name -> factory(world_size) -> Transport.  New fabrics (e.g. the
#: chaos wrapper in ``repro.dist.faults``) register here and become
#: usable anywhere a transport spec is accepted, like nn backends.
_TRANSPORTS: dict[str, Callable[[int], Transport]] = {}


def register_transport(name: str, factory: Callable[[int], Transport]) -> None:
    """Register a transport under ``name`` for :func:`resolve_transport`."""
    _TRANSPORTS[name] = factory


def list_transports() -> list[str]:
    """Sorted names of every registered transport."""
    return sorted(_TRANSPORTS)


register_transport("local", LocalTransport)
register_transport("process", ProcessTransport)


def resolve_transport(spec, world_size: int) -> Transport:
    """Resolve a transport spec: a registered name (``"local"``,
    ``"process"``, ...), a :class:`Transport` instance (world size must
    match; instances built world-size-late — the chaos wrapper — are
    bound here), or ``None`` (local)."""
    if spec is None:
        return LocalTransport(world_size)
    if isinstance(spec, Transport):
        if getattr(spec, "world_size", None) is None and hasattr(
            spec, "bind_world"
        ):
            spec.bind_world(world_size)
        if spec.world_size != world_size:
            raise ValueError(
                f"transport world_size {spec.world_size} != workers {world_size}"
            )
        return spec
    if isinstance(spec, str):
        factory = _TRANSPORTS.get(spec)
        if factory is None:
            raise ValueError(
                f"unknown transport {spec!r}; expected one of "
                f"{list_transports()} or a Transport instance"
            )
        return factory(world_size)
    raise TypeError(f"cannot resolve transport from {type(spec).__name__}")
