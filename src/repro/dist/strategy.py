"""Data-parallel phase strategy: shard, all-reduce BP, skip comm on GP.

:class:`DataParallelStrategy` wraps an engine's existing per-phase
strategies (any :class:`~repro.core.engine.strategies.BackpropStrategy`
family for WARMUP/BP, any GP strategy for Phase GP) and distributes each
batch over ``workers`` ranks — rank 0 *is* the driver engine; ranks
``1..W-1`` are replicas behind a :class:`~repro.dist.transport.Transport`.

Per **BP/WARMUP** batch: the batch is cut into contiguous rank-ordered
shards (their concatenation is the original batch), every active rank
runs ``forward_backward`` with its shard's loss-gradient scaled by
``n_r / n`` (so the rank-sum equals full-batch mean-reduction
semantics), encodes its local gradients with its rank-local codec, and
the driver gathers all payloads.  *Every* rank then decodes and sums the
full payload set in rank order (:func:`~repro.dist.codec.decode_sum`),
installs the identical reduced gradient and steps its own optimizer —
bitwise lockstep without shipping dense sums.

Per **GP** batch: each rank runs the inner GP strategy on its shard —
predicted updates come from the rank-local predictor, so *zero gradient
bytes* cross the wire (ADA-GP's phase structure makes the comm story a
feature).  ``resync="phase"`` broadcasts rank 0's sync state at each
phase *boundary* — before the first GP batch after a BP run (replica
predictors trained on local shards are stale) and before the first BP
batch after a GP run (locally-predicted updates drifted the replica
models) — never inside a run, so consecutive GP batches stay strictly
comm-free.  Boundary syncing makes the whole trajectory a function of
rank-0 state alone: replica-local drift is always overwritten before it
can influence an observable result, which is exactly what makes
checkpoint/resume bitwise reproducible (identity codec) and transports
interchangeable.

``workers=1`` is pure delegation to the inner strategy — bitwise
identical to the serial engine, which is the enforceable end of the
"parallel == serial" contract (sharded float32 GEMMs cannot match
full-batch ones bitwise; ``W>=2`` vs serial is an allclose property,
``LocalTransport`` vs ``ProcessTransport`` at any ``W`` is the bitwise
one).

Fault tolerance — the recovery ladder
-------------------------------------
Every submitted command carries a per-rank sequence number that the
replica echoes, and every collect runs through a policy that classifies
transport faults (see :mod:`repro.dist.transport`) and climbs:

1. **Dedup** — a reply whose sequence number does not match the
   outstanding command is a stale duplicate (at-least-once delivery)
   and is silently discarded.
2. **Retry** — :class:`~repro.dist.transport.WorkerTimeout` is retried
   up to ``max_retries`` times with linear backoff (a delayed reply is
   simply collected late).
3. **Rebuild** — a dead rank (:class:`~repro.dist.transport.WorkerDied`),
   a corrupt payload (:class:`~repro.dist.transport.PayloadCorrupt`) or
   a timeout past the retry budget triggers a deterministic rank
   rebuild: respawn from the pickled factory if dead, re-sync from the
   retained *phase-boundary* state with a codec-residual reset, replay
   the rank's accepted command log since that boundary (reproducing its
   exact pre-fault replica state — replicas drift *by design* inside a
   run: predictors train on local shards during BP, models take local
   predicted updates during GP), then resubmit the faulted command.
   Under the identity codec the rebuilt rank's replies are bitwise
   identical to the unfaulted run's — the "faulted ≡ unfaulted" rung of
   the parity ladder.
4. **Forfeit** — a rank that exhausts ``max_rebuilds`` inside one
   collect is permanently lost: batches re-shard over the survivors
   after a world re-sync with codec resets (rank 0's included).  A
   forfeit during BP gradient gather re-runs the batch on the new
   shard layout; a forfeit during the apply fan-out or a GP run keeps
   the completed work (survivors already applied / GP drift is
   overwritten at the next boundary anyway).  Forfeited runs stay
   deterministic across identical fault schedules, but are not
   unfaulted-bitwise (the shard layout changed) — documented trade.
5. **Degrade** — when the active world drops below ``min_workers``
   (or below 2), the strategy warns and falls back to serial
   single-process training rather than aborting the fit.

:class:`~repro.dist.transport.WorkerError` (the replica *application*
raised) is never retried — it is a bug, not a fabric fault, and
propagates.

All communication volume and fault accounting lands in
:class:`CommStats` (per-epoch wire bytes, dense-equivalent bytes, sync
broadcast bytes, measured compression ratio, plus faults / retries /
rebuilds / recovery wall-time / recovery bytes).  The stats live on the
strategy, not the engine — strategies are not checkpointed, so a ddp
engine's checkpoint stays byte-identical to the serial engine's.
"""

from __future__ import annotations

import time
import warnings
from contextlib import nullcontext
from typing import Mapping, Optional, Union

from ..core.engine.strategies import BatchResult, PhaseStrategy
from ..core.schedule import Phase
from ..nn.backend import backend_scope
from ..obs.trace import COMM, RECOVERY, tracer as _obs_tracer
from .codec import Codec, decode_sum, resolve_codec
from .transport import (
    PayloadCorrupt,
    Transport,
    TransportError,
    WorkerDied,
    WorkerError,
    WorkerTimeout,
    resolve_transport,
)
from .worker import state_nbytes, sync_state


def shard_sizes(n: int, world_size: int) -> list[int]:
    """Near-equal contiguous shard sizes, biggest-first by rank.

    ``sum == n`` always; ranks beyond ``n`` get empty shards (inactive
    for that batch).  Rank 0 is never empty while ``n >= 1``, so the
    driver always has local work.
    """
    base, rem = divmod(n, world_size)
    return [base + (1 if rank < rem else 0) for rank in range(world_size)]


class _RanksLost(Exception):
    """Internal: rank(s) exhausted their rebuild budget mid-batch.

    Carries whatever replies *were* collected so the caller can keep
    completed work (GP partial merge, apply fan-out) instead of
    discarding it.
    """

    def __init__(self, ranks: list[int], replies: dict) -> None:
        super().__init__(f"ranks {ranks} permanently lost")
        self.ranks = ranks
        self.replies = replies


class CommStats:
    """Per-epoch communication + fault accounting for one strategy.

    ``grad_wire_bytes`` counts actual gradient payload traffic (worker
    uplinks plus the apply broadcast fan-out), ``grad_dense_bytes`` the
    bytes the same traffic would cost uncompressed — their ratio is the
    *measured* compression ratio, not an estimate.  ``sync_bytes``
    counts state resync broadcasts separately (identity-codec runs pay
    sync, not gradient compression).  Input-shard shipping is data-loader
    traffic, deliberately excluded from gradient accounting.

    Fault columns: ``faults`` (transport faults observed), ``retries``
    (timeout re-collects), ``rebuilds`` (rank rebuilds), ``recovery_s``
    (wall-clock spent rebuilding) and ``recovery_bytes`` (re-sync +
    replay state traffic — kept out of ``sync_bytes`` so the steady-state
    comm story is unpolluted by recovery).
    """

    _KEYS = (
        "grad_wire_bytes",
        "grad_dense_bytes",
        "sync_bytes",
        "bp_batches",
        "gp_batches",
        "faults",
        "retries",
        "rebuilds",
        "recovery_s",
        "recovery_bytes",
    )

    def __init__(self) -> None:
        self.epochs: dict[int, dict[str, float]] = {}

    def _row(self, epoch: int) -> dict[str, float]:
        return self.epochs.setdefault(epoch, self._empty())

    def record_grads(self, epoch: int, wire_bytes: int, dense_bytes: int) -> None:
        row = self._row(epoch)
        row["grad_wire_bytes"] += wire_bytes
        row["grad_dense_bytes"] += dense_bytes
        row["bp_batches"] += 1

    def record_gp(self, epoch: int) -> None:
        self._row(epoch)["gp_batches"] += 1

    def record_sync(self, epoch: int, nbytes: int) -> None:
        self._row(epoch)["sync_bytes"] += nbytes

    def record_recovery(
        self,
        epoch: int,
        faults: int = 0,
        retries: int = 0,
        rebuilds: int = 0,
        seconds: float = 0.0,
        nbytes: int = 0,
    ) -> None:
        row = self._row(epoch)
        row["faults"] += faults
        row["retries"] += retries
        row["rebuilds"] += rebuilds
        row["recovery_s"] += seconds
        row["recovery_bytes"] += nbytes

    def totals(self) -> dict[str, float]:
        """Sum of every epoch row (same keys)."""
        totals = self._empty()
        for row in self.epochs.values():
            for key, value in row.items():
                totals[key] += value
        return totals

    def compression_ratio(self, epoch: Optional[int] = None) -> float:
        """Measured dense/wire ratio for one epoch (or the whole run);
        NaN before any gradient traffic."""
        row = self.epochs.get(epoch, self._empty()) if epoch is not None else self.totals()
        if row["grad_wire_bytes"] <= 0:
            return float("nan")
        return row["grad_dense_bytes"] / row["grad_wire_bytes"]

    @classmethod
    def _empty(cls) -> dict[str, float]:
        return {key: 0 for key in cls._KEYS}


class DataParallelStrategy(PhaseStrategy):
    """Shard batches over ``workers`` ranks; all-reduce BP, comm-free GP.

    Parameters
    ----------
    inner:
        The serial per-phase strategies to distribute — one strategy or
        a ``{Phase: strategy}`` mapping (typically the engine's original
        ``strategies`` dict, taken over by :func:`repro.dist.ddp_engine`).
    workers:
        World size including the driver (rank 0).  ``1`` runs no
        transport at all and delegates every batch bitwise.
    codec:
        Gradient codec spec (name or instance) — *rank 0's* instance;
        replicas spawn their own so residual state stays rank-local.
    transport:
        ``"local"`` / ``"process"`` / ``"chaos"`` / a started-or-not
        :class:`~repro.dist.transport.Transport`.
    resync:
        ``"phase"`` (default): broadcast rank-0 sync state at phase
        boundaries (BP→GP: replica predictors went stale training on
        local shards; GP→BP: replica models drifted under local
        predicted updates).  ``"never"``: replicas keep their drifted
        predictors/weights until the next explicit
        :meth:`invalidate_replicas` — documented-unsafe, for drift
        experiments (note: the recovery replay log then grows for the
        whole run, since the retained boundary never advances).
    worker_factory:
        Picklable ``factory(rank) -> DistWorker`` (required when
        ``workers > 1``); built by :func:`repro.dist.ddp_engine`.
    timeout:
        Per-collect deadline in seconds forwarded to
        ``transport.collect`` (``None`` = the transport's own default;
        every transport default is finite, so no collect blocks
        forever).
    min_workers:
        Floor on the active world size (rank 0 included).  Below it —
        or below 2, where "parallel" stops meaning anything — the
        strategy degrades to serial with a warning instead of aborting.
    max_retries:
        Timeout re-collect budget per faulted collect before the
        timeout escalates to a rank rebuild.
    retry_backoff:
        Linear backoff unit between timeout retries, seconds.
    max_rebuilds:
        Rank rebuild budget per faulted collect; past it the rank is
        permanently forfeited and batches re-shard over survivors.
    """

    def __init__(
        self,
        inner: Union[PhaseStrategy, Mapping[Phase, PhaseStrategy]],
        workers: int = 2,
        codec: Union[str, Codec, None] = "identity",
        transport="local",
        resync: str = "phase",
        worker_factory=None,
        backend=None,
        timeout: Optional[float] = None,
        min_workers: int = 2,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        max_rebuilds: int = 3,
    ) -> None:
        super().__init__(backend=backend)
        if isinstance(inner, PhaseStrategy):
            inner = {phase: inner for phase in Phase}
        self.inner: dict[Phase, PhaseStrategy] = dict(inner)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if resync not in ("phase", "never"):
            raise ValueError(f"resync must be 'phase' or 'never', got {resync!r}")
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_retries < 0 or max_rebuilds < 0:
            raise ValueError("max_retries and max_rebuilds must be >= 0")
        self.workers = int(workers)
        self.codec = resolve_codec(codec)
        self.resync = resync
        self.worker_factory = worker_factory
        self._transport_spec = transport
        self.transport: Optional[Transport] = None
        self.comm = CommStats()
        self.timeout = timeout
        self.min_workers = int(min_workers)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.max_rebuilds = int(max_rebuilds)
        self._need_sync = True
        # Replica models drifted under local GP updates (GP→BP resync).
        self._drifted = False
        # Replica predictors trained on local shards during a BP run
        # (BP→GP resync); never set when the engine has no predictor.
        self._predictor_stale = False
        # --- fault-tolerance state -----------------------------------
        #: World ranks still in service, ascending; rank 0 always first.
        self._active: list[int] = list(range(self.workers))
        #: Per-rank next command sequence number.
        self._seq: dict[int, int] = {}
        #: Per-rank accepted-command log since the retained boundary —
        #: the rebuild replay source.
        self._log: dict[int, list[dict]] = {
            rank: [] for rank in range(1, self.workers)
        }
        #: (sync state, lrs) broadcast at the last boundary.
        self._boundary: Optional[tuple] = None
        #: Next sync must reset every rank's codec (post-forfeit world
        #: reset — rank 0's residual accounting included).
        self._pending_codec_reset = False
        #: Degraded to serial (active world under the floor).
        self._serial = False
        #: Human-readable fault ledger: one dict per observed fault.
        self.fault_log: list[dict] = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        super().bind(engine)
        for strategy in {id(s): s for s in self.inner.values()}.values():
            strategy.bind(engine)
        if self.workers > 1 and self.transport is None:
            if self.worker_factory is None:
                raise ValueError(
                    "DataParallelStrategy(workers > 1) needs a worker_factory "
                    "(use repro.dist.ddp_engine to build one)"
                )
            self.transport = resolve_transport(self._transport_spec, self.workers)
            self.transport.start(self.worker_factory)

    def invalidate_replicas(self) -> None:
        """Force a full sync broadcast before the next training batch —
        call after mutating the driver out-of-band (e.g.
        ``engine.load_checkpoint``; replicas are not checkpointed)."""
        self._need_sync = True

    def close(self) -> None:
        """Shut the transport (and its worker ranks) down; idempotent."""
        if self.transport is not None:
            self.transport.close()
            self.transport = None
        self._need_sync = True
        self._boundary = None

    # ------------------------------------------------------------------
    # Batch dispatch.
    # ------------------------------------------------------------------
    def _inner_for(self, phase: Phase) -> PhaseStrategy:
        try:
            return self.inner[phase]
        except KeyError:
            raise KeyError(
                f"no inner strategy for phase {phase!r}; "
                f"have {sorted(p.value for p in self.inner)}"
            ) from None

    def _scope(self, inner: PhaseStrategy):
        """The inner strategy's backend scope (the engine only sees this
        wrapper's ``backend``, so per-phase overrides are re-applied
        here — serial-equivalent resolution order)."""
        if inner.backend is not None:
            return backend_scope(inner.backend)
        return nullcontext()

    def train_batch(self, inputs, targets, phase: Phase) -> BatchResult:
        inner = self._inner_for(phase)
        while True:
            if self.workers == 1 or self._serial:
                with self._scope(inner):
                    return inner.train_batch(inputs, targets, phase)
            try:
                if phase is Phase.GP:
                    return self._train_gp(inner, inputs, targets)
                return self._train_bp(inner, inputs, targets, phase)
            except _RanksLost as lost:
                # Sync or BP gradient-gather forfeit: nothing applied
                # anywhere yet — forfeit the ranks and re-run the batch
                # on the surviving shard layout (serial if degraded).
                self._forfeit(lost.ranks)

    # ------------------------------------------------------------------
    # Fault-aware submit/collect plumbing.
    # ------------------------------------------------------------------
    def _submit(self, rank: int, cmd: dict) -> dict:
        """Stamp a fresh per-rank sequence number and submit; returns the
        stamped command (the log/replay unit)."""
        cmd = dict(cmd)
        cmd["seq"] = self._seq[rank] = self._seq.get(rank, -1) + 1
        self.transport.submit(rank, cmd)
        return cmd

    def _collect_seq(self, rank: int, seq: int) -> dict:
        """One protocol-correct collect: drop stale duplicates, surface
        replica-side faults as typed exceptions."""
        while True:
            reply = self.transport.collect(rank, timeout=self.timeout)
            fault = reply.get("fault")
            if fault == "worker_error":
                raise WorkerError(
                    f"rank {rank}: replica raised: {reply.get('error')}", rank=rank
                )
            if fault == "payload_corrupt":
                raise PayloadCorrupt(
                    f"rank {rank}: replica received a corrupt command", rank=rank
                )
            if reply.get("seq") != seq:
                continue  # stale duplicate (at-least-once delivery)
            return reply

    def _note_fault(self, epoch: int, rank: int, err: TransportError) -> None:
        kind = {
            WorkerTimeout: "timeout",
            WorkerDied: "died",
            PayloadCorrupt: "corrupt",
        }.get(type(err), "transport")
        self.fault_log.append(
            {"epoch": epoch, "rank": rank, "kind": kind, "error": str(err)}
        )
        self.comm.record_recovery(epoch, faults=1)

    def _collect_checked(self, rank: int, sent: dict, epoch: int) -> dict:
        """Collect ``sent``'s reply from ``rank``, climbing the recovery
        ladder: retry timeouts, rebuild fatal faults, forfeit past the
        rebuild budget (raises :class:`_RanksLost` via the caller)."""
        retries = rebuilds = 0
        rebuild_next = False
        while True:
            if rebuild_next:
                rebuild_next = False
                if rebuilds >= self.max_rebuilds:
                    raise _RanksLost([rank], {})
                rebuilds += 1
                started = time.perf_counter()
                try:
                    with _obs_tracer().span("dist.rebuild", phase=RECOVERY, rank=rank):
                        sent = self._rebuild(rank, sent, epoch)
                except WorkerError:
                    raise
                except TransportError as err:
                    # The rebuild itself faulted (chaos does not pause
                    # for repairs); count it and rebuild again from
                    # scratch — the boundary re-sync makes it idempotent.
                    self._note_fault(epoch, rank, err)
                    rebuild_next = True
                    continue
                finally:
                    self.comm.record_recovery(
                        epoch, rebuilds=1, seconds=time.perf_counter() - started
                    )
                retries = 0
            try:
                return self._collect_seq(rank, sent["seq"])
            except WorkerError:
                raise  # replica application bug, not a fabric fault
            except TransportError as err:
                self._note_fault(epoch, rank, err)
                if isinstance(err, WorkerTimeout) and retries < self.max_retries:
                    retries += 1
                    self.comm.record_recovery(epoch, retries=1)
                    if self.retry_backoff > 0:
                        time.sleep(self.retry_backoff * retries)
                    continue
                if isinstance(err, WorkerTimeout):
                    # Out of retries: the rank is wedged — kill it so
                    # the rebuild starts from a clean respawn.
                    try:
                        self.transport.kill_rank(rank)
                    except TransportError:
                        pass
                rebuild_next = True

    def _rebuild(self, rank: int, sent: dict, epoch: int) -> dict:
        """Deterministically rebuild one rank and resubmit ``sent``.

        Respawn if dead, re-sync from the retained boundary state with a
        codec reset, replay the rank's accepted-command log (reproducing
        its exact pre-fault replica state), then resubmit the faulted
        command.  Returns the resubmitted (re-stamped) command."""
        transport = self.transport
        if not transport.alive(rank):
            transport.respawn_rank(rank)
        if self._boundary is None:
            raise TransportError(
                f"rank {rank}: no boundary state retained to rebuild from",
                rank=rank,
            )
        state, lrs = self._boundary
        sync = self._submit(
            rank, {"op": "sync", "state": state, "lrs": lrs, "reset_codec": True}
        )
        self._collect_seq(rank, sync["seq"])
        self.comm.record_recovery(epoch, nbytes=state_nbytes(state))
        for logged in self._log[rank]:
            replayed = self._submit(rank, logged)
            self._collect_seq(rank, replayed["seq"])  # replies already consumed
        return self._submit(rank, sent)

    def _collect_all(self, pending: list, epoch: int) -> dict:
        """Collect every (rank, sent) pair's reply in rank order.

        A rank that forfeits does not abort the sweep: the others are
        still collected with full recovery (the strict one-reply-per-
        submit protocol holds), and their replies ride on the raised
        :class:`_RanksLost` so completed work is not discarded."""
        replies: dict[int, dict] = {}
        lost: list[int] = []
        for rank, sent in pending:
            try:
                replies[rank] = self._collect_checked(rank, sent, epoch)
            except _RanksLost as err:
                lost.extend(err.ranks)
        if lost:
            raise _RanksLost(lost, replies)
        return replies

    def _forfeit(self, ranks: list[int]) -> None:
        """Permanently drop ranks from the world: re-shard over the
        survivors after a full re-sync with codec resets; degrade to
        serial below the floor."""
        for rank in ranks:
            if rank not in self._active:
                continue
            self._active.remove(rank)
            self._log.pop(rank, None)
            try:
                if self.transport.alive(rank):
                    self.transport.kill_rank(rank)
            except TransportError:
                pass
            self.fault_log.append(
                {
                    "epoch": getattr(self.engine, "current_epoch", -1),
                    "rank": rank,
                    "kind": "forfeit",
                    "error": "rebuild budget exhausted; rank permanently lost",
                }
            )
            warnings.warn(
                f"repro.dist: rank {rank} permanently lost after exhausting "
                f"its rebuild budget; re-sharding over "
                f"{len(self._active)} surviving rank(s)",
                RuntimeWarning,
                stacklevel=3,
            )
        self._need_sync = True
        self._pending_codec_reset = True
        if len(self._active) < max(self.min_workers, 2):
            self._serial = True
            warnings.warn(
                f"repro.dist: active world size {len(self._active)} fell "
                f"below min_workers={self.min_workers}; degrading to serial "
                "single-process training",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # Sync + helpers.
    # ------------------------------------------------------------------
    def _lrs(self) -> dict:
        engine = self.engine
        gp_separate = (
            engine.gp_optimizer is not None
            and engine.gp_optimizer is not engine.optimizer
        )
        return {
            "lr": engine.optimizer.lr,
            "gp_lr": engine.gp_optimizer.lr if gp_separate else None,
            "predictor_lr": (
                engine.predictor.optimizer.lr if engine.predictor is not None else None
            ),
        }

    def _sync_replicas(self, epoch: int, lrs: dict) -> None:
        state = sync_state(self.engine)
        reset = self._pending_codec_reset
        if reset:
            self.codec.reset()  # rank 0's residual accounting too
        # The boundary is retained *before* the broadcast and the logs
        # cleared with it, so a fault during the sync itself rebuilds
        # from exactly this state with an empty replay log.
        self._boundary = (state, lrs)
        pending = []
        for rank in self._active[1:]:
            self._log[rank] = []
            pending.append(
                (
                    rank,
                    self._submit(
                        rank,
                        {"op": "sync", "state": state, "lrs": lrs, "reset_codec": reset},
                    ),
                )
            )
        with _obs_tracer().span(
            "dist.sync", phase=COMM, nbytes=state_nbytes(state) * len(pending)
        ):
            self._collect_all(pending, epoch)
        self.comm.record_sync(epoch, state_nbytes(state) * len(pending))
        self._need_sync = False
        self._drifted = False
        self._predictor_stale = False
        self._pending_codec_reset = False

    # ------------------------------------------------------------------
    # BP/WARMUP: shard → forward_backward → all-reduce → step everywhere.
    # ------------------------------------------------------------------
    def _train_bp(self, inner, inputs, targets, phase: Phase) -> BatchResult:
        engine = self.engine
        epoch = engine.current_epoch
        lrs = self._lrs()
        if self._need_sync or (self._drifted and self.resync == "phase"):
            self._sync_replicas(epoch, lrs)
        ranks = list(self._active)
        n = len(inputs)
        sizes = shard_sizes(n, len(ranks))
        offsets = [sum(sizes[:i]) for i in range(len(ranks))]
        pending = []
        for i in range(1, len(ranks)):
            if sizes[i] == 0:
                continue
            cut = slice(offsets[i], offsets[i] + sizes[i])
            pending.append(
                (
                    ranks[i],
                    self._submit(
                        ranks[i],
                        {
                            "op": "compute",
                            "inputs": inputs[cut],
                            "targets": targets[cut],
                            "phase": phase,
                            "scale": sizes[i] / n,
                            "lrs": lrs,
                        },
                    ),
                )
            )
        # Rank 0's shard runs in-process while worker ranks compute.
        with self._scope(inner):
            local = inner.forward_backward(
                inputs[: sizes[0]], targets[: sizes[0]], phase, grad_scale=sizes[0] / n
            )
        engine.model.clear_caches()
        params = engine.optimizer.parameters
        replies = {
            0: {
                "loss": local.loss,
                "n": sizes[0],
                "enc": [
                    self.codec.encode(index, param.grad)
                    if param.grad is not None
                    else None
                    for index, param in enumerate(params)
                ],
                "mse": local.predictor_mse,
                "mape": local.predictor_mape,
            }
        }
        # A forfeit here aborts the batch (gradient must cover the whole
        # batch): _RanksLost propagates and train_batch re-runs it.
        with _obs_tracer().span("dist.gather", phase=COMM, ranks=len(pending)):
            replies.update(self._collect_all(pending, epoch))
        for rank, sent in pending:
            self._log[rank].append(sent)
        # Rank-ordered decode+sum — the same kernel every worker runs in
        # its apply step, so all ranks install bitwise-equal gradients.
        encs_by_rank = [
            replies[rank]["enc"] if rank in replies else None for rank in ranks
        ]
        for index, param in enumerate(params):
            param.grad = decode_sum(
                [encs[index] if encs is not None else None for encs in encs_by_rank]
            )
        engine.optimizer.step()
        apply_pending = [
            (
                rank,
                self._submit(rank, {"op": "apply", "encs": encs_by_rank, "lrs": lrs}),
            )
            for rank in ranks[1:]
        ]
        try:
            with _obs_tracer().span(
                "dist.apply", phase=COMM, ranks=len(apply_pending)
            ):
                self._collect_all(apply_pending, epoch)
            for rank, sent in apply_pending:
                self._log[rank].append(sent)
        except _RanksLost as err:
            # Every survivor already applied (its ack was collected or
            # drained) and rank 0 stepped: the batch is complete.
            # Forfeit the dead without re-running.
            self._forfeit(err.ranks)
            for rank, sent in apply_pending:
                if rank in self._active:
                    self._log[rank].append(sent)
        self._account_grads(epoch, encs_by_rank)
        if engine.predictor is not None:
            self._predictor_stale = True
        return self._merge_results(replies, phase, n)

    def _account_grads(self, epoch: int, encs_by_rank: list) -> None:
        """Wire accounting: worker uplinks + the apply fan-out carrying
        every rank's payload to every worker."""
        wire_up = dense_up = wire_all = dense_all = 0
        for position, encs in enumerate(encs_by_rank):
            if encs is None:
                continue
            wire = sum(enc.wire_bytes for enc in encs if enc is not None)
            dense = sum(enc.dense_bytes for enc in encs if enc is not None)
            wire_all += wire
            dense_all += dense
            if position > 0:
                wire_up += wire
                dense_up += dense
        fan_out = len(self._active) - 1
        self.comm.record_grads(
            epoch,
            wire_up + fan_out * wire_all,
            dense_up + fan_out * dense_all,
        )

    def _merge_results(self, replies: dict, phase: Phase, n: int) -> BatchResult:
        """Shard-weighted merge of per-rank losses and predictor metrics
        (rank order throughout, so the merge is deterministic)."""
        engine = self.engine
        ranks = sorted(replies)
        weights = {rank: replies[rank]["n"] / n for rank in ranks}
        loss = sum(weights[rank] * replies[rank]["loss"] for rank in ranks)
        mse_acc: dict[int, float] = {}
        mape_acc: dict[int, float] = {}
        weight_acc: dict[int, float] = {}
        for rank in ranks:
            mse = replies[rank].get("mse") or {}
            mape = replies[rank].get("mape") or {}
            for index in mse:
                mse_acc[index] = mse_acc.get(index, 0.0) + weights[rank] * mse[index]
                mape_acc[index] = (
                    mape_acc.get(index, 0.0) + weights[rank] * mape.get(index, 0.0)
                )
                weight_acc[index] = weight_acc.get(index, 0.0) + weights[rank]
            # Rank 0's MAPEs were observed inside its own
            # forward_backward; feed worker MAPEs to the driver's
            # adaptive schedule in rank order.
            if rank > 0 and hasattr(engine.schedule, "observe_mape"):
                for index in sorted(mape):
                    engine.schedule.observe_mape(mape[index])
        mse_merged = {
            index: value / weight_acc[index] for index, value in mse_acc.items()
        }
        mape_merged = {
            index: value / weight_acc[index] for index, value in mape_acc.items()
        }
        return BatchResult(
            loss=float(loss),
            phase=phase,
            predictor_mse=mse_merged or None,
            predictor_mape=mape_merged or None,
            shard_batches=len(ranks),
        )

    # ------------------------------------------------------------------
    # GP: every rank predicts locally; zero gradient bytes on the wire.
    # ------------------------------------------------------------------
    def _train_gp(self, inner, inputs, targets) -> BatchResult:
        engine = self.engine
        epoch = engine.current_epoch
        lrs = self._lrs()
        if self._need_sync or (self._predictor_stale and self.resync == "phase"):
            # BP→GP boundary (or initial/invalidate) sync; consecutive
            # GP batches never sync — they stay comm-free by design.
            self._sync_replicas(epoch, lrs)
        ranks = list(self._active)
        n = len(inputs)
        sizes = shard_sizes(n, len(ranks))
        offsets = [sum(sizes[:i]) for i in range(len(ranks))]
        pending = []
        for i in range(1, len(ranks)):
            if sizes[i] == 0:
                continue
            cut = slice(offsets[i], offsets[i] + sizes[i])
            pending.append(
                (
                    ranks[i],
                    self._submit(
                        ranks[i],
                        {
                            "op": "gp",
                            "inputs": inputs[cut],
                            "targets": targets[cut],
                            "lrs": lrs,
                        },
                    ),
                )
            )
        with self._scope(inner):
            local = inner.train_batch(inputs[: sizes[0]], targets[: sizes[0]], Phase.GP)
        engine.model.clear_caches()
        replies = {0: {"loss": local.loss, "n": sizes[0]}}
        try:
            replies.update(self._collect_all(pending, epoch))
            for rank, sent in pending:
                self._log[rank].append(sent)
        except _RanksLost as err:
            # GP shard results are replica-local by design (the
            # trajectory is rank 0's alone; replica drift is overwritten
            # at the next boundary) — keep the survivors' work and merge
            # what arrived instead of double-applying rank 0's update.
            replies.update(err.replies)
            self._forfeit(err.ranks)
            for rank, sent in pending:
                if rank in self._active:
                    self._log[rank].append(sent)
            n = sum(reply["n"] for reply in replies.values())
        self._drifted = True
        self.comm.record_gp(epoch)
        return self._merge_results(replies, Phase.GP, n)
