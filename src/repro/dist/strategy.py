"""Data-parallel phase strategy: shard, all-reduce BP, skip comm on GP.

:class:`DataParallelStrategy` wraps an engine's existing per-phase
strategies (any :class:`~repro.core.engine.strategies.BackpropStrategy`
family for WARMUP/BP, any GP strategy for Phase GP) and distributes each
batch over ``workers`` ranks — rank 0 *is* the driver engine; ranks
``1..W-1`` are replicas behind a :class:`~repro.dist.transport.Transport`.

Per **BP/WARMUP** batch: the batch is cut into contiguous rank-ordered
shards (their concatenation is the original batch), every active rank
runs ``forward_backward`` with its shard's loss-gradient scaled by
``n_r / n`` (so the rank-sum equals full-batch mean-reduction
semantics), encodes its local gradients with its rank-local codec, and
the driver gathers all payloads.  *Every* rank then decodes and sums the
full payload set in rank order (:func:`~repro.dist.codec.decode_sum`),
installs the identical reduced gradient and steps its own optimizer —
bitwise lockstep without shipping dense sums.

Per **GP** batch: each rank runs the inner GP strategy on its shard —
predicted updates come from the rank-local predictor, so *zero gradient
bytes* cross the wire (ADA-GP's phase structure makes the comm story a
feature).  ``resync="phase"`` broadcasts rank 0's sync state at each
phase *boundary* — before the first GP batch after a BP run (replica
predictors trained on local shards are stale) and before the first BP
batch after a GP run (locally-predicted updates drifted the replica
models) — never inside a run, so consecutive GP batches stay strictly
comm-free.  Boundary syncing makes the whole trajectory a function of
rank-0 state alone: replica-local drift is always overwritten before it
can influence an observable result, which is exactly what makes
checkpoint/resume bitwise reproducible (identity codec) and transports
interchangeable.

``workers=1`` is pure delegation to the inner strategy — bitwise
identical to the serial engine, which is the enforceable end of the
"parallel == serial" contract (sharded float32 GEMMs cannot match
full-batch ones bitwise; ``W>=2`` vs serial is an allclose property,
``LocalTransport`` vs ``ProcessTransport`` at any ``W`` is the bitwise
one).

All communication volume lands in :class:`CommStats` (per-epoch wire
bytes, dense-equivalent bytes, sync broadcast bytes, measured
compression ratio).  The stats live on the strategy, not the engine —
strategies are not checkpointed, so a ddp engine's checkpoint stays
byte-identical to the serial engine's.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Mapping, Optional, Union

from ..core.engine.strategies import BatchResult, PhaseStrategy
from ..core.schedule import Phase
from ..nn.backend import backend_scope
from .codec import Codec, decode_sum, resolve_codec
from .transport import Transport, resolve_transport
from .worker import state_nbytes, sync_state


def shard_sizes(n: int, world_size: int) -> list[int]:
    """Near-equal contiguous shard sizes, biggest-first by rank.

    ``sum == n`` always; ranks beyond ``n`` get empty shards (inactive
    for that batch).  Rank 0 is never empty while ``n >= 1``, so the
    driver always has local work.
    """
    base, rem = divmod(n, world_size)
    return [base + (1 if rank < rem else 0) for rank in range(world_size)]


class CommStats:
    """Per-epoch communication accounting for one data-parallel strategy.

    ``grad_wire_bytes`` counts actual gradient payload traffic (worker
    uplinks plus the apply broadcast fan-out), ``grad_dense_bytes`` the
    bytes the same traffic would cost uncompressed — their ratio is the
    *measured* compression ratio, not an estimate.  ``sync_bytes``
    counts state resync broadcasts separately (identity-codec runs pay
    sync, not gradient compression).  Input-shard shipping is data-loader
    traffic, deliberately excluded from gradient accounting.
    """

    def __init__(self) -> None:
        self.epochs: dict[int, dict[str, float]] = {}

    def _row(self, epoch: int) -> dict[str, float]:
        return self.epochs.setdefault(
            epoch,
            {
                "grad_wire_bytes": 0,
                "grad_dense_bytes": 0,
                "sync_bytes": 0,
                "bp_batches": 0,
                "gp_batches": 0,
            },
        )

    def record_grads(self, epoch: int, wire_bytes: int, dense_bytes: int) -> None:
        row = self._row(epoch)
        row["grad_wire_bytes"] += wire_bytes
        row["grad_dense_bytes"] += dense_bytes
        row["bp_batches"] += 1

    def record_gp(self, epoch: int) -> None:
        self._row(epoch)["gp_batches"] += 1

    def record_sync(self, epoch: int, nbytes: int) -> None:
        self._row(epoch)["sync_bytes"] += nbytes

    def totals(self) -> dict[str, float]:
        """Sum of every epoch row (same keys)."""
        totals = {
            "grad_wire_bytes": 0.0,
            "grad_dense_bytes": 0.0,
            "sync_bytes": 0.0,
            "bp_batches": 0.0,
            "gp_batches": 0.0,
        }
        for row in self.epochs.values():
            for key, value in row.items():
                totals[key] += value
        return totals

    def compression_ratio(self, epoch: Optional[int] = None) -> float:
        """Measured dense/wire ratio for one epoch (or the whole run);
        NaN before any gradient traffic."""
        row = self.epochs.get(epoch, self._empty()) if epoch is not None else self.totals()
        if row["grad_wire_bytes"] <= 0:
            return float("nan")
        return row["grad_dense_bytes"] / row["grad_wire_bytes"]

    @staticmethod
    def _empty() -> dict[str, float]:
        return {
            "grad_wire_bytes": 0,
            "grad_dense_bytes": 0,
            "sync_bytes": 0,
            "bp_batches": 0,
            "gp_batches": 0,
        }


class DataParallelStrategy(PhaseStrategy):
    """Shard batches over ``workers`` ranks; all-reduce BP, comm-free GP.

    Parameters
    ----------
    inner:
        The serial per-phase strategies to distribute — one strategy or
        a ``{Phase: strategy}`` mapping (typically the engine's original
        ``strategies`` dict, taken over by :func:`repro.dist.ddp_engine`).
    workers:
        World size including the driver (rank 0).  ``1`` runs no
        transport at all and delegates every batch bitwise.
    codec:
        Gradient codec spec (name or instance) — *rank 0's* instance;
        replicas spawn their own so residual state stays rank-local.
    transport:
        ``"local"`` / ``"process"`` / a started-or-not
        :class:`~repro.dist.transport.Transport`.
    resync:
        ``"phase"`` (default): broadcast rank-0 sync state at phase
        boundaries (BP→GP: replica predictors went stale training on
        local shards; GP→BP: replica models drifted under local
        predicted updates).  ``"never"``: replicas keep their drifted
        predictors/weights until the next explicit
        :meth:`invalidate_replicas` — documented-unsafe, for drift
        experiments.
    worker_factory:
        Picklable ``factory(rank) -> DistWorker`` (required when
        ``workers > 1``); built by :func:`repro.dist.ddp_engine`.
    """

    def __init__(
        self,
        inner: Union[PhaseStrategy, Mapping[Phase, PhaseStrategy]],
        workers: int = 2,
        codec: Union[str, Codec, None] = "identity",
        transport="local",
        resync: str = "phase",
        worker_factory=None,
        backend=None,
    ) -> None:
        super().__init__(backend=backend)
        if isinstance(inner, PhaseStrategy):
            inner = {phase: inner for phase in Phase}
        self.inner: dict[Phase, PhaseStrategy] = dict(inner)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if resync not in ("phase", "never"):
            raise ValueError(f"resync must be 'phase' or 'never', got {resync!r}")
        self.workers = int(workers)
        self.codec = resolve_codec(codec)
        self.resync = resync
        self.worker_factory = worker_factory
        self._transport_spec = transport
        self.transport: Optional[Transport] = None
        self.comm = CommStats()
        self._need_sync = True
        # Replica models drifted under local GP updates (GP→BP resync).
        self._drifted = False
        # Replica predictors trained on local shards during a BP run
        # (BP→GP resync); never set when the engine has no predictor.
        self._predictor_stale = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        super().bind(engine)
        for strategy in {id(s): s for s in self.inner.values()}.values():
            strategy.bind(engine)
        if self.workers > 1 and self.transport is None:
            if self.worker_factory is None:
                raise ValueError(
                    "DataParallelStrategy(workers > 1) needs a worker_factory "
                    "(use repro.dist.ddp_engine to build one)"
                )
            self.transport = resolve_transport(self._transport_spec, self.workers)
            self.transport.start(self.worker_factory)

    def invalidate_replicas(self) -> None:
        """Force a full sync broadcast before the next training batch —
        call after mutating the driver out-of-band (e.g.
        ``engine.load_checkpoint``; replicas are not checkpointed)."""
        self._need_sync = True

    def close(self) -> None:
        """Shut the transport (and its worker ranks) down; idempotent."""
        if self.transport is not None:
            self.transport.close()
            self.transport = None
        self._need_sync = True

    # ------------------------------------------------------------------
    # Batch dispatch.
    # ------------------------------------------------------------------
    def _inner_for(self, phase: Phase) -> PhaseStrategy:
        try:
            return self.inner[phase]
        except KeyError:
            raise KeyError(
                f"no inner strategy for phase {phase!r}; "
                f"have {sorted(p.value for p in self.inner)}"
            ) from None

    def _scope(self, inner: PhaseStrategy):
        """The inner strategy's backend scope (the engine only sees this
        wrapper's ``backend``, so per-phase overrides are re-applied
        here — serial-equivalent resolution order)."""
        if inner.backend is not None:
            return backend_scope(inner.backend)
        return nullcontext()

    def train_batch(self, inputs, targets, phase: Phase) -> BatchResult:
        inner = self._inner_for(phase)
        if self.workers == 1:
            with self._scope(inner):
                return inner.train_batch(inputs, targets, phase)
        if phase is Phase.GP:
            return self._train_gp(inner, inputs, targets)
        return self._train_bp(inner, inputs, targets, phase)

    # ------------------------------------------------------------------
    # Sync + helpers.
    # ------------------------------------------------------------------
    def _lrs(self) -> dict:
        engine = self.engine
        gp_separate = (
            engine.gp_optimizer is not None
            and engine.gp_optimizer is not engine.optimizer
        )
        return {
            "lr": engine.optimizer.lr,
            "gp_lr": engine.gp_optimizer.lr if gp_separate else None,
            "predictor_lr": (
                engine.predictor.optimizer.lr if engine.predictor is not None else None
            ),
        }

    def _sync_replicas(self, epoch: int, lrs: dict) -> None:
        state = sync_state(self.engine)
        self.transport.broadcast({"op": "sync", "state": state, "lrs": lrs})
        self.comm.record_sync(epoch, state_nbytes(state) * (self.workers - 1))
        self._need_sync = False
        self._drifted = False
        self._predictor_stale = False

    # ------------------------------------------------------------------
    # BP/WARMUP: shard → forward_backward → all-reduce → step everywhere.
    # ------------------------------------------------------------------
    def _train_bp(self, inner, inputs, targets, phase: Phase) -> BatchResult:
        engine = self.engine
        epoch = engine.current_epoch
        lrs = self._lrs()
        if self._need_sync or (self._drifted and self.resync == "phase"):
            self._sync_replicas(epoch, lrs)
        n = len(inputs)
        sizes = shard_sizes(n, self.workers)
        offsets = [sum(sizes[:rank]) for rank in range(self.workers)]
        for rank in range(1, self.workers):
            if sizes[rank] == 0:
                continue
            cut = slice(offsets[rank], offsets[rank] + sizes[rank])
            self.transport.submit(
                rank,
                {
                    "op": "compute",
                    "inputs": inputs[cut],
                    "targets": targets[cut],
                    "phase": phase,
                    "scale": sizes[rank] / n,
                    "lrs": lrs,
                },
            )
        # Rank 0's shard runs in-process while worker ranks compute.
        with self._scope(inner):
            local = inner.forward_backward(
                inputs[: sizes[0]], targets[: sizes[0]], phase, grad_scale=sizes[0] / n
            )
        engine.model.clear_caches()
        params = engine.optimizer.parameters
        replies = {
            0: {
                "loss": local.loss,
                "n": sizes[0],
                "enc": [
                    self.codec.encode(index, param.grad)
                    if param.grad is not None
                    else None
                    for index, param in enumerate(params)
                ],
                "mse": local.predictor_mse,
                "mape": local.predictor_mape,
            }
        }
        for rank in range(1, self.workers):
            if sizes[rank] > 0:
                replies[rank] = self.transport.collect(rank)
        # Rank-ordered decode+sum — the same kernel every worker runs in
        # its apply step, so all ranks install bitwise-equal gradients.
        encs_by_rank = [
            replies[rank]["enc"] if rank in replies else None
            for rank in range(self.workers)
        ]
        for index, param in enumerate(params):
            param.grad = decode_sum(
                [encs[index] if encs is not None else None for encs in encs_by_rank]
            )
        engine.optimizer.step()
        self.transport.broadcast({"op": "apply", "encs": encs_by_rank, "lrs": lrs})
        self._account_grads(epoch, encs_by_rank)
        if engine.predictor is not None:
            self._predictor_stale = True
        return self._merge_results(replies, phase, n)

    def _account_grads(self, epoch: int, encs_by_rank: list) -> None:
        """Wire accounting: worker uplinks + the apply fan-out carrying
        every rank's payload to every worker."""
        wire_up = dense_up = wire_all = dense_all = 0
        for rank, encs in enumerate(encs_by_rank):
            if encs is None:
                continue
            wire = sum(enc.wire_bytes for enc in encs if enc is not None)
            dense = sum(enc.dense_bytes for enc in encs if enc is not None)
            wire_all += wire
            dense_all += dense
            if rank > 0:
                wire_up += wire
                dense_up += dense
        fan_out = self.workers - 1
        self.comm.record_grads(
            epoch,
            wire_up + fan_out * wire_all,
            dense_up + fan_out * dense_all,
        )

    def _merge_results(self, replies: dict, phase: Phase, n: int) -> BatchResult:
        """Shard-weighted merge of per-rank losses and predictor metrics
        (rank order throughout, so the merge is deterministic)."""
        engine = self.engine
        ranks = sorted(replies)
        weights = {rank: replies[rank]["n"] / n for rank in ranks}
        loss = sum(weights[rank] * replies[rank]["loss"] for rank in ranks)
        mse_acc: dict[int, float] = {}
        mape_acc: dict[int, float] = {}
        weight_acc: dict[int, float] = {}
        for rank in ranks:
            mse = replies[rank].get("mse") or {}
            mape = replies[rank].get("mape") or {}
            for index in mse:
                mse_acc[index] = mse_acc.get(index, 0.0) + weights[rank] * mse[index]
                mape_acc[index] = (
                    mape_acc.get(index, 0.0) + weights[rank] * mape.get(index, 0.0)
                )
                weight_acc[index] = weight_acc.get(index, 0.0) + weights[rank]
            # Rank 0's MAPEs were observed inside its own
            # forward_backward; feed worker MAPEs to the driver's
            # adaptive schedule in rank order.
            if rank > 0 and hasattr(engine.schedule, "observe_mape"):
                for index in sorted(mape):
                    engine.schedule.observe_mape(mape[index])
        mse_merged = {
            index: value / weight_acc[index] for index, value in mse_acc.items()
        }
        mape_merged = {
            index: value / weight_acc[index] for index, value in mape_acc.items()
        }
        return BatchResult(
            loss=float(loss),
            phase=phase,
            predictor_mse=mse_merged or None,
            predictor_mape=mape_merged or None,
            shard_batches=len(ranks),
        )

    # ------------------------------------------------------------------
    # GP: every rank predicts locally; zero gradient bytes on the wire.
    # ------------------------------------------------------------------
    def _train_gp(self, inner, inputs, targets) -> BatchResult:
        engine = self.engine
        epoch = engine.current_epoch
        lrs = self._lrs()
        if self._need_sync or (self._predictor_stale and self.resync == "phase"):
            # BP→GP boundary (or initial/invalidate) sync; consecutive
            # GP batches never sync — they stay comm-free by design.
            self._sync_replicas(epoch, lrs)
        n = len(inputs)
        sizes = shard_sizes(n, self.workers)
        offsets = [sum(sizes[:rank]) for rank in range(self.workers)]
        for rank in range(1, self.workers):
            if sizes[rank] == 0:
                continue
            cut = slice(offsets[rank], offsets[rank] + sizes[rank])
            self.transport.submit(
                rank,
                {
                    "op": "gp",
                    "inputs": inputs[cut],
                    "targets": targets[cut],
                    "lrs": lrs,
                },
            )
        with self._scope(inner):
            local = inner.train_batch(inputs[: sizes[0]], targets[: sizes[0]], Phase.GP)
        engine.model.clear_caches()
        replies = {0: {"loss": local.loss, "n": sizes[0]}}
        for rank in range(1, self.workers):
            if sizes[rank] > 0:
                replies[rank] = self.transport.collect(rank)
        self._drifted = True
        self.comm.record_gp(epoch)
        return self._merge_results(replies, Phase.GP, n)
