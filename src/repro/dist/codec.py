"""Gradient codecs for data-parallel training (wire format + AdaComp).

A :class:`Codec` turns one parameter's gradient into an
:class:`EncodedGrad` — the unit that crosses the transport — and back.
Two implementations ship:

* :class:`IdentityCodec` — dense float32 pass-through.  Decode returns
  the exact bytes that went in, which is what makes the
  ``LocalTransport`` ≡ ``ProcessTransport`` bitwise-parity gate of
  ``repro.dist`` enforceable end to end.
* :class:`AdaCompCodec` — the adaptive residual-sparsification scheme of
  AdaComp (Chen et al., arXiv 1712.02679).  Per encode call, the carried
  residual is folded into the gradient (``H = G + R``), ``H`` is cut
  into fixed-size bins, and an element is *sent* when
  ``|H_i| + |G_i| >= max_bin |H|`` — self-tuning per bin, so layers and
  training phases with different gradient scales need no global
  threshold knob.  Sent entries ship in a deterministic compact format
  — ``float16`` values (the rounding error is fed back into the
  residual, so nothing is lost) addressed by ``uint16`` bin-local
  offsets — and are replaced in the residual by their float16 rounding
  error; unsent entries accumulate locally and retry next round.
  Typical steady-state compression on conv/FC gradients is ~40–200×
  (``T/k`` for ``k`` sends per bin of ``T`` at 4 wire bytes per sent
  element).

Every encoded payload knows its own ``wire_bytes`` and ``dense_bytes``,
so compression ratios reported by ``CommStats`` are accounting of the
actual payloads, not estimates.

Decoding is stateless and codec-independent (module-level
:func:`decode`); only *encoding* carries per-parameter residual state.
:func:`decode_sum` is the shared reduction kernel: every rank — driver
and workers alike — sums decoded contributions in rank order through the
same accumulation loop, which is what makes the data-parallel all-reduce
bitwise-deterministic across transports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

#: Fixed per-payload framing cost charged to ``wire_bytes``: shape/kind
#: metadata and the value/index counts a real wire format would carry.
HEADER_BYTES = 16


@dataclass
class EncodedGrad:
    """One parameter gradient in wire form.

    ``kind="dense"`` carries the flattened float32 values outright;
    ``kind="sparse"`` carries the AdaComp compact format — selected
    values (``float16`` by default, rounding error fed back into the
    sender's residual) addressed by ``uint16`` *bin-local* offsets plus
    a ``uint16`` per-bin send count, ~4 bytes per sent element instead
    of the 8 a float32-value + uint32-global-index layout would cost.
    ``shape`` restores the original tensor layout on decode.
    """

    shape: tuple[int, ...]
    kind: str  # "dense" | "sparse"
    values: np.ndarray  # flat; float32 (dense) or wire dtype (sparse)
    offsets: Optional[np.ndarray] = None  # uint16, bin-local positions
    bin_counts: Optional[np.ndarray] = None  # uint16, sends per bin
    bin_size: int = 0

    @property
    def wire_bytes(self) -> int:
        """Bytes this payload occupies on the wire (header + arrays)."""
        total = HEADER_BYTES + self.values.nbytes
        if self.offsets is not None:
            total += self.offsets.nbytes
        if self.bin_counts is not None:
            total += self.bin_counts.nbytes
        return total

    @property
    def dense_bytes(self) -> int:
        """Bytes the uncompressed dense gradient would occupy."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(np.float32).itemsize

    @property
    def indices(self) -> Optional[np.ndarray]:
        """Global flat positions reconstructed from the bin-local wire
        layout (``None`` for dense payloads)."""
        if self.offsets is None or self.bin_counts is None:
            return None
        starts = (
            np.arange(self.bin_counts.size, dtype=np.int64) * self.bin_size
        )
        return (
            np.repeat(starts, self.bin_counts) + self.offsets.astype(np.int64)
        ).astype(np.uint32)


def decode(enc: EncodedGrad) -> np.ndarray:
    """Reconstruct the (lossy, for sparse codecs) dense gradient.

    Stateless: any rank can decode any rank's payload, which is what
    lets every rank recompute the identical reduced gradient from the
    full set of encoded contributions instead of shipping dense sums.
    """
    if enc.kind == "dense":
        return enc.values.reshape(enc.shape).copy()
    count = 1
    for dim in enc.shape:
        count *= int(dim)
    out = np.zeros(count, dtype=np.float32)
    indices = enc.indices
    if indices is not None and indices.size:
        out[indices] = enc.values.astype(np.float32)
    return out.reshape(enc.shape)


def _ordered_sum(arrays: Iterable[Optional[np.ndarray]]) -> Optional[np.ndarray]:
    """Sum arrays in iteration order, skipping ``None``; ``None`` if all
    are.  The single accumulation loop shared by driver and workers —
    float32 addition is order-sensitive, so bitwise cross-rank agreement
    requires everyone to add in the same (rank) order."""
    total: Optional[np.ndarray] = None
    for array in arrays:
        if array is None:
            continue
        total = array.copy() if total is None else total + array
    return total


def decode_sum(encoded: Sequence[Optional[EncodedGrad]]) -> Optional[np.ndarray]:
    """Decode + rank-ordered sum of one parameter's contributions.

    ``None`` entries (inactive ranks, grad-free parameters) are skipped;
    returns ``None`` when no rank contributed, mirroring the
    ``param.grad is None`` convention the optimizers already honor.
    """
    return _ordered_sum(decode(enc) if enc is not None else None for enc in encoded)


class Codec:
    """Gradient encoder: ``encode`` per parameter key, stateful residuals.

    ``key`` identifies the parameter across calls (the data-parallel
    strategy uses the parameter's index in ``optimizer.parameters``), so
    codecs with carry-over state — AdaComp's residuals — accumulate per
    parameter.  :meth:`spawn` returns a fresh same-configuration
    instance with empty state; every rank gets its own spawn so
    residual state is strictly rank-local, exactly as AdaComp specifies.
    """

    name = "codec"

    def encode(self, key: int, grad: np.ndarray) -> EncodedGrad:
        raise NotImplementedError

    def decode(self, enc: EncodedGrad) -> np.ndarray:
        """Instance-level alias of the stateless :func:`decode`."""
        return decode(enc)

    def spawn(self) -> "Codec":
        """A fresh codec with this one's configuration and no state."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop accumulated state (residuals); no-op for stateless codecs."""


class IdentityCodec(Codec):
    """Dense pass-through: decode(encode(g)) is bitwise ``g``."""

    name = "identity"

    def encode(self, key: int, grad: np.ndarray) -> EncodedGrad:
        flat = np.ascontiguousarray(grad, dtype=np.float32).reshape(-1).copy()
        return EncodedGrad(shape=tuple(grad.shape), kind="dense", values=flat)

    def spawn(self) -> "IdentityCodec":
        return IdentityCodec()


class AdaCompCodec(Codec):
    """AdaComp adaptive residual sparsification (arXiv 1712.02679).

    Parameters
    ----------
    bin_size:
        Elements per self-tuning bin (the paper's ``T``; 256 hits the
        paper's sweet spot for conv+FC layers).  Smaller bins send more
        per step (lower ratio, lower staleness); larger bins compress
        harder.  Capped at 65535 so bin-local offsets and per-bin send
        counts both fit ``uint16`` on the wire.
    wire_dtype:
        Dtype of sent values on the wire: ``"float16"`` (default; the
        float16 rounding error of every sent value is *fed back into
        the residual*, so the scheme stays lossless-in-the-limit) or
        ``"float32"`` (exact values, larger payload).

    Encoding a gradient ``G`` for key ``k``:

    1. ``H = G + residual[k]`` (residual starts at zero),
    2. split ``|H|`` into bins of ``bin_size``; each bin's threshold is
       its own ``max |H|``,
    3. send index ``i`` iff ``|H_i| + |G_i| >= threshold(bin of i)``
       *and* the threshold is positive (an all-zero bin sends nothing —
       without the guard the ``>=`` would select the entire bin),
    4. ``residual[k] = H`` with every sent entry replaced by its wire
       rounding error (zero under ``float32``).

    Selection, offsets and values are pure deterministic ``numpy`` on
    the local gradient — same input, same residual, same payload — so
    two ranks (or two transports) fed identical shards stay bitwise
    aligned.
    """

    name = "adacomp"

    #: float16 saturates at 65504; sent values are clipped into range and
    #: the clip error rides the residual like any other rounding error.
    _F16_MAX = np.float32(65504.0)

    def __init__(self, bin_size: int = 256, wire_dtype: str = "float16") -> None:
        if not 1 <= bin_size <= 65535:
            raise ValueError(
                f"bin_size must be in [1, 65535] (uint16 wire offsets), "
                f"got {bin_size}"
            )
        if wire_dtype not in ("float16", "float32"):
            raise ValueError(
                f"wire_dtype must be 'float16' or 'float32', got {wire_dtype!r}"
            )
        self.bin_size = int(bin_size)
        self.wire_dtype = wire_dtype
        self._residuals: dict[int, np.ndarray] = {}

    def encode(self, key: int, grad: np.ndarray) -> EncodedGrad:
        flat = np.ascontiguousarray(grad, dtype=np.float32).reshape(-1)
        residual = self._residuals.get(key)
        h = flat + residual if residual is not None else flat.copy()
        size = h.size
        bins = -(-size // self.bin_size)
        padded = bins * self.bin_size
        h_abs = np.abs(h)
        g_abs = np.abs(flat)
        if padded != size:
            pad = np.zeros(padded - size, dtype=np.float32)
            h_abs = np.concatenate([h_abs, pad])
            g_abs = np.concatenate([g_abs, pad])
        bin_max = h_abs.reshape(bins, self.bin_size).max(axis=1)
        threshold = np.repeat(bin_max, self.bin_size)
        selected = (h_abs + g_abs >= threshold) & (threshold > 0)
        sel = np.flatnonzero(selected[:size])
        exact = h[sel]
        if self.wire_dtype == "float16":
            values = np.clip(exact, -self._F16_MAX, self._F16_MAX).astype(
                np.float16
            )
        else:
            values = exact.copy()
        # Error feedback: what the wire cannot represent stays local and
        # retries next round — exact zero for a float32 wire.
        h[sel] = exact - values.astype(np.float32)
        self._residuals[key] = h
        offsets = (sel % self.bin_size).astype(np.uint16)
        bin_counts = np.bincount(sel // self.bin_size, minlength=bins).astype(
            np.uint16
        )
        return EncodedGrad(
            shape=tuple(grad.shape),
            kind="sparse",
            values=values,
            offsets=offsets,
            bin_counts=bin_counts,
            bin_size=self.bin_size,
        )

    def residual(self, key: int) -> Optional[np.ndarray]:
        """The carried (unsent) residual for ``key``; ``None`` before the
        first encode.  Exposed for tests and drift diagnostics."""
        return self._residuals.get(key)

    def spawn(self) -> "AdaCompCodec":
        return AdaCompCodec(bin_size=self.bin_size, wire_dtype=self.wire_dtype)

    def reset(self) -> None:
        self._residuals.clear()


def resolve_codec(spec) -> Codec:
    """Resolve a codec spec: name (``"identity"``/``"adacomp"``), a
    :class:`Codec` instance (returned as-is), or ``None`` (identity)."""
    if spec is None:
        return IdentityCodec()
    if isinstance(spec, Codec):
        return spec
    if isinstance(spec, str):
        if spec == "identity":
            return IdentityCodec()
        if spec == "adacomp":
            return AdaCompCodec()
        raise ValueError(
            f"unknown codec {spec!r}; expected 'identity', 'adacomp', "
            "or a Codec instance"
        )
    raise TypeError(f"cannot resolve codec from {type(spec).__name__}")
