"""Data-parallel training with phase-aware gradient compression.

ADA-GP's phase structure is a natural fit for data parallelism: GP
batches apply locally-predicted gradients and ship *nothing*, so all
gradient communication concentrates in BP phases — where AdaComp-style
adaptive residual compression (arXiv 1712.02679) shrinks it ~40–200×.
This package layers that story over the existing engine seams:

* :mod:`repro.dist.transport` — the comm substrate
  (:class:`LocalTransport` in-process, :class:`ProcessTransport` over
  ``multiprocessing``), swappable like ``repro.nn.backend``;
* :mod:`repro.dist.codec` — gradient wire formats
  (:class:`IdentityCodec`, :class:`AdaCompCodec`) with measured
  ``wire_bytes``/``dense_bytes`` accounting;
* :mod:`repro.dist.strategy` — :class:`DataParallelStrategy`, wrapping
  any serial :class:`~repro.core.engine.strategies.PhaseStrategy`;
* :mod:`repro.dist.engine` — the :func:`ddp_engine` factory.

Quickstart::

    from repro.dist import ddp_engine, dp_strategy, shutdown

    engine = ddp_engine(model, loss_fn, workers=2,
                        codec="adacomp", transport="process")
    engine.fit(train_batches, val_batches, epochs=30)
    print(dp_strategy(engine).comm.compression_ratio())
    shutdown(engine)
"""

from .codec import (
    AdaCompCodec,
    Codec,
    EncodedGrad,
    IdentityCodec,
    decode,
    decode_sum,
    resolve_codec,
)
from .engine import ddp_engine, dp_strategy, invalidate_replicas, shutdown
from .faults import ChaosTransport, Fault, FaultEvent, chaos, corrupt_frame
from .strategy import CommStats, DataParallelStrategy, shard_sizes
from .transport import (
    LocalTransport,
    PayloadCorrupt,
    ProcessTransport,
    Transport,
    TransportError,
    WorkerDied,
    WorkerError,
    WorkerTimeout,
    frame_payload,
    list_transports,
    register_transport,
    resolve_transport,
    unframe_payload,
)
from .worker import DistWorker, load_sync_state, state_nbytes, sync_state

__all__ = [
    "AdaCompCodec",
    "ChaosTransport",
    "Codec",
    "CommStats",
    "DataParallelStrategy",
    "DistWorker",
    "EncodedGrad",
    "Fault",
    "FaultEvent",
    "IdentityCodec",
    "LocalTransport",
    "PayloadCorrupt",
    "ProcessTransport",
    "Transport",
    "TransportError",
    "WorkerDied",
    "WorkerError",
    "WorkerTimeout",
    "chaos",
    "corrupt_frame",
    "ddp_engine",
    "decode",
    "decode_sum",
    "dp_strategy",
    "frame_payload",
    "invalidate_replicas",
    "list_transports",
    "load_sync_state",
    "register_transport",
    "resolve_codec",
    "resolve_transport",
    "shard_sizes",
    "shutdown",
    "state_nbytes",
    "sync_state",
]
