"""Replica-side of data-parallel training: one engine per worker rank.

A :class:`DistWorker` hosts a full replica :class:`TrainingEngine`
(model, optimizer(s), predictor — built by the same factory on every
rank) but never runs a fit loop; it answers the driver's commands:

``sync``
    Load a full sync-state broadcast (model weights, optimizer slots,
    predictor network/optimizer/scales) so the replica is bitwise
    identical to rank 0 — sent once at startup, after
    ``invalidate_replicas()``, and at phase boundaries (BP→GP and
    GP→BP) under ``resync="phase"``.
``compute``
    Run forward+backward (+ local predictor training) on this rank's
    shard with the driver's loss-gradient scale, then reply with the
    shard loss and this rank's codec-encoded gradients.
``apply``
    Decode *all* ranks' encoded gradients, sum them in rank order
    (:func:`~repro.dist.codec.decode_sum` — the same reduction the
    driver runs), install them as ``param.grad`` and step the local
    optimizer.  Every rank applies the identical reduced gradient, so
    replicas stay in lockstep without shipping dense sums.
``gp``
    Run a Phase-GP batch on this rank's shard — locally-predicted
    updates only, zero gradient communication (the ADA-GP phase
    structure's gift to data parallelism).

Commands piggyback the driver's current learning rates (the driver owns
the LR schedulers; replicas never step their own), so plateau/milestone
schedules need no extra protocol.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..core.engine import checkpoint as checkpoint_io
from ..core.engine.engine import TrainingEngine
from ..core.schedule import Phase
from ..nn.backend import backend_scope
from .codec import Codec, decode_sum


def sync_state(engine: TrainingEngine) -> dict:
    """Everything a replica must copy to match rank 0 bitwise.

    A strict subset of :func:`~repro.core.engine.checkpoint.engine_state`
    — no history, epoch counter, schedule or callback state (driver-only
    concerns), which also keeps resync broadcasts lean.
    """
    state: dict[str, Any] = {
        "model": engine.model.state_dict(),
        "optimizer": checkpoint_io.optimizer_state(engine.optimizer),
    }
    if engine.gp_optimizer is not None and engine.gp_optimizer is not engine.optimizer:
        state["gp_optimizer"] = checkpoint_io.optimizer_state(engine.gp_optimizer)
    if engine.predictor is not None:
        index_of = {id(layer): i for i, layer in enumerate(engine.layers)}
        state["predictor"] = {
            "network": engine.predictor.network.state_dict(),
            "optimizer": checkpoint_io.optimizer_state(engine.predictor.optimizer),
            "scales": {
                index_of[key]: value
                for key, value in engine.predictor._scales.items()
                if key in index_of
            },
        }
    return state


def load_sync_state(engine: TrainingEngine, state: dict) -> None:
    """Install a :func:`sync_state` snapshot into a replica engine."""
    engine.model.load_state_dict(state["model"])
    checkpoint_io.load_optimizer_state(engine.optimizer, state["optimizer"])
    if "gp_optimizer" in state:
        checkpoint_io.load_optimizer_state(engine.gp_optimizer, state["gp_optimizer"])
    if "predictor" in state and engine.predictor is not None:
        engine.predictor.network.load_state_dict(state["predictor"]["network"])
        checkpoint_io.load_optimizer_state(
            engine.predictor.optimizer, state["predictor"]["optimizer"]
        )
        engine.predictor._scales = {
            id(engine.layers[i]): value
            for i, value in state["predictor"]["scales"].items()
        }


def state_nbytes(obj: Any) -> int:
    """Total ndarray payload bytes in a (nested) sync/checkpoint state —
    the broadcast-size accounting behind ``CommStats.sync_bytes``."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, dict):
        return sum(state_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(state_nbytes(v) for v in obj)
    return 0


class DistWorker:
    """One worker rank: a replica engine plus its rank-local codec."""

    def __init__(
        self, engine: TrainingEngine, codec: Codec, rank: int, world_size: int
    ) -> None:
        self.engine = engine
        self.codec = codec
        self.rank = int(rank)
        self.world_size = int(world_size)

    # ------------------------------------------------------------------
    # Command dispatch.
    # ------------------------------------------------------------------
    def handle(self, cmd: dict) -> dict:
        reply = self._dispatch(cmd)
        if "seq" in cmd:
            # Echo the driver's per-rank sequence number so stale
            # duplicate replies (at-least-once delivery) are detectable.
            reply["seq"] = cmd["seq"]
        return reply

    def _dispatch(self, cmd: dict) -> dict:
        op = cmd.get("op")
        if op == "compute":
            return self._compute(cmd)
        if op == "apply":
            return self._apply(cmd)
        if op == "gp":
            return self._gp(cmd)
        if op == "sync":
            return self._sync(cmd)
        if op == "state":
            return self._state()
        if op in ("ping", "close"):
            return {"ok": True, "rank": self.rank}
        raise ValueError(f"rank {self.rank}: unknown command {op!r}")

    def _set_lrs(self, lrs: Optional[dict]) -> None:
        """Adopt the driver's current learning rates (driver owns the
        schedulers; replica scheduler objects never step)."""
        if not lrs:
            return
        engine = self.engine
        engine.optimizer.lr = lrs["lr"]
        if (
            lrs.get("gp_lr") is not None
            and engine.gp_optimizer is not None
            and engine.gp_optimizer is not engine.optimizer
        ):
            engine.gp_optimizer.lr = lrs["gp_lr"]
        if lrs.get("predictor_lr") is not None and engine.predictor is not None:
            engine.predictor.optimizer.lr = lrs["predictor_lr"]

    def _sync(self, cmd: dict) -> dict:
        load_sync_state(self.engine, cmd["state"])
        self._set_lrs(cmd.get("lrs"))
        if cmd.get("reset_codec"):
            # Recovery re-syncs drop codec residuals so the rebuilt
            # rank's error-feedback state is deterministic (it is then
            # regenerated by replaying the accepted-command log).
            self.codec.reset()
        return {"ok": True, "rank": self.rank}

    def _compute(self, cmd: dict) -> dict:
        """Shard forward+backward; reply with encoded local gradients."""
        self._set_lrs(cmd.get("lrs"))
        engine = self.engine
        phase: Phase = cmd["phase"]
        strategy = engine.strategy_for(phase)
        backend = strategy.backend if strategy.backend is not None else engine.backend
        with backend_scope(backend):
            result = strategy.forward_backward(
                cmd["inputs"], cmd["targets"], phase, grad_scale=cmd["scale"]
            )
        engine.model.clear_caches()
        encoded = [
            self.codec.encode(index, param.grad) if param.grad is not None else None
            for index, param in enumerate(engine.optimizer.parameters)
        ]
        return {
            "rank": self.rank,
            "loss": result.loss,
            "n": int(len(cmd["inputs"])),
            "enc": encoded,
            "mse": result.predictor_mse,
            "mape": result.predictor_mape,
        }

    def _apply(self, cmd: dict) -> dict:
        """Decode+sum all ranks' gradients (rank order, same kernel as
        the driver) and step the local optimizer."""
        self._set_lrs(cmd.get("lrs"))
        engine = self.engine
        encs_by_rank = cmd["encs"]
        for index, param in enumerate(engine.optimizer.parameters):
            rows = [
                encs[index] if encs is not None else None for encs in encs_by_rank
            ]
            param.grad = decode_sum(rows)
        engine.optimizer.step()
        return {"ok": True, "rank": self.rank}

    def _gp(self, cmd: dict) -> dict:
        """Phase-GP shard: locally-predicted updates, no gradient comm."""
        self._set_lrs(cmd.get("lrs"))
        result = self.engine.train_batch(cmd["inputs"], cmd["targets"], Phase.GP)
        return {
            "rank": self.rank,
            "loss": result.loss,
            "n": int(len(cmd["inputs"])),
        }

    def _state(self) -> dict:
        """Replica state snapshot — the parity tests' probe."""
        return {
            "rank": self.rank,
            "model": self.engine.model.state_dict(),
            "optimizer": checkpoint_io.optimizer_state(self.engine.optimizer),
        }
