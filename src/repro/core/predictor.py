"""The ADA-GP predictor model.

A single small network shared by *all* layers of the DNN (paper
contribution 2).  Following §3.6, it is a stack of pooling layers and a
small Conv2d, followed by one fully connected layer sized for the
largest layer of the DNN model; smaller layers mask / truncate the FC
output to their own gradient-row size.

Input  : reorganized activations ``(out_ch, 1, H, W)``
Output : gradient rows ``(out_ch, max_row)`` masked to ``(out_ch, row)``

The paper trains the predictor with Adam (lr 1e-4) on the true
backpropagated gradients during Warm-Up and Phase BP.  Because raw
gradient magnitudes vary by orders of magnitude across layers and over
training, the predictor can optionally learn *normalized* targets
(per-layer running RMS scale, re-applied at prediction time); the paper
does not specify this detail and it defaults to on for robustness
(DESIGN.md §2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.module import Module, PredictableMixin
from . import reorganize


class PredictorNetwork(Module):
    """Pool -> Conv -> ReLU -> Pool -> Flatten -> FC (paper Fig 6)."""

    def __init__(
        self,
        max_row: int,
        pool_size: int = 8,
        conv_channels: int = 4,
        final_pool: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.max_row = max_row
        self.net = nn.Sequential(
            nn.AdaptiveAvgPool2d(pool_size),
            nn.Conv2d(1, conv_channels, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.AdaptiveAvgPool2d(final_pool),
            nn.Flatten(),
            nn.Linear(conv_channels * final_pool * final_pool, max_row, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)

    # ------------------------------------------------------------------
    # Split execution for the batched multi-layer path.
    #
    # The front AdaptiveAvgPool2d maps every layer's reorganized
    # activations — whatever their spatial size — onto one common shape,
    # so pooled inputs from *different* DNN layers can be stacked along
    # the sample axis and pushed through the parameterized trunk in a
    # single forward/backward.  The pool has no parameters and the trunk
    # treats samples independently, so per-sample results match the
    # unbatched :meth:`forward` exactly.
    # ------------------------------------------------------------------
    def pool_front(self, x: np.ndarray) -> np.ndarray:
        """Apply only the shape-normalizing front pool (parameter-free)."""
        return self.net.layers[0].forward(x)

    def forward_trunk(self, pooled: np.ndarray) -> np.ndarray:
        """Run everything after the front pool on pre-pooled samples."""
        for layer in self.net.layers[1:]:
            pooled = layer(pooled)
        return pooled

    def backward_trunk(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward through the trunk only; the front pool holds no
        parameters, so trunk gradients are the complete picture."""
        for layer in reversed(self.net.layers[1:]):
            grad_out = layer.backward(grad_out)
        return grad_out


class GradientPredictor:
    """Predicts per-layer weight gradients from output activations.

    One instance serves every predictable layer of the model.  The
    latency of its forward pass is the ``alpha`` of the paper's timeline
    analysis (§3.7); the accelerator model derives alpha from this same
    architecture via :meth:`spec_alpha_ops`.
    """

    def __init__(
        self,
        max_row: int,
        lr: float = 1e-4,
        normalize_targets: bool = True,
        scale_momentum: float = 0.9,
        clip_sigma: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_row <= 0:
            raise ValueError(f"max_row must be positive, got {max_row}")
        self.network = PredictorNetwork(max_row, rng=rng)
        self.optimizer = nn.Adam(self.network.parameters(), lr=lr)
        self.mse_loss = nn.MSELoss()
        self.normalize_targets = normalize_targets
        self.scale_momentum = scale_momentum
        # Predicted rows are clipped to +-clip_sigma * (per-layer running
        # RMS): the accelerator's update datapath saturates rather than
        # overflowing, and the clip breaks the "noisy prediction -> larger
        # gradients -> larger scale" feedback loop in long fp32 runs.
        self.clip_sigma = clip_sigma
        self._scales: dict[int, float] = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_model(cls, model: Module, **kwargs) -> "GradientPredictor":
        """Size the FC layer for the largest layer of ``model`` (§3.6)."""
        layers = nn.predictable_layers(model)
        if not layers:
            raise ValueError("model has no ADA-GP-predictable layers")
        max_row = max(layer.gradient_size() for layer in layers)
        return cls(max_row=max_row, **kwargs)

    # ------------------------------------------------------------------
    def _scale_for(self, layer: PredictableMixin) -> float:
        return self._scales.get(id(layer), 1.0)

    def _update_scale(self, layer: PredictableMixin, rows: np.ndarray) -> None:
        rms = float(np.sqrt(np.mean(rows.astype(np.float64) ** 2))) or 1e-12
        key = id(layer)
        if key in self._scales:
            self._scales[key] = (
                self.scale_momentum * self._scales[key]
                + (1 - self.scale_momentum) * rms
            )
        else:
            self._scales[key] = rms

    # ------------------------------------------------------------------
    def _check_capacity(self, layer: PredictableMixin) -> int:
        row = layer.gradient_size()
        if row > self.network.max_row:
            raise ValueError(
                f"layer gradient row {row} exceeds predictor capacity "
                f"{self.network.max_row}; size the predictor with for_model()"
            )
        return row

    def _denormalize_rows(
        self, layer: PredictableMixin, rows: np.ndarray
    ) -> np.ndarray:
        if not self.normalize_targets:
            return rows
        scale = self._scale_for(layer)
        bound = self.clip_sigma * scale
        return np.clip(rows * scale, -bound, bound)

    def predict_rows(self, layer: PredictableMixin, output: np.ndarray) -> np.ndarray:
        """Raw masked prediction rows for a layer, in gradient units.

        Prediction is inherently forward-only — the predictor trains
        against true gradients elsewhere (:meth:`train_step`) — so the
        network runs under :func:`~repro.nn.no_grad` and retains none of
        its own backward caches.
        """
        row = self._check_capacity(layer)
        reorganized = reorganize.reorganize_activations(layer, output)
        with nn.no_grad():
            full = self.network(reorganized)
        return self._denormalize_rows(layer, full[:, :row])

    def predict(
        self, layer: PredictableMixin, output: np.ndarray
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Predicted (weight_grad, bias_grad) for ``layer``."""
        rows = self.predict_rows(layer, output)
        return reorganize.unflatten_gradients(layer, rows)

    def _stacked_forward(
        self, layers: list[PredictableMixin], outputs: list[np.ndarray]
    ) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
        """One trunk forward over all layers' pooled activations.

        Returns the stacked FC output ``(sum(units_i), max_row)`` plus
        per-layer ``(start, units, row)`` slices into it.
        """
        if len(layers) != len(outputs):
            raise ValueError(
                f"got {len(layers)} layers but {len(outputs)} activations"
            )
        if not layers:
            raise ValueError("batched predictor call received no layers")
        pooled: list[np.ndarray] = []
        slices: list[tuple[int, int, int]] = []
        start = 0
        for layer, output in zip(layers, outputs):
            row = self._check_capacity(layer)
            units, _ = reorganize.gradient_rows(layer)
            reorganized = reorganize.reorganize_activations(layer, output)
            pooled.append(self.network.pool_front(reorganized))
            slices.append((start, units, row))
            start += units
        stacked = np.concatenate(pooled, axis=0)
        full = self.network.forward_trunk(stacked)
        return full, slices

    def predict_many(
        self, layers: list[PredictableMixin], outputs: list[np.ndarray]
    ) -> list[tuple[np.ndarray, Optional[np.ndarray]]]:
        """Batched :meth:`predict` over many layers in one forward.

        Numerically equivalent to calling :meth:`predict` per layer (the
        trunk treats samples independently); one network invocation
        instead of ``len(layers)``, run under no-grad like
        :meth:`predict_rows`.
        """
        with nn.no_grad():
            full, slices = self._stacked_forward(layers, outputs)
        results = []
        for layer, (start, units, row) in zip(layers, slices):
            rows = self._denormalize_rows(layer, full[start : start + units, :row])
            results.append(reorganize.unflatten_gradients(layer, rows))
        return results

    # ------------------------------------------------------------------
    def _prediction_metrics(
        self, layer: PredictableMixin, pred_rows: np.ndarray, target_rows: np.ndarray
    ) -> tuple[float, float]:
        """(mse, mape) in raw gradient units (float64 avoids fp32
        overflow on transiently exploding gradients)."""
        scale = self._scale_for(layer) if self.normalize_targets else 1.0
        raw_pred = pred_rows.astype(np.float64) * scale
        target64 = target_rows.astype(np.float64)
        mse = float(np.mean((raw_pred - target64) ** 2))
        mape = mean_absolute_percentage_error(target64, raw_pred)
        return mse, mape

    def _loss_grad_rows(
        self, layer: PredictableMixin, pred_rows: np.ndarray, target_rows: np.ndarray
    ) -> np.ndarray:
        """MSE gradient on (optionally normalized) targets."""
        scale = self._scale_for(layer) if self.normalize_targets else 1.0
        target_scaled = target_rows / scale if self.normalize_targets else target_rows
        _, grad_rows = self.mse_loss(pred_rows, target_scaled.astype(np.float32))
        return grad_rows

    def train_step(
        self,
        layer: PredictableMixin,
        output: np.ndarray,
        weight_grad: np.ndarray,
        bias_grad: Optional[np.ndarray],
        apply_update: bool = True,
    ) -> tuple[float, float]:
        """One predictor update against true gradients.

        Returns ``(mse, mape)`` of the prediction *before* the update,
        in raw gradient units — these feed the paper's Fig 15 curves.
        ``apply_update=False`` accumulates gradients without stepping
        the optimizer (used by the equivalence tests).
        """
        row = self._check_capacity(layer)
        target_rows = reorganize.flatten_gradients(layer, weight_grad, bias_grad)
        if self.normalize_targets:
            self._update_scale(layer, target_rows)
        reorganized = reorganize.reorganize_activations(layer, output)
        full = self.network(reorganized)
        pred_rows = full[:, :row]
        mse, mape = self._prediction_metrics(layer, pred_rows, target_rows)
        grad_full = np.zeros_like(full)
        grad_full[:, :row] = self._loss_grad_rows(layer, pred_rows, target_rows)
        self.network.zero_grad()
        self.network.backward(grad_full)
        if apply_update:
            self.optimizer.step()
        return mse, mape

    def train_step_many(
        self,
        layers: list[PredictableMixin],
        outputs: list[np.ndarray],
        weight_grads: list[np.ndarray],
        bias_grads: list[Optional[np.ndarray]],
        apply_update: bool = True,
    ) -> list[tuple[float, float]]:
        """Batched :meth:`train_step`: one forward/backward/step for all
        layers of a batch instead of a per-layer Python loop.

        All layers' pooled activations are stacked into one trunk pass;
        the backward gradient is the per-layer MSE gradients laid into
        their slices, so the accumulated parameter gradient equals the
        *sum* of the per-layer gradients at the current weights (see
        ``tests/core/test_predictor_batched.py``).  The single combined
        Adam step replaces ``len(layers)`` sequential steps — same
        gradient signal, one optimizer trajectory; Fig-15 metrics are
        still reported per layer, *before* the update.
        """
        target_rows_list = []
        for layer, weight_grad, bias_grad in zip(layers, weight_grads, bias_grads):
            target_rows = reorganize.flatten_gradients(layer, weight_grad, bias_grad)
            if self.normalize_targets:
                self._update_scale(layer, target_rows)
            target_rows_list.append(target_rows)
        full, slices = self._stacked_forward(layers, outputs)
        grad_full = np.zeros_like(full)
        metrics: list[tuple[float, float]] = []
        for layer, target_rows, (start, units, row) in zip(
            layers, target_rows_list, slices
        ):
            pred_rows = full[start : start + units, :row]
            metrics.append(self._prediction_metrics(layer, pred_rows, target_rows))
            grad_full[start : start + units, :row] = self._loss_grad_rows(
                layer, pred_rows, target_rows
            )
        self.network.zero_grad()
        self.network.backward_trunk(grad_full)
        if apply_update:
            self.optimizer.step()
        return metrics

    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Trainable parameter count of the predictor network."""
        return self.network.num_parameters()


def mean_absolute_percentage_error(
    actual: np.ndarray, predicted: np.ndarray, eps: float = 1e-8
) -> float:
    """MAPE as defined in paper Eq. 1, with an epsilon guard.

    Expressed as a percentage of the mean absolute actual value to avoid
    division blow-ups on near-zero gradients (the paper plots values in
    the 0-2% range).
    """
    denom = float(np.mean(np.abs(actual))) + eps
    return float(np.mean(np.abs(actual - predicted)) / denom * 100.0)
