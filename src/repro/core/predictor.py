"""The ADA-GP predictor model.

A single small network shared by *all* layers of the DNN (paper
contribution 2).  Following §3.6, it is a stack of pooling layers and a
small Conv2d, followed by one fully connected layer sized for the
largest layer of the DNN model; smaller layers mask / truncate the FC
output to their own gradient-row size.

Input  : reorganized activations ``(out_ch, 1, H, W)``
Output : gradient rows ``(out_ch, max_row)`` masked to ``(out_ch, row)``

The paper trains the predictor with Adam (lr 1e-4) on the true
backpropagated gradients during Warm-Up and Phase BP.  Because raw
gradient magnitudes vary by orders of magnitude across layers and over
training, the predictor can optionally learn *normalized* targets
(per-layer running RMS scale, re-applied at prediction time); the paper
does not specify this detail and it defaults to on for robustness
(DESIGN.md §2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.module import Module, PredictableMixin
from . import reorganize


class PredictorNetwork(Module):
    """Pool -> Conv -> ReLU -> Pool -> Flatten -> FC (paper Fig 6)."""

    def __init__(
        self,
        max_row: int,
        pool_size: int = 8,
        conv_channels: int = 4,
        final_pool: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.max_row = max_row
        self.net = nn.Sequential(
            nn.AdaptiveAvgPool2d(pool_size),
            nn.Conv2d(1, conv_channels, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.AdaptiveAvgPool2d(final_pool),
            nn.Flatten(),
            nn.Linear(conv_channels * final_pool * final_pool, max_row, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)


class GradientPredictor:
    """Predicts per-layer weight gradients from output activations.

    One instance serves every predictable layer of the model.  The
    latency of its forward pass is the ``alpha`` of the paper's timeline
    analysis (§3.7); the accelerator model derives alpha from this same
    architecture via :meth:`spec_alpha_ops`.
    """

    def __init__(
        self,
        max_row: int,
        lr: float = 1e-4,
        normalize_targets: bool = True,
        scale_momentum: float = 0.9,
        clip_sigma: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_row <= 0:
            raise ValueError(f"max_row must be positive, got {max_row}")
        self.network = PredictorNetwork(max_row, rng=rng)
        self.optimizer = nn.Adam(self.network.parameters(), lr=lr)
        self.mse_loss = nn.MSELoss()
        self.normalize_targets = normalize_targets
        self.scale_momentum = scale_momentum
        # Predicted rows are clipped to +-clip_sigma * (per-layer running
        # RMS): the accelerator's update datapath saturates rather than
        # overflowing, and the clip breaks the "noisy prediction -> larger
        # gradients -> larger scale" feedback loop in long fp32 runs.
        self.clip_sigma = clip_sigma
        self._scales: dict[int, float] = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_model(cls, model: Module, **kwargs) -> "GradientPredictor":
        """Size the FC layer for the largest layer of ``model`` (§3.6)."""
        layers = nn.predictable_layers(model)
        if not layers:
            raise ValueError("model has no ADA-GP-predictable layers")
        max_row = max(layer.gradient_size() for layer in layers)
        return cls(max_row=max_row, **kwargs)

    # ------------------------------------------------------------------
    def _scale_for(self, layer: PredictableMixin) -> float:
        return self._scales.get(id(layer), 1.0)

    def _update_scale(self, layer: PredictableMixin, rows: np.ndarray) -> None:
        rms = float(np.sqrt(np.mean(rows.astype(np.float64) ** 2))) or 1e-12
        key = id(layer)
        if key in self._scales:
            self._scales[key] = (
                self.scale_momentum * self._scales[key]
                + (1 - self.scale_momentum) * rms
            )
        else:
            self._scales[key] = rms

    # ------------------------------------------------------------------
    def predict_rows(self, layer: PredictableMixin, output: np.ndarray) -> np.ndarray:
        """Raw masked prediction rows for a layer, in gradient units."""
        units, row = reorganize.gradient_rows(layer)
        if row > self.network.max_row:
            raise ValueError(
                f"layer gradient row {row} exceeds predictor capacity "
                f"{self.network.max_row}; size the predictor with for_model()"
            )
        reorganized = reorganize.reorganize_activations(layer, output)
        full = self.network(reorganized)
        rows = full[:, :row]
        if self.normalize_targets:
            scale = self._scale_for(layer)
            bound = self.clip_sigma * scale
            rows = np.clip(rows * scale, -bound, bound)
        return rows

    def predict(
        self, layer: PredictableMixin, output: np.ndarray
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Predicted (weight_grad, bias_grad) for ``layer``."""
        rows = self.predict_rows(layer, output)
        return reorganize.unflatten_gradients(layer, rows)

    # ------------------------------------------------------------------
    def train_step(
        self,
        layer: PredictableMixin,
        output: np.ndarray,
        weight_grad: np.ndarray,
        bias_grad: Optional[np.ndarray],
    ) -> tuple[float, float]:
        """One predictor update against true gradients.

        Returns ``(mse, mape)`` of the prediction *before* the update,
        in raw gradient units — these feed the paper's Fig 15 curves.
        """
        units, row = reorganize.gradient_rows(layer)
        target_rows = reorganize.flatten_gradients(layer, weight_grad, bias_grad)
        if self.normalize_targets:
            self._update_scale(layer, target_rows)
        scale = self._scale_for(layer) if self.normalize_targets else 1.0
        reorganized = reorganize.reorganize_activations(layer, output)
        full = self.network(reorganized)
        pred_rows = full[:, :row]
        # Metrics in raw gradient units (float64 avoids fp32 overflow on
        # transiently exploding gradients).
        raw_pred = (
            pred_rows.astype(np.float64) * scale
            if self.normalize_targets
            else pred_rows.astype(np.float64)
        )
        target64 = target_rows.astype(np.float64)
        mse = float(np.mean((raw_pred - target64) ** 2))
        mape = mean_absolute_percentage_error(target64, raw_pred)
        # Loss on (optionally normalized) targets, masked to `row` columns.
        target_scaled = target_rows / scale if self.normalize_targets else target_rows
        _, grad_rows = self.mse_loss(pred_rows, target_scaled.astype(np.float32))
        grad_full = np.zeros_like(full)
        grad_full[:, :row] = grad_rows
        self.network.zero_grad()
        self.network.backward(grad_full)
        self.optimizer.step()
        return mse, mape

    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Trainable parameter count of the predictor network."""
        return self.network.num_parameters()


def mean_absolute_percentage_error(
    actual: np.ndarray, predicted: np.ndarray, eps: float = 1e-8
) -> float:
    """MAPE as defined in paper Eq. 1, with an epsilon guard.

    Expressed as a percentage of the mean absolute actual value to avoid
    division blow-ups on near-zero gradients (the paper plots values in
    the 0-2% range).
    """
    denom = float(np.mean(np.abs(actual))) + eps
    return float(np.mean(np.abs(actual - predicted)) / denom * 100.0)
