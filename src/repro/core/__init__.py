"""ADA-GP core: predictor, reorganization, schedules, engine, trainers."""

from . import metrics, reorganize
from .history import History
from .predictor import GradientPredictor, PredictorNetwork
from .schedule import (
    AdaptiveSchedule,
    HeuristicSchedule,
    PAPER_FINAL_RATIO,
    PAPER_RATIO_LADDER,
    Phase,
    phase_counts,
)
from .engine import (
    BackpropStrategy,
    BatchResult,
    Callback,
    CallbackList,
    Checkpointing,
    DNIStrategy,
    EarlyStopping,
    EpochStats,
    GradPredictStrategy,
    LambdaCallback,
    PhaseStrategy,
    PipelineGPStrategy,
    ThroughputTimer,
    TrainingEngine,
    adagp_engine,
    bp_engine,
    dni_engine,
    pipeline_adagp_engine,
)
from .dni import DNITrainer, dni_batch_cost_ratio
from .trainer import AdaGPTrainer, BPTrainer

__all__ = [
    "metrics",
    "reorganize",
    "History",
    "GradientPredictor",
    "PredictorNetwork",
    "AdaptiveSchedule",
    "HeuristicSchedule",
    "PAPER_FINAL_RATIO",
    "PAPER_RATIO_LADDER",
    "Phase",
    "phase_counts",
    "TrainingEngine",
    "EpochStats",
    "PhaseStrategy",
    "BackpropStrategy",
    "GradPredictStrategy",
    "DNIStrategy",
    "PipelineGPStrategy",
    "BatchResult",
    "Callback",
    "CallbackList",
    "LambdaCallback",
    "EarlyStopping",
    "Checkpointing",
    "ThroughputTimer",
    "bp_engine",
    "adagp_engine",
    "dni_engine",
    "pipeline_adagp_engine",
    "AdaGPTrainer",
    "BPTrainer",
    "DNITrainer",
    "dni_batch_cost_ratio",
]
