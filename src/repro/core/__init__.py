"""ADA-GP core: predictor, reorganization, schedules, trainers, metrics."""

from . import metrics, reorganize
from .history import History
from .predictor import GradientPredictor, PredictorNetwork
from .schedule import (
    AdaptiveSchedule,
    HeuristicSchedule,
    PAPER_FINAL_RATIO,
    PAPER_RATIO_LADDER,
    Phase,
    phase_counts,
)
from .dni import DNITrainer, dni_batch_cost_ratio
from .trainer import AdaGPTrainer, BPTrainer

__all__ = [
    "metrics",
    "reorganize",
    "History",
    "GradientPredictor",
    "PredictorNetwork",
    "AdaptiveSchedule",
    "HeuristicSchedule",
    "PAPER_FINAL_RATIO",
    "PAPER_RATIO_LADDER",
    "Phase",
    "phase_counts",
    "AdaGPTrainer",
    "BPTrainer",
    "DNITrainer",
    "dni_batch_cost_ratio",
]
