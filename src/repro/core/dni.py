"""DNI baseline (Jaderberg et al. 2017), for the paper's §2 comparison.

Decoupled Neural Interfaces also predict gradients, but differently from
ADA-GP in the two ways the paper leans on:

1. DNI *applies* synthetic gradients during every forward pass AND still
   runs full backpropagation afterwards (to train both the model and the
   auxiliary predictor) — so it never skips backward work: "DNI does not
   improve training time.  In fact, it slows down the training time."
2. ADA-GP instead alternates: predictions are applied only in Phase GP
   batches where backprop is skipped entirely.

This implementation reuses the ADA-GP predictor machinery so the two
schemes differ only in scheduling, making the cost comparison
apples-to-apples: :func:`dni_batch_cost_ratio` shows DNI's per-batch
cost is strictly above plain BP while ADA-GP's training mix is below.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.module import Module
from ..nn.optim import Optimizer
from .predictor import GradientPredictor
from .trainer import BPTrainer, LossFn, MetricFn


class DNITrainer(BPTrainer):
    """Backprop + per-layer synthetic-gradient application every batch.

    Each batch: forward (applying predicted gradients layer-by-layer as
    DNI's decoupled updates), then ordinary backprop that both updates
    the model with true gradients and trains the predictor.  Strictly
    more work than BP — the point of the paper's comparison.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        optimizer: Optional[Optimizer] = None,
        predictor: Optional[GradientPredictor] = None,
        lr: float = 1e-3,
        predictor_lr: float = 1e-4,
        synthetic_lr_scale: float = 0.1,
        metric_fn: Optional[MetricFn] = None,
    ) -> None:
        super().__init__(model, loss_fn, optimizer, lr, metric_fn)
        self.predictor = predictor or GradientPredictor.for_model(
            model, lr=predictor_lr
        )
        self.layers = nn.predictable_layers(model)
        if not self.layers:
            raise ValueError("model has no predictable layers for DNI")
        self.synthetic_lr_scale = synthetic_lr_scale
        self._activations: dict[int, np.ndarray] = {}

    def train_batch(self, inputs, targets) -> float:
        self.model.train()
        self._activations.clear()

        def hook(layer: Module, output: np.ndarray) -> None:
            # DNI's decoupled update: apply the synthetic gradient the
            # moment the layer's forward completes...
            self._activations[id(layer)] = output
            weight_grad, bias_grad = self.predictor.predict(layer, output)
            self.optimizer.apply_gradient(
                layer.weight, self.synthetic_lr_scale * weight_grad
            )
            if layer.bias is not None and bias_grad is not None:
                self.optimizer.apply_gradient(
                    layer.bias, self.synthetic_lr_scale * bias_grad
                )

        for layer in self.layers:
            layer.forward_hook = hook
        try:
            outputs = self.model(inputs)
        finally:
            for layer in self.layers:
                layer.forward_hook = None
        # ...and then backpropagation still runs in full (the paper's
        # §2 point: DNI keeps the backward pass).
        loss, grad = self.loss_fn(outputs, targets)
        self.optimizer.zero_grad()
        self.model.backward(grad)
        self.optimizer.step()
        for layer in self.layers:
            output = self._activations.get(id(layer))
            if output is None or layer.weight.grad is None:
                continue
            bias_grad = layer.bias.grad if layer.bias is not None else None
            self.predictor.train_step(layer, output, layer.weight.grad, bias_grad)
        return loss


def dni_batch_cost_ratio(model_spec, accelerator, batch: int = 32) -> float:
    """Per-batch accelerator cycles of DNI relative to plain backprop.

    DNI = Phase-BP-style cost (backprop + predictor fw/bw per layer)
    with no GP batches ever, so the ratio is > 1: the hardware
    restatement of "DNI slows down the training time".
    """
    from ..accel.config import AdaGPDesign

    base = accelerator.baseline_batch(model_spec, batch).cycles
    dni = accelerator.phase_bp_batch(model_spec, batch, AdaGPDesign.EFFICIENT).cycles
    return dni / base
