"""DNI baseline (Jaderberg et al. 2017), for the paper's §2 comparison.

Decoupled Neural Interfaces also predict gradients, but differently from
ADA-GP in the two ways the paper leans on:

1. DNI *applies* synthetic gradients during every forward pass AND still
   runs full backpropagation afterwards (to train both the model and the
   auxiliary predictor) — so it never skips backward work: "DNI does not
   improve training time.  In fact, it slows down the training time."
2. ADA-GP instead alternates: predictions are applied only in Phase GP
   batches where backprop is skipped entirely.

Under the unified engine the two schemes differ only in strategy wiring
— DNI runs :class:`~repro.core.engine.DNIStrategy` on every batch where
ADA-GP alternates Backprop/GradPredict strategies — making the cost
comparison apples-to-apples: :func:`dni_batch_cost_ratio` shows DNI's
per-batch cost is strictly above plain BP while ADA-GP's training mix is
below.  ``DNITrainer`` is the compatibility shim over
:func:`~repro.core.engine.dni_engine`.
"""

from __future__ import annotations

from typing import Optional

from ..nn.module import Module, PredictableMixin
from ..nn.optim import Optimizer
from .engine import dni_engine
from .engine.strategies import DNIStrategy
from .predictor import GradientPredictor
from .schedule import Phase
from .trainer import BPTrainer, LossFn, MetricFn


class DNITrainer(BPTrainer):
    """Backprop + per-layer synthetic-gradient application every batch.

    Each batch: forward (applying predicted gradients layer-by-layer as
    DNI's decoupled updates), then ordinary backprop that both updates
    the model with true gradients and trains the predictor.  Strictly
    more work than BP — the point of the paper's comparison.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        optimizer: Optional[Optimizer] = None,
        predictor: Optional[GradientPredictor] = None,
        lr: float = 1e-3,
        predictor_lr: float = 1e-4,
        synthetic_lr_scale: float = 0.1,
        metric_fn: Optional[MetricFn] = None,
    ) -> None:
        # Deliberately no super().__init__: the engine carries all state.
        self.engine = dni_engine(
            model,
            loss_fn,
            optimizer=optimizer,
            predictor=predictor,
            lr=lr,
            predictor_lr=predictor_lr,
            synthetic_lr_scale=synthetic_lr_scale,
            metric_fn=metric_fn,
        )

    @property
    def predictor(self) -> GradientPredictor:
        return self.engine.predictor

    @property
    def layers(self) -> list[PredictableMixin]:
        return self.engine.layers

    @property
    def synthetic_lr_scale(self) -> float:
        strategy = self.engine.strategy_for(Phase.BP)
        assert isinstance(strategy, DNIStrategy)
        return strategy.synthetic_lr_scale


def dni_batch_cost_ratio(model_spec, accelerator, batch: int = 32) -> float:
    """Per-batch accelerator cycles of DNI relative to plain backprop.

    DNI = Phase-BP-style cost (backprop + predictor fw/bw per layer)
    with no GP batches ever, so the ratio is > 1: the hardware
    restatement of "DNI slows down the training time".
    """
    from ..accel.config import AdaGPDesign

    base = accelerator.baseline_batch(model_spec, batch).cycles
    dni = accelerator.phase_bp_batch(model_spec, batch, AdaGPDesign.EFFICIENT).cycles
    return dni / base
