"""Pluggable training engine: one loop, phase strategies, callbacks.

See :mod:`repro.core.engine.engine` for the loop,
:mod:`repro.core.engine.strategies` for the per-batch phase strategies,
:mod:`repro.core.engine.events` for the callback system and
:mod:`repro.core.engine.factories` for the preconfigured BP / ADA-GP /
DNI engines.
"""

from .checkpoint import (
    CheckpointCorrupt,
    engine_state,
    load_checkpoint,
    load_engine_state,
    load_optimizer_state,
    optimizer_state,
    save_checkpoint,
)
from .engine import EpochStats, TrainingEngine
from .events import (
    Callback,
    CallbackList,
    Checkpointing,
    EarlyStopping,
    LambdaCallback,
    PruneCallback,
    ThroughputTimer,
)
from .factories import adagp_engine, bp_engine, dni_engine, pipeline_adagp_engine
from .strategies import (
    BackpropStrategy,
    BatchResult,
    DNIStrategy,
    GradPredictStrategy,
    PhaseStrategy,
    PipelineGPStrategy,
)

__all__ = [
    "TrainingEngine",
    "EpochStats",
    "PhaseStrategy",
    "BackpropStrategy",
    "GradPredictStrategy",
    "DNIStrategy",
    "PipelineGPStrategy",
    "BatchResult",
    "Callback",
    "CallbackList",
    "LambdaCallback",
    "EarlyStopping",
    "Checkpointing",
    "PruneCallback",
    "ThroughputTimer",
    "bp_engine",
    "adagp_engine",
    "dni_engine",
    "pipeline_adagp_engine",
    "CheckpointCorrupt",
    "engine_state",
    "load_engine_state",
    "optimizer_state",
    "load_optimizer_state",
    "save_checkpoint",
    "load_checkpoint",
]
