"""Event/callback system for the :class:`~repro.core.engine.TrainingEngine`.

The engine fires a fixed set of events while it runs the fit loop:

``on_fit_begin``    once, before the first epoch
``on_epoch_begin``  before each training epoch
``on_batch_begin``  before each training batch (phase already resolved)
``on_batch_end``    after each training batch (with its ``BatchResult``)
``on_epoch_end``    after validation, LR stepping and History recording
``on_fit_end``      once, after the last epoch (or an early stop)

Cross-cutting loop concerns — checkpointing, early stopping, throughput
measurement — are composable callbacks instead of copy-pasted loop code,
so every trainer (BP, ADA-GP, DNI) gets them for free.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..schedule import Phase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import TrainingEngine
    from .strategies import BatchResult


class Callback:
    """Base class: override any subset of the event hooks.

    Callbacks with mutable state that must survive checkpoint/resume
    (patience counters, accumulated timings) override
    :meth:`state_dict` / :meth:`load_state_dict`; the engine saves and
    restores them positionally alongside its own state.
    """

    def state_dict(self) -> dict:
        """Resumable state; empty for stateless callbacks."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, value)

    def on_fit_begin(self, engine: "TrainingEngine", epochs: int) -> None:
        pass

    def on_epoch_begin(self, engine: "TrainingEngine", epoch: int) -> None:
        pass

    def on_batch_begin(
        self, engine: "TrainingEngine", epoch: int, batch_index: int, phase: Phase
    ) -> None:
        pass

    def on_batch_end(
        self,
        engine: "TrainingEngine",
        epoch: int,
        batch_index: int,
        result: "BatchResult",
    ) -> None:
        pass

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, logs: dict) -> None:
        pass

    def on_fit_end(self, engine: "TrainingEngine") -> None:
        pass


class CallbackList(Callback):
    """Fan one event out to an ordered list of callbacks."""

    def __init__(self, callbacks: Iterable[Callback] = ()) -> None:
        self.callbacks: list[Callback] = list(callbacks)

    def append(self, callback: Callback) -> "CallbackList":
        self.callbacks.append(callback)
        return self

    def __iter__(self):
        return iter(self.callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    def on_fit_begin(self, engine, epochs):
        for callback in self.callbacks:
            callback.on_fit_begin(engine, epochs)

    def on_epoch_begin(self, engine, epoch):
        for callback in self.callbacks:
            callback.on_epoch_begin(engine, epoch)

    def on_batch_begin(self, engine, epoch, batch_index, phase):
        for callback in self.callbacks:
            callback.on_batch_begin(engine, epoch, batch_index, phase)

    def on_batch_end(self, engine, epoch, batch_index, result):
        for callback in self.callbacks:
            callback.on_batch_end(engine, epoch, batch_index, result)

    def on_epoch_end(self, engine, epoch, logs):
        for callback in self.callbacks:
            callback.on_epoch_end(engine, epoch, logs)

    def on_fit_end(self, engine):
        for callback in self.callbacks:
            callback.on_fit_end(engine)


class LambdaCallback(Callback):
    """Inline callback built from keyword functions, for quick wiring.

    Example::

        LambdaCallback(on_epoch_end=lambda engine, epoch, logs: print(logs))
    """

    def __init__(
        self,
        on_fit_begin: Optional[Callable] = None,
        on_epoch_begin: Optional[Callable] = None,
        on_batch_begin: Optional[Callable] = None,
        on_batch_end: Optional[Callable] = None,
        on_epoch_end: Optional[Callable] = None,
        on_fit_end: Optional[Callable] = None,
    ) -> None:
        self._hooks = {
            "on_fit_begin": on_fit_begin,
            "on_epoch_begin": on_epoch_begin,
            "on_batch_begin": on_batch_begin,
            "on_batch_end": on_batch_end,
            "on_epoch_end": on_epoch_end,
            "on_fit_end": on_fit_end,
        }

    def _fire(self, name: str, *args) -> None:
        hook = self._hooks.get(name)
        if hook is not None:
            hook(*args)

    def on_fit_begin(self, engine, epochs):
        self._fire("on_fit_begin", engine, epochs)

    def on_epoch_begin(self, engine, epoch):
        self._fire("on_epoch_begin", engine, epoch)

    def on_batch_begin(self, engine, epoch, batch_index, phase):
        self._fire("on_batch_begin", engine, epoch, batch_index, phase)

    def on_batch_end(self, engine, epoch, batch_index, result):
        self._fire("on_batch_end", engine, epoch, batch_index, result)

    def on_epoch_end(self, engine, epoch, logs):
        self._fire("on_epoch_end", engine, epoch, logs)

    def on_fit_end(self, engine):
        self._fire("on_fit_end", engine)


class EarlyStopping(Callback):
    """Stop the fit loop when a monitored value stops improving.

    ``monitor`` is a key of the epoch logs (``"val_loss"``,
    ``"val_metric"`` or ``"train_loss"``); ``mode`` is ``"min"`` for
    losses and ``"max"`` for metrics.
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        mode: str = "min",
        patience: int = 5,
        min_delta: float = 0.0,
    ) -> None:
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if patience < 0:
            raise ValueError(f"patience must be non-negative, got {patience}")
        self.monitor = monitor
        self.mode = mode
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.num_bad_epochs = 0
        self.stopped_epoch: Optional[int] = None

    def state_dict(self) -> dict:
        return {
            "best": self.best,
            "num_bad_epochs": self.num_bad_epochs,
            "stopped_epoch": self.stopped_epoch,
        }

    def _is_better(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_fit_begin(self, engine, epochs):
        # Fresh runs reset the counters; a checkpoint-resumed fit
        # (current_epoch > 0) keeps the restored patience state so the
        # resumed run reproduces the uninterrupted one.
        if engine.current_epoch == 0:
            self.best = None
            self.num_bad_epochs = 0
            self.stopped_epoch = None

    def on_epoch_end(self, engine, epoch, logs):
        value = logs.get(self.monitor)
        if value is None:
            raise KeyError(f"EarlyStopping monitor {self.monitor!r} not in logs")
        if self._is_better(value):
            self.best = value
            self.num_bad_epochs = 0
            return
        self.num_bad_epochs += 1
        if self.num_bad_epochs > self.patience:
            self.stopped_epoch = epoch
            engine.request_stop()


class PruneCallback(Callback):
    """Stop a trial at a rung boundary when its metric misses the cutoff.

    The in-engine seam of the tune subsystem's successive-halving driver
    (:class:`repro.tune.SuccessiveHalving`): ``rung_epochs`` lists epoch
    budgets (number of *completed* epochs) at which the trial is judged,
    and ``thresholds`` the cutoff its monitored value must meet there.
    Missing a cutoff calls :meth:`TrainingEngine.request_stop` and
    records ``pruned_at_epoch``, so an underperforming trial stops
    paying for epochs a synchronized rung decision would discard anyway.

    ``monitor`` is an epoch-logs key (``"val_metric"``, ``"val_loss"``,
    ``"train_loss"``); ``mode="max"`` prunes when the value falls
    *below* the threshold, ``mode="min"`` when it rises *above*.
    Surviving a rung means meeting its cutoff exactly or better, so a
    deterministic re-run of a promoted trial is never self-pruned.
    """

    def __init__(
        self,
        rung_epochs: Iterable[int],
        thresholds: Iterable[float],
        monitor: str = "val_metric",
        mode: str = "max",
    ) -> None:
        self.rung_epochs = [int(e) for e in rung_epochs]
        self.thresholds = [float(t) for t in thresholds]
        if len(self.rung_epochs) != len(self.thresholds):
            raise ValueError(
                f"{len(self.rung_epochs)} rung epochs but "
                f"{len(self.thresholds)} thresholds"
            )
        if any(e <= 0 for e in self.rung_epochs):
            raise ValueError(f"rung epochs must be positive: {self.rung_epochs}")
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.mode = mode
        self.pruned_at_epoch: Optional[int] = None
        self._cutoffs = dict(zip(self.rung_epochs, self.thresholds))

    def state_dict(self) -> dict:
        return {"pruned_at_epoch": self.pruned_at_epoch}

    def on_epoch_end(self, engine, epoch, logs):
        cutoff = self._cutoffs.get(epoch + 1)  # epochs completed so far
        if cutoff is None:
            return
        value = logs.get(self.monitor)
        if value is None:
            raise KeyError(f"PruneCallback monitor {self.monitor!r} not in logs")
        survives = value >= cutoff if self.mode == "max" else value <= cutoff
        if not survives:
            self.pruned_at_epoch = epoch
            engine.request_stop()


class Checkpointing(Callback):
    """Save the full engine state every ``every`` epochs (and at fit end).

    ``path`` may contain ``{epoch}``, which formats to the 0-based epoch
    just finished; without it the same file is overwritten, giving a
    rolling "latest" checkpoint.  Restore with
    :meth:`TrainingEngine.load_checkpoint`, then keep calling ``fit`` for
    the remaining epochs — the resumed run reproduces the original
    History exactly (see ``tests/core/test_engine.py``).
    """

    def __init__(self, path: str, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = str(path)
        self.every = every
        self.saved_paths: list[str] = []
        self._last_saved_epoch: Optional[int] = None

    def _save(self, engine: "TrainingEngine", epoch: int) -> None:
        target = self.path.format(epoch=epoch)
        engine.save_checkpoint(target)
        self._last_saved_epoch = epoch
        if target not in self.saved_paths:
            self.saved_paths.append(target)

    def on_epoch_end(self, engine, epoch, logs):
        if (epoch + 1) % self.every == 0:
            self._save(engine, epoch)

    def on_fit_end(self, engine):
        # Cover the `every > 1` stragglers without re-serializing the
        # checkpoint on_epoch_end just wrote for the same epoch.
        last_epoch = engine.current_epoch - 1
        if last_epoch >= 0 and last_epoch != self._last_saved_epoch:
            self._save(engine, last_epoch)


class ThroughputTimer(Callback):
    """Measure training throughput (batches/second) per phase.

    The accelerator model predicts cycle-level speedups; this callback
    gives the software-level counterpart: Phase-GP batches skip the whole
    backward pass, so their measured rate should beat Phase-BP/warm-up
    batches even in NumPy (``benchmarks/bench_engine.py``).

    Under data-parallel training the timer runs on rank 0 (the only
    rank with a fit loop) and reduces worker counts instead of letting
    each process report its own wall time: ``batches`` counts *global*
    batches (one optimizer step each), while ``worker_batches``
    accumulates ``BatchResult.shard_batches`` — the number of worker
    shards that batch ran across the world.  ``batches_per_second`` is
    therefore never inflated by the worker count; the per-shard rate is
    the separate :meth:`worker_batches_per_second`.  (Before
    ``shard_batches`` existed, summing per-process timers over-counted
    multi-worker throughput by the world size.)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.batches: dict[Phase, int] = {p: 0 for p in Phase}
        self.worker_batches: dict[Phase, int] = {p: 0 for p in Phase}
        self.seconds: dict[Phase, float] = {p: 0.0 for p in Phase}

    def state_dict(self) -> dict:
        return {
            "batches": dict(self.batches),
            "worker_batches": dict(self.worker_batches),
            "seconds": dict(self.seconds),
        }

    def on_batch_begin(self, engine, epoch, batch_index, phase):
        self._start = time.perf_counter()  # repro: noqa[obs-discipline] — pre-obs timer, bridged via obs.bridge_throughput

    def on_batch_end(self, engine, epoch, batch_index, result):
        if self._start is None:
            return
        elapsed = time.perf_counter() - self._start  # repro: noqa[obs-discipline] — pre-obs timer, bridged via obs.bridge_throughput
        self._start = None
        self.batches[result.phase] += 1
        self.worker_batches[result.phase] += getattr(result, "shard_batches", 1)
        self.seconds[result.phase] += elapsed

    def batches_per_second(self, phase: Phase) -> float:
        """Global batches (optimizer steps) per second of rank-0 wall
        time — the world-size-independent throughput number."""
        if self.seconds[phase] <= 0.0:
            return float("nan")
        return self.batches[phase] / self.seconds[phase]

    def worker_batches_per_second(self, phase: Phase) -> float:
        """Worker-shard batches per second (rank-0-reduced counts over
        rank-0 wall time); equals :meth:`batches_per_second` times the
        active world size under data parallelism."""
        if self.seconds[phase] <= 0.0:
            return float("nan")
        return self.worker_batches[phase] / self.seconds[phase]

    def snapshot(self) -> dict:
        """Canonical per-phase throughput dict (the one aggregation the
        experiment runners and benchmark records share too)."""
        from ...obs.snapshots import throughput_snapshot

        return throughput_snapshot(self)

    def summary(self) -> str:
        from ...obs.snapshots import format_throughput

        return format_throughput(self.snapshot())
