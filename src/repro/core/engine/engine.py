"""The unified training engine behind every trainer in this repo.

One :class:`TrainingEngine` owns the train/eval/fit loop, LR-scheduler
stepping and :class:`~repro.core.History` recording; what happens inside
a single training batch is delegated to pluggable
:class:`~repro.core.engine.strategies.PhaseStrategy` objects selected
per batch by the phase schedule (``HeuristicSchedule`` /
``AdaptiveSchedule``).  BP, ADA-GP and DNI training are therefore the
*same* loop with different strategy wiring — see
:mod:`repro.core.engine.factories` — and cross-cutting loop features
(checkpoint/resume, early stopping, throughput timing) are composable
:class:`~repro.core.engine.events.Callback` objects.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Union

import numpy as np

from ... import nn
from ...nn.backend import BackendSpec, backend_scope, resolve_backend
from ...obs.trace import EVAL, phase_scope, tracer as _obs_tracer
from ...nn.module import Module, PredictableMixin
from ...nn.optim import Optimizer
from ..history import History
from ..predictor import GradientPredictor
from ..schedule import Phase
from . import checkpoint as checkpoint_io
from .events import Callback, CallbackList
from .strategies import BatchResult, PhaseStrategy

Batch = tuple  # (inputs, targets)
LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]
MetricFn = Callable[[np.ndarray, np.ndarray], float]
BatchesFn = Callable[[], Iterable[Batch]]


@dataclass
class EpochStats:
    """Aggregate outcome of one training epoch.

    ``predictor_mse``/``predictor_mape`` map predictable-layer index to
    the epoch-mean prediction error (empty when no predictor trained).
    """

    loss: float
    counts: dict[Phase, int]
    predictor_mse: dict[int, float] = field(default_factory=dict)
    predictor_mape: dict[int, float] = field(default_factory=dict)

    def legacy_dict(self) -> dict:
        """The dict shape the pre-engine ``AdaGPTrainer.train_epoch``
        returned, kept for the compatibility shims."""
        return {
            "loss": self.loss,
            "counts": self.counts,
            "mse": self.predictor_mse,
            "mape": self.predictor_mape,
        }


class TrainingEngine:
    """Phase-scheduled training loop with callbacks and checkpointing.

    Parameters
    ----------
    strategies:
        Either one :class:`PhaseStrategy` used for every phase, or a
        mapping ``{Phase: strategy}`` covering each phase the schedule
        can emit.
    schedule:
        ``HeuristicSchedule``/``AdaptiveSchedule`` (anything with
        ``phase_for(epoch, batch_index)``), or ``None`` to run every
        batch as :attr:`Phase.BP` — the plain-backprop configuration.
    predictor / gp_optimizer / predictor_scheduler:
        The ADA-GP machinery; all optional.  When ``predictor`` is set
        the engine resolves the model's predictable layers and records
        per-layer predictor errors in History.
    backend:
        Compute backend (name or :class:`~repro.nn.backend.Backend`)
        every batch and evaluation runs under.  A strategy's own
        ``backend`` takes precedence for its batches; ``None`` inherits
        the process-global default (``nn.use_backend``).
    """

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        optimizer: Optimizer,
        strategies: Union[PhaseStrategy, Mapping[Phase, PhaseStrategy]],
        schedule=None,
        metric_fn: Optional[MetricFn] = None,
        lr_scheduler=None,
        predictor: Optional[GradientPredictor] = None,
        gp_optimizer: Optional[Optimizer] = None,
        predictor_scheduler=None,
        callbacks: Iterable[Callback] = (),
        history: Optional[History] = None,
        backend: Optional[BackendSpec] = None,
    ) -> None:
        self.model = model
        self.backend = resolve_backend(backend)
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.metric_fn = metric_fn
        self.schedule = schedule
        self.lr_scheduler = lr_scheduler
        self.predictor = predictor
        self.gp_optimizer = gp_optimizer if gp_optimizer is not None else optimizer
        self.predictor_scheduler = predictor_scheduler
        self.callbacks = CallbackList(callbacks)
        self.history = history if history is not None else History()
        self.current_epoch = 0
        self.stop_requested = False
        self.layers: list[PredictableMixin] = (
            nn.predictable_layers(model) if predictor is not None else []
        )
        if isinstance(strategies, PhaseStrategy):
            strategies = {phase: strategies for phase in Phase}
        self.strategies: dict[Phase, PhaseStrategy] = dict(strategies)
        for strategy in {id(s): s for s in self.strategies.values()}.values():
            strategy.bind(self)

    # ------------------------------------------------------------------
    # Phase resolution and hooks.
    # ------------------------------------------------------------------
    def phase_for(self, epoch: int, batch_index: int) -> Phase:
        """Phase of one training batch; Phase BP when no schedule is set."""
        if self.schedule is None:
            return Phase.BP
        return self.schedule.phase_for(epoch, batch_index)

    def strategy_for(self, phase: Phase) -> PhaseStrategy:
        try:
            return self.strategies[phase]
        except KeyError:
            raise KeyError(
                f"no strategy registered for phase {phase!r}; "
                f"have {sorted(p.value for p in self.strategies)}"
            ) from None

    def clear_hooks(self) -> None:
        """Remove every forward hook from the predictable layers."""
        for layer in self.layers:
            layer.forward_hook = None

    def request_stop(self) -> None:
        """Ask the fit loop to stop after the current epoch (callbacks)."""
        self.stop_requested = True

    def add_callback(self, callback: Callback) -> "TrainingEngine":
        self.callbacks.append(callback)
        return self

    # ------------------------------------------------------------------
    # Train / evaluate.
    # ------------------------------------------------------------------
    def train_batch(
        self, inputs, targets, phase: Phase = Phase.BP
    ) -> BatchResult:
        """Run one training batch under ``phase``'s strategy, inside the
        resolved backend scope (strategy override > engine > global).
        Forward caches are dropped afterwards so the step's largest
        allocations don't stay pinned between batches."""
        strategy = self.strategy_for(phase)
        backend = strategy.backend if strategy.backend is not None else self.backend
        # phase_scope (one list push/pop) lets obs attribute backend op
        # time to the scheduled phase even when tracing is off.
        with phase_scope(phase), backend_scope(backend):
            result = strategy.train_batch(inputs, targets, phase)
        self.model.clear_caches()
        return result

    def train_epoch(
        self, batches: Iterable[Batch], epoch: Optional[int] = None
    ) -> EpochStats:
        """Train over an iterable of batches under the phase schedule."""
        epoch = self.current_epoch if epoch is None else epoch
        losses: list[float] = []
        counts = {phase: 0 for phase in Phase}
        mse_acc: dict[int, list[float]] = defaultdict(list)
        mape_acc: dict[int, list[float]] = defaultdict(list)
        for batch_index, (inputs, targets) in enumerate(batches):
            phase = self.phase_for(epoch, batch_index)
            self.callbacks.on_batch_begin(self, epoch, batch_index, phase)
            result = self.train_batch(inputs, targets, phase)
            counts[result.phase] += 1
            losses.append(result.loss)
            if result.predictor_mse:
                for index, value in result.predictor_mse.items():
                    mse_acc[index].append(value)
            if result.predictor_mape:
                for index, value in result.predictor_mape.items():
                    mape_acc[index].append(value)
            self.callbacks.on_batch_end(self, epoch, batch_index, result)
        if not losses:
            raise ValueError("train_epoch received no batches")
        return EpochStats(
            loss=float(np.mean(losses)),
            counts=counts,
            predictor_mse={k: float(np.mean(v)) for k, v in mse_acc.items()},
            predictor_mape={k: float(np.mean(v)) for k, v in mape_acc.items()},
        )

    def evaluate(self, batches: Iterable[Batch]) -> tuple[float, float]:
        """Mean (loss, metric) over validation batches, hooks disabled.

        Runs entirely under :func:`~repro.nn.no_grad` with a value-only
        loss: evaluation can never backpropagate, so no layer retains a
        backward cache and (in eval mode) the backend's fold pipeline
        applies — conv+BN(+ReLU), BN+ReLU and linear+activation each
        run as one op.
        """
        self.model.eval()
        self.clear_hooks()
        losses: list[float] = []
        metrics: list[float] = []
        with _obs_tracer().span("engine.evaluate", phase=EVAL), phase_scope(
            EVAL
        ), backend_scope(self.backend), nn.no_grad():
            for inputs, targets in batches:
                outputs = self.model(inputs)
                losses.append(nn.loss_value(self.loss_fn, outputs, targets))
                if self.metric_fn is not None:
                    metrics.append(self.metric_fn(outputs, targets))
        self.model.train()
        mean_metric = float(np.mean(metrics)) if metrics else float("nan")
        return float(np.mean(losses)), mean_metric

    # ------------------------------------------------------------------
    # Fit loop.
    # ------------------------------------------------------------------
    def fit(
        self, train_batches: BatchesFn, val_batches: BatchesFn, epochs: int
    ) -> History:
        """Run the train/validate loop for ``epochs`` epochs.

        Each epoch trains under the phase schedule, validates, steps the
        LR schedulers and appends one row to :attr:`history`; callbacks
        may stop the loop early via :meth:`request_stop`.
        ``history.bp_batches``/``gp_batches`` always record *true*
        per-phase batch counts (warm-up counts as BP: both run true
        backprop).
        """
        self.stop_requested = False
        self.callbacks.on_fit_begin(self, epochs)
        for _ in range(epochs):
            epoch = self.current_epoch
            self.callbacks.on_epoch_begin(self, epoch)
            stats = self.train_epoch(train_batches(), epoch)
            val_loss, val_metric = self.evaluate(val_batches())
            if self.lr_scheduler is not None:
                self.lr_scheduler.step(val_loss)
            if self.predictor_scheduler is not None:
                self.predictor_scheduler.step()
            counts = stats.counts
            self.history.train_loss.append(stats.loss)
            self.history.val_loss.append(val_loss)
            self.history.val_metric.append(val_metric)
            true_grad = counts[Phase.BP] + counts[Phase.WARMUP]
            self.history.bp_batches.append(true_grad)
            self.history.gp_batches.append(counts[Phase.GP])
            self.history.gp_fraction.append(
                counts[Phase.GP] / (true_grad + counts[Phase.GP])
            )
            if self.predictor is not None:
                self.history.predictor_mse.append(stats.predictor_mse)
                self.history.predictor_mape.append(stats.predictor_mape)
            self.current_epoch += 1
            logs = {
                "epoch": epoch,
                "train_loss": stats.loss,
                "val_loss": val_loss,
                "val_metric": val_metric,
                "counts": counts,
            }
            self.callbacks.on_epoch_end(self, epoch, logs)
            if self.stop_requested:
                break
        self.callbacks.on_fit_end(self)
        return self.history

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete mutable state (weights, optimizer slots, schedulers,
        predictor, schedule quality, History, epoch counter)."""
        return checkpoint_io.engine_state(self)

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this engine."""
        checkpoint_io.load_engine_state(self, state)

    def save_checkpoint(self, path: str) -> None:
        """Write :meth:`state_dict` to ``path``."""
        checkpoint_io.save_checkpoint(self, path)

    def load_checkpoint(self, path: str) -> None:
        """Restore state saved by :meth:`save_checkpoint`; training then
        resumes from the recorded epoch."""
        checkpoint_io.load_checkpoint(self, path)
