"""Engine state capture/restore for checkpointing and resume.

A checkpoint holds everything the fit loop mutates: model weights,
optimizer slots (SGD velocity, Adam moments), LR-scheduler state, the
predictor (network weights, its Adam state and per-layer scales), the
adaptive phase schedule's observed quality, the History so far, and the
epoch counter.  Restoring it into a freshly built engine and fitting the
remaining epochs reproduces the uninterrupted run exactly — the
round-trip test in ``tests/core/test_engine.py`` asserts bit-identical
History.

Optimizer and scale state is keyed by ``id(parameter)`` /
``id(layer)`` in memory; checkpoints remap those ids to stable indices
(position in ``optimizer.parameters`` / ``engine.layers``) so state
survives into a new process.
"""

from __future__ import annotations

import copy
import os
import pickle
import struct
import zlib
from typing import TYPE_CHECKING, Any

import numpy as np

from ...nn.optim import Optimizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import TrainingEngine

FORMAT_VERSION = 1

#: On-disk frame: magic + CRC32(body) + body length, then the pickled
#: state — same shape as the dist wire framing, so truncation and bit
#: rot are detected before unpickling.
CHECKPOINT_MAGIC = b"RCK1"
_CHECKPOINT_HEADER = struct.Struct("<4sII")


class CheckpointCorrupt(RuntimeError):
    """A checkpoint file is truncated, bit-rotted, or not a checkpoint."""


def _copy_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    return copy.deepcopy(value)


def optimizer_state(optimizer: Optimizer) -> dict:
    """Snapshot an optimizer: lr + every per-parameter slot dict.

    Slots are discovered structurally (any dict attribute keyed by
    parameter ids), so custom optimizers with the same convention are
    covered without per-class code.
    """
    index_of = {id(p): i for i, p in enumerate(optimizer.parameters)}
    slots: dict[str, dict] = {}
    for name, value in vars(optimizer).items():
        if name == "_param_ids" or not isinstance(value, dict):
            continue
        if value and not all(key in index_of for key in value):
            continue
        slots[name] = {index_of[k]: _copy_value(v) for k, v in value.items()}
    return {"lr": optimizer.lr, "slots": slots}


def load_optimizer_state(optimizer: Optimizer, state: dict) -> None:
    """Inverse of :func:`optimizer_state` (same parameter order)."""
    optimizer.lr = state["lr"]
    params = optimizer.parameters
    for name, slot in state["slots"].items():
        setattr(
            optimizer, name, {id(params[i]): _copy_value(v) for i, v in slot.items()}
        )


def _scheduler_state(scheduler) -> dict:
    return {
        k: _copy_value(v) for k, v in vars(scheduler).items() if k != "optimizer"
    }


def _load_scheduler_state(scheduler, state: dict) -> None:
    for key, value in state.items():
        setattr(scheduler, key, _copy_value(value))


def engine_state(engine: "TrainingEngine") -> dict:
    """Capture the complete mutable state of an engine."""
    state: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "model": engine.model.state_dict(),
        "optimizer": optimizer_state(engine.optimizer),
        "current_epoch": engine.current_epoch,
        "history": copy.deepcopy(engine.history),
    }
    if engine.gp_optimizer is not None and engine.gp_optimizer is not engine.optimizer:
        state["gp_optimizer"] = optimizer_state(engine.gp_optimizer)
    if engine.lr_scheduler is not None:
        state["lr_scheduler"] = _scheduler_state(engine.lr_scheduler)
    if engine.predictor is not None:
        index_of = {id(layer): i for i, layer in enumerate(engine.layers)}
        state["predictor"] = {
            "network": engine.predictor.network.state_dict(),
            "optimizer": optimizer_state(engine.predictor.optimizer),
            "scales": {
                index_of[key]: value
                for key, value in engine.predictor._scales.items()
                if key in index_of
            },
        }
    if engine.predictor_scheduler is not None:
        state["predictor_scheduler"] = _scheduler_state(engine.predictor_scheduler)
    if engine.schedule is not None:
        # AdaptiveSchedule stores its smoothed MAPE; HeuristicSchedule
        # (stateless) stores {}.  The dict shape matches the old direct
        # ``_recent_mape`` poke, so pre-existing checkpoints still load,
        # and duck-typed custom schedules that track ``_recent_mape``
        # without the state_dict protocol keep their pre-PR coverage.
        if hasattr(engine.schedule, "state_dict"):
            schedule_state = engine.schedule.state_dict()
        elif hasattr(engine.schedule, "_recent_mape"):
            schedule_state = {"_recent_mape": engine.schedule._recent_mape}
        else:
            schedule_state = {}
        if schedule_state:
            state["schedule"] = copy.deepcopy(schedule_state)
    # Positional: restoring requires the same callbacks attached in the
    # same order (stateless callbacks contribute an empty dict).
    state["callbacks"] = [
        copy.deepcopy(callback.state_dict()) for callback in engine.callbacks
    ]
    return state


def load_engine_state(engine: "TrainingEngine", state: dict) -> None:
    """Restore :func:`engine_state` output into a structurally identical
    engine (same model architecture, optimizers, strategies)."""
    version = state.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {version!r}; expected {FORMAT_VERSION}"
        )
    engine.model.load_state_dict(state["model"])
    load_optimizer_state(engine.optimizer, state["optimizer"])
    if "gp_optimizer" in state:
        if engine.gp_optimizer is None or engine.gp_optimizer is engine.optimizer:
            raise ValueError(
                "checkpoint has a separate gp_optimizer but the engine does not"
            )
        load_optimizer_state(engine.gp_optimizer, state["gp_optimizer"])
    if "lr_scheduler" in state:
        if engine.lr_scheduler is None:
            raise ValueError("checkpoint has LR-scheduler state but engine has none")
        _load_scheduler_state(engine.lr_scheduler, state["lr_scheduler"])
    if "predictor" in state:
        if engine.predictor is None:
            raise ValueError("checkpoint has predictor state but engine has none")
        engine.predictor.network.load_state_dict(state["predictor"]["network"])
        load_optimizer_state(engine.predictor.optimizer, state["predictor"]["optimizer"])
        engine.predictor._scales = {
            id(engine.layers[i]): value
            for i, value in state["predictor"]["scales"].items()
        }
    if "predictor_scheduler" in state:
        if engine.predictor_scheduler is None:
            raise ValueError(
                "checkpoint has predictor-scheduler state but engine has none"
            )
        _load_scheduler_state(engine.predictor_scheduler, state["predictor_scheduler"])
    if "schedule" in state and engine.schedule is not None:
        if hasattr(engine.schedule, "load_state_dict"):
            engine.schedule.load_state_dict(state["schedule"])
        else:
            engine.schedule._recent_mape = state["schedule"]["_recent_mape"]
    callback_states = state.get("callbacks", [])
    callbacks = list(engine.callbacks)
    if len(callback_states) != len(callbacks):
        raise ValueError(
            f"checkpoint carries state for {len(callback_states)} callbacks "
            f"but the engine has {len(callbacks)}; attach the same callbacks "
            "before loading"
        )
    for callback, callback_state in zip(callbacks, callback_states):
        callback.load_state_dict(copy.deepcopy(callback_state))
    engine.current_epoch = state["current_epoch"]
    engine.history = copy.deepcopy(state["history"])


def save_checkpoint(engine: "TrainingEngine", path: str) -> None:
    """Serialize :func:`engine_state` to ``path`` atomically.

    The checksummed frame is written to ``path + ".tmp"``, fsync'd, then
    ``os.replace``'d over ``path`` — a crash mid-write leaves either the
    old checkpoint or the new one, never a torn file.
    """
    body = pickle.dumps(engine_state(engine))
    header = _CHECKPOINT_HEADER.pack(CHECKPOINT_MAGIC, zlib.crc32(body), len(body))
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(header)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _read_checkpoint(path: str) -> dict:
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _CHECKPOINT_HEADER.size or data[:4] != CHECKPOINT_MAGIC:
        # Pre-framing checkpoints were a bare pickle; keep loading them.
        try:
            return pickle.loads(data)
        except Exception as err:
            raise CheckpointCorrupt(
                f"{path}: not a checkpoint (no {CHECKPOINT_MAGIC!r} header and "
                f"not a legacy pickle): {err}"
            ) from err
    magic, crc, length = _CHECKPOINT_HEADER.unpack_from(data)
    body = data[_CHECKPOINT_HEADER.size :]
    if len(body) != length:
        raise CheckpointCorrupt(
            f"{path}: truncated checkpoint — header promises {length} body "
            f"bytes, file has {len(body)}"
        )
    if zlib.crc32(body) != crc:
        raise CheckpointCorrupt(f"{path}: checkpoint body fails its CRC32 check")
    try:
        return pickle.loads(body)
    except Exception as err:  # pragma: no cover - CRC passed but pickle broke
        raise CheckpointCorrupt(f"{path}: checkpoint body unpickle failed: {err}") from err


def load_checkpoint(engine: "TrainingEngine", path: str) -> None:
    """Load a checkpoint file saved by :func:`save_checkpoint`.

    Raises :class:`CheckpointCorrupt` on truncated or bit-rotted files
    (detected by the frame header before unpickling).
    """
    load_engine_state(engine, _read_checkpoint(path))
