"""Per-batch phase strategies for the :class:`TrainingEngine`.

ADA-GP, its BP baseline and the DNI baseline differ only in what one
training batch does — *when* gradient predictions are trained and
applied (paper §2/§3).  Each variant is a :class:`PhaseStrategy`:

* :class:`BackpropStrategy` — forward + backward + optimizer step; with
  ``train_predictor=True`` it is ADA-GP's Warm-Up / Phase BP (§3.3): the
  predictor additionally learns every predictable layer's true gradient,
  through the batched fast path by default.
* :class:`GradPredictStrategy` — ADA-GP's Phase GP (§3.4): backprop is
  skipped and the batch runs under :func:`~repro.nn.no_grad` (no
  backward caches are retained anywhere); a forward hook applies each
  layer's predicted update the moment that layer's forward pass
  completes, or ``batched_predict=True`` defers to one stacked
  ``predict_many`` + grouped apply after the forward.
* :class:`DNIStrategy` — the §2 baseline: synthetic gradients are
  applied during *every* forward pass and full backprop still runs
  afterwards, so it never saves backward work.

The engine selects a strategy per batch from its phase schedule; adding
a new training scheme (a new backend, a pipelined variant, ...) is one
new strategy class, not a fourth copy of the fit loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ...nn.backend import BackendSpec, resolve_backend
from ...nn.losses import loss_value
from ...nn.module import Module, no_grad
from ..schedule import Phase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import TrainingEngine


@dataclass
class BatchResult:
    """Outcome of one training batch.

    ``predictor_mse``/``predictor_mape`` map predictable-layer index to
    that layer's prediction error for this batch (``None`` when the
    strategy did not train the predictor).
    """

    loss: float
    phase: Phase
    predictor_mse: Optional[dict[int, float]] = None
    predictor_mape: Optional[dict[int, float]] = None
    #: How many worker-shard batches this result aggregates.  Serial
    #: strategies leave it at 1; the data-parallel strategy reports its
    #: active world size so rank-0 throughput accounting can reduce
    #: worker batch counts instead of multiply-counting wall time
    #: (see ``ThroughputTimer``).
    shard_batches: int = 1


class PhaseStrategy:
    """One way of running a training batch; bound to an engine at setup.

    ``backend`` optionally pins this strategy's batches to a compute
    backend (name or instance).  The engine enters that scope around
    ``train_batch``, preferring the strategy's backend over its own —
    e.g. Phase-GP forward streams can run ``"fused"`` while BP batches
    stay on the reference backend.  ``None`` inherits the engine's
    backend (and, failing that, the global default).
    """

    def __init__(self, backend: Optional[BackendSpec] = None) -> None:
        self.engine: Optional["TrainingEngine"] = None
        self.backend = resolve_backend(backend)

    def bind(self, engine: "TrainingEngine") -> None:
        self.engine = engine

    def train_batch(self, inputs, targets, phase: Phase) -> BatchResult:
        raise NotImplementedError


def install_capture_hooks(
    engine: "TrainingEngine", store: dict[int, np.ndarray]
) -> None:
    """Hook every predictable layer to record its output into ``store``
    (keyed by ``id(layer)``) — the activation-capture side of both
    predictor training and batched Phase-GP."""

    def hook(layer: Module, output: np.ndarray) -> None:
        store[id(layer)] = output

    for layer in engine.layers:
        layer.forward_hook = hook


class BackpropStrategy(PhaseStrategy):
    """Standard backprop batch, optionally also training the predictor.

    ``batched=True`` routes predictor training through
    :meth:`GradientPredictor.train_step_many`, which stacks all layers'
    reorganized activations into a single predictor forward/backward —
    the BP-phase hot path of the paper's software loop.  ``batched=False``
    keeps the original per-layer Python loop (one optimizer step per
    layer); the two are numerically equivalent at the gradient level
    (``tests/core/test_predictor_batched.py``) but follow slightly
    different Adam trajectories, which neither the paper nor the
    accelerator model distinguishes.
    """

    def __init__(
        self,
        train_predictor: bool = False,
        batched: bool = True,
        backend: Optional[BackendSpec] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.train_predictor = train_predictor
        self.batched = batched
        self._activations: dict[int, np.ndarray] = {}

    def train_batch(self, inputs, targets, phase: Phase) -> BatchResult:
        result = self.forward_backward(inputs, targets, phase)
        self.engine.optimizer.step()
        return result

    def forward_backward(
        self, inputs, targets, phase: Phase, grad_scale: float = 1.0
    ) -> BatchResult:
        """Forward + backward (+ predictor training) without the
        optimizer step, leaving the batch's gradients in ``param.grad``.

        This is the gradient-computation half of :meth:`train_batch` and
        the per-rank seam of :class:`repro.dist.DataParallelStrategy`:
        each data-parallel rank computes its shard's gradients here,
        scaled by ``grad_scale`` (its shard's fraction of the global
        batch, so the rank-summed gradient matches full-batch
        mean-reduction semantics), and the reduced gradient is applied
        in a separate step.  ``grad_scale=1.0`` skips the scaling
        entirely, keeping the serial path bitwise unchanged.

        Predictor training (when enabled) runs on the *local* gradients
        computed here — it touches neither model parameters nor
        ``param.grad``, so running it before or after the optimizer step
        is bitwise equivalent.
        """
        engine = self.engine
        engine.model.train()
        capture = self.train_predictor and engine.predictor is not None
        if capture:
            self._activations.clear()
            install_capture_hooks(engine, self._activations)
        try:
            outputs = engine.model(inputs)
            loss, grad = engine.loss_fn(outputs, targets)
            if grad_scale != 1.0:
                grad = grad * np.float32(grad_scale)
            engine.optimizer.zero_grad()
            engine.model.backward(grad)
        finally:
            if capture:
                engine.clear_hooks()
        if not capture:
            return BatchResult(loss=loss, phase=phase)
        mse_by_layer, mape_by_layer = self._train_predictor()
        return BatchResult(
            loss=loss,
            phase=phase,
            predictor_mse=mse_by_layer,
            predictor_mape=mape_by_layer,
        )

    def _train_predictor(self) -> tuple[dict[int, float], dict[int, float]]:
        """One predictor update on every layer's true gradients (§3.3)."""
        engine = self.engine
        entries = []
        for index, layer in enumerate(engine.layers):
            output = self._activations.get(id(layer))
            if output is None or layer.weight.grad is None:
                continue
            bias_grad = layer.bias.grad if layer.bias is not None else None
            entries.append((index, layer, output, layer.weight.grad, bias_grad))
        if not entries:
            return {}, {}
        if self.batched and len(entries) > 1:
            metrics = engine.predictor.train_step_many(
                [e[1] for e in entries],
                [e[2] for e in entries],
                [e[3] for e in entries],
                [e[4] for e in entries],
            )
        else:
            metrics = [
                engine.predictor.train_step(layer, output, weight_grad, bias_grad)
                for _, layer, output, weight_grad, bias_grad in entries
            ]
        mse_by_layer: dict[int, float] = {}
        mape_by_layer: dict[int, float] = {}
        for (index, *_), (mse, mape) in zip(entries, metrics):
            mse_by_layer[index] = mse
            mape_by_layer[index] = mape
            if hasattr(engine.schedule, "observe_mape"):
                engine.schedule.observe_mape(mape)
        return mse_by_layer, mape_by_layer


def apply_predicted_update(
    engine: "TrainingEngine", layer: Module, output: np.ndarray
) -> None:
    """Predict a layer's gradients from its activations and apply them
    through the GP optimizer (the plain-MAC hardware update path)."""
    weight_grad, bias_grad = engine.predictor.predict(layer, output)
    engine.gp_optimizer.apply_gradient(layer.weight, weight_grad)
    if layer.bias is not None and bias_grad is not None:
        engine.gp_optimizer.apply_gradient(layer.bias, bias_grad)


def install_predict_hooks(engine: "TrainingEngine") -> None:
    """Hook every predictable layer to apply its predicted update the
    moment its forward pass completes (§3.4)."""

    def hook(layer: Module, output: np.ndarray) -> None:
        apply_predicted_update(engine, layer, output)

    for layer in engine.layers:
        layer.forward_hook = hook


class GradPredictStrategy(PhaseStrategy):
    """Phase GP batch: forward-only with predicted updates, under no-grad.

    The whole batch runs inside :func:`~repro.nn.no_grad` — backprop can
    never happen in Phase GP, so no layer retains a backward cache, conv
    im2col workspaces return to the backend pool mid-forward, and the
    loss is evaluated value-only (:func:`~repro.nn.losses.loss_value`)
    for monitoring; no gradient ever touches ``param.grad``.

    ``batched_predict`` selects *when* predictions are applied:

    * ``False`` (default, §3.4-faithful): a forward hook applies each
      layer's predicted update the moment its forward completes — the
      in-flight timing the accelerator implements (the update lands on
      weights whose forward work for this batch is already done, so on
      a single-pass feed-forward chain the resulting weights equal the
      deferred mode's; the timing matters for hardware overlap, for
      models that reuse a layer object within one forward, and across
      batches).
    * ``True``: the forward only *collects* predictable-layer
      activations; afterwards one stacked
      :meth:`~repro.core.predictor.GradientPredictor.predict_many` trunk
      call predicts every layer and one grouped
      ``gp_optimizer.apply_gradients`` applies them — far fewer
      predictor invocations per batch, updates landing after the
      forward instead of during it (the ROADMAP "Batched GP phase"
      item; accuracy/throughput comparison in
      ``examples/batched_gp_tradeoff.py``).
    """

    def __init__(
        self,
        batched_predict: bool = False,
        backend: Optional[BackendSpec] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.batched_predict = batched_predict
        self._activations: dict[int, np.ndarray] = {}

    def _apply_collected(self) -> None:
        """One stacked predict + one grouped optimizer apply (post-forward)."""
        engine = self.engine
        entries = [
            (layer, self._activations[id(layer)])
            for layer in engine.layers
            if id(layer) in self._activations
        ]
        self._activations.clear()
        if not entries:
            return
        layers = [layer for layer, _ in entries]
        predictions = engine.predictor.predict_many(
            layers, [output for _, output in entries]
        )
        updates = []
        for layer, (weight_grad, bias_grad) in zip(layers, predictions):
            updates.append((layer.weight, weight_grad))
            if layer.bias is not None and bias_grad is not None:
                updates.append((layer.bias, bias_grad))
        engine.gp_optimizer.apply_gradients(updates)

    def train_batch(self, inputs, targets, phase: Phase) -> BatchResult:
        engine = self.engine
        engine.model.train()
        if self.batched_predict:
            self._activations.clear()
            install_capture_hooks(engine, self._activations)
        else:
            install_predict_hooks(engine)
        try:
            with no_grad():
                outputs = engine.model(inputs)
        finally:
            engine.clear_hooks()
        if self.batched_predict:
            self._apply_collected()
        loss = loss_value(engine.loss_fn, outputs, targets)  # monitoring only
        return BatchResult(loss=loss, phase=Phase.GP)


class PipelineGPStrategy(BackpropStrategy):
    """Pipeline-parallel ADA-GP on stage-partitioned models (§3.7, Fig 20).

    On first batch, the engine's ``Sequential`` model is split into
    ``num_stages`` balanced stage sub-models (accel cost model, see
    :mod:`repro.pipeline.partition`) and every batch thereafter runs on
    the event-driven micro-batch executor with per-stage virtual device
    clocks (:mod:`repro.pipeline.executor`):

    * WARMUP/BP batches execute the GPipe- or DAPPLE-ordered fw/bw
      schedule (gradients identical to full-batch backprop for
      mean-reduction losses) and train the predictor exactly like
      :class:`BackpropStrategy`;
    * GP batches stream forward-only micro-batches with each predictable
      layer's predicted update applied the moment its forward completes
      — the Phase-GP work that fills the pipeline bubbles.  Predictor
      predict+apply time runs inside the measured forward slot, so the
      paper's alpha overhead is part of the measurement.  By default the
      update fires once per batch, on the *final* micro-batch's forward,
      predicting from the accumulated full-batch activations — the same
      update semantics and cost as the single-chip
      :class:`GradPredictStrategy` (the hardware overlaps alpha on a
      dedicated array, software pays it per invocation);
      ``apply_every_micro=True`` instead applies per micro-batch from
      that micro-batch's activations alone.

    Device clocks persist across batches, making the executor's
    ``timeline`` a *measured* Fig 20: its makespan is the multi-device
    critical path of the actual phase sequence, validated against the
    simulator's dependency rules via ``executor.validate()``.
    """

    def __init__(
        self,
        num_stages: int = 2,
        micro_batches: int = 4,
        kind: str = "GPipe",
        train_predictor: bool = True,
        batched: bool = True,
        apply_every_micro: bool = False,
        backend: Optional[BackendSpec] = None,
    ) -> None:
        super().__init__(
            train_predictor=train_predictor, batched=batched, backend=backend
        )
        self.num_stages = num_stages
        self.micro_batches = micro_batches
        self.kind = kind
        self.apply_every_micro = apply_every_micro
        self.executor = None  # built lazily (needs the input shape)
        self._activation_chunks: dict[int, list[np.ndarray]] = {}

    def _ensure_executor(self, inputs: np.ndarray) -> None:
        if self.executor is not None:
            return
        # Imported here: repro.core.engine must stay importable without
        # dragging the pipeline package (and its accel/models deps) in.
        from ...pipeline.executor import PipelineExecutor
        from ...pipeline.schedules import PipelineKind

        self.executor = PipelineExecutor.from_model(
            self.engine.model,
            self.num_stages,
            input_shape=inputs.shape[1:],
            micro_batches=self.micro_batches,
            kind=PipelineKind(self.kind),
        )

    def _install_pipeline_capture_hooks(self) -> None:
        """Collect every micro-batch's activations so predictor training
        sees the full batch (concatenated), matching BackpropStrategy's
        activation/gradient pairing."""
        chunks = self._activation_chunks

        def hook(layer: Module, output: np.ndarray) -> None:
            chunks.setdefault(id(layer), []).append(output)

        for layer in self.engine.layers:
            layer.forward_hook = hook

    def _install_pipeline_predict_hooks(self) -> None:
        engine = self.engine
        if self.apply_every_micro:
            install_predict_hooks(engine)
            return
        # Accumulate each layer's micro-batch activations and predict
        # once from the full batch when its last micro-batch forward
        # completes — single-chip GradPredictStrategy semantics, with
        # the predict+apply still inside that measured forward slot.
        executor = self.executor
        last_micro = executor.config.micro_batches - 1
        chunks: dict[int, list[np.ndarray]] = {}

        def hook(layer: Module, output: np.ndarray) -> None:
            parts = chunks.setdefault(id(layer), [])
            parts.append(output)
            if executor.current_micro == last_micro:
                apply_predicted_update(
                    engine, layer, np.concatenate(parts, axis=0)
                )
                parts.clear()

        for layer in engine.layers:
            layer.forward_hook = hook

    def train_batch(self, inputs, targets, phase: Phase) -> BatchResult:
        engine = self.engine
        engine.model.train()
        self._ensure_executor(inputs)
        if phase == Phase.GP:
            if engine.predictor is not None:
                self._install_pipeline_predict_hooks()
            try:
                # Forward-only micro-batch streams: no stage will ever
                # run backward on them, so the whole streamed batch is
                # cache-free (predict hooks still fire inside the
                # measured slots).
                with no_grad():
                    run = self.executor.run_gp_batch(
                        inputs, targets, engine.loss_fn
                    )
            finally:
                engine.clear_hooks()
            return BatchResult(loss=run.loss, phase=Phase.GP)
        capture = self.train_predictor and engine.predictor is not None
        if capture:
            self._activations.clear()
            self._activation_chunks.clear()
            self._install_pipeline_capture_hooks()
        try:
            engine.optimizer.zero_grad()
            run = self.executor.run_bp_batch(inputs, targets, engine.loss_fn)
            engine.optimizer.step()
        finally:
            if capture:
                engine.clear_hooks()
        if not capture:
            return BatchResult(loss=run.loss, phase=phase)
        self._activations = {
            key: np.concatenate(chunks, axis=0)
            for key, chunks in self._activation_chunks.items()
        }
        self._activation_chunks.clear()
        mse_by_layer, mape_by_layer = self._train_predictor()
        return BatchResult(
            loss=run.loss,
            phase=phase,
            predictor_mse=mse_by_layer,
            predictor_mape=mape_by_layer,
        )


class DNIStrategy(PhaseStrategy):
    """DNI batch (Jaderberg et al. 2017): synthetic updates + full BP.

    Each batch applies scaled synthetic gradients layer-by-layer during
    forward, then still runs complete backpropagation to update the
    model with true gradients and train the predictor — strictly more
    work than plain BP, which is the paper's §2 point ("DNI does not
    improve training time").
    """

    def __init__(
        self,
        synthetic_lr_scale: float = 0.1,
        backend: Optional[BackendSpec] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.synthetic_lr_scale = synthetic_lr_scale
        self._activations: dict[int, np.ndarray] = {}

    def _install_dni_hooks(self) -> None:
        engine = self.engine

        def hook(layer: Module, output: np.ndarray) -> None:
            # DNI's decoupled update: apply the synthetic gradient the
            # moment the layer's forward completes...
            self._activations[id(layer)] = output
            weight_grad, bias_grad = engine.predictor.predict(layer, output)
            engine.optimizer.apply_gradient(
                layer.weight, self.synthetic_lr_scale * weight_grad
            )
            if layer.bias is not None and bias_grad is not None:
                engine.optimizer.apply_gradient(
                    layer.bias, self.synthetic_lr_scale * bias_grad
                )

        for layer in engine.layers:
            layer.forward_hook = hook

    def train_batch(self, inputs, targets, phase: Phase) -> BatchResult:
        engine = self.engine
        engine.model.train()
        self._activations.clear()
        self._install_dni_hooks()
        try:
            outputs = engine.model(inputs)
        finally:
            engine.clear_hooks()
        # ...and then backpropagation still runs in full (§2).
        loss, grad = engine.loss_fn(outputs, targets)
        engine.optimizer.zero_grad()
        engine.model.backward(grad)
        engine.optimizer.step()
        mse_by_layer: dict[int, float] = {}
        mape_by_layer: dict[int, float] = {}
        for index, layer in enumerate(engine.layers):
            output = self._activations.get(id(layer))
            if output is None or layer.weight.grad is None:
                continue
            bias_grad = layer.bias.grad if layer.bias is not None else None
            mse, mape = engine.predictor.train_step(
                layer, output, layer.weight.grad, bias_grad
            )
            mse_by_layer[index] = mse
            mape_by_layer[index] = mape
        return BatchResult(
            loss=loss,
            phase=phase,
            predictor_mse=mse_by_layer,
            predictor_mape=mape_by_layer,
        )
