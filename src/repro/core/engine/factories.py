"""Preconfigured engines for the three training schemes of the paper.

These factories are the one place that knows how to wire strategies,
schedules, optimizers and the shared predictor into a
:class:`TrainingEngine`; the legacy ``BPTrainer`` / ``AdaGPTrainer`` /
``DNITrainer`` classes are thin shims over them, and the experiments use
them directly.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ... import nn
from ...nn.backend import BackendSpec
from ...nn.module import Module
from ...nn.optim import MultiStepLR, Optimizer, ReduceLROnPlateau
from ..predictor import GradientPredictor
from ..schedule import HeuristicSchedule, Phase
from .engine import LossFn, MetricFn, TrainingEngine
from .events import Callback
from .strategies import (
    BackpropStrategy,
    DNIStrategy,
    GradPredictStrategy,
    PipelineGPStrategy,
)


def bp_engine(
    model: Module,
    loss_fn: LossFn,
    optimizer: Optional[Optimizer] = None,
    lr: float = 1e-3,
    metric_fn: Optional[MetricFn] = None,
    plateau_scheduler: bool = True,
    callbacks: Iterable[Callback] = (),
    backend: Optional[BackendSpec] = None,
) -> TrainingEngine:
    """Plain backpropagation (the paper's comparison point)."""
    optimizer = optimizer or nn.SGD(model.parameters(), lr=lr, momentum=0.9)
    return TrainingEngine(
        model,
        loss_fn,
        optimizer,
        strategies=BackpropStrategy(),
        metric_fn=metric_fn,
        lr_scheduler=ReduceLROnPlateau(optimizer) if plateau_scheduler else None,
        callbacks=callbacks,
        backend=backend,
    )


def adagp_engine(
    model: Module,
    loss_fn: LossFn,
    optimizer: Optional[Optimizer] = None,
    predictor: Optional[GradientPredictor] = None,
    schedule=None,
    lr: float = 1e-3,
    predictor_lr: float = 1e-4,
    metric_fn: Optional[MetricFn] = None,
    plateau_scheduler: bool = True,
    predictor_milestones: tuple[int, ...] = (20, 40),
    gp_optimizer: Optional[Optimizer] = None,
    batched_predictor: bool = True,
    batched_gp: bool = False,
    callbacks: Iterable[Callback] = (),
    backend: Optional[BackendSpec] = None,
    gp_backend: Optional[BackendSpec] = None,
) -> TrainingEngine:
    """ADA-GP: warm-up / Phase BP / Phase GP under a phase schedule.

    ``gp_optimizer`` is the optimizer used to *apply* predicted
    gradients in Phase GP.  The accelerator applies in-flight updates
    with a plain MAC datapath (SGD-style, §3.7/§4.2); when the software
    optimizer is Adam, pass an SGD instance here to mirror the hardware
    — Adam's per-element normalization would otherwise blow small
    predicted gradients up into full-size steps.

    ``batched_predictor`` selects the stacked one-shot predictor update
    in Phase BP (the fast path); the per-layer loop remains available
    for exact reproduction of the pre-engine trajectories.

    ``batched_gp`` selects the batched Phase-GP mode: predictions for
    every predictable layer fire as one stacked ``predict_many`` call
    (plus one grouped optimizer apply) *after* the no-grad forward,
    instead of per-layer hooks applying updates in flight.  Default off
    — the per-layer immediacy is §3.4's semantics; see
    ``examples/batched_gp_tradeoff.py`` for the accuracy/throughput
    trade.

    ``backend`` selects the compute backend for every batch;
    ``gp_backend`` additionally pins Phase-GP forward streams to their
    own backend (e.g. ``backend="numpy", gp_backend="fused"``).
    """
    if not nn.predictable_layers(model):
        raise ValueError("model has no predictable layers for ADA-GP")
    optimizer = optimizer or nn.SGD(model.parameters(), lr=lr, momentum=0.9)
    predictor = predictor or GradientPredictor.for_model(model, lr=predictor_lr)
    bp_strategy = BackpropStrategy(train_predictor=True, batched=batched_predictor)
    return TrainingEngine(
        model,
        loss_fn,
        optimizer,
        strategies={
            Phase.WARMUP: bp_strategy,
            Phase.BP: bp_strategy,
            Phase.GP: GradPredictStrategy(
                batched_predict=batched_gp, backend=gp_backend
            ),
        },
        schedule=schedule or HeuristicSchedule(),
        metric_fn=metric_fn,
        lr_scheduler=ReduceLROnPlateau(optimizer) if plateau_scheduler else None,
        predictor=predictor,
        gp_optimizer=gp_optimizer,
        predictor_scheduler=MultiStepLR(
            predictor.optimizer, milestones=list(predictor_milestones)
        ),
        callbacks=callbacks,
        backend=backend,
    )


def pipeline_adagp_engine(
    model: Module,
    loss_fn: LossFn,
    num_stages: int = 2,
    micro_batches: int = 4,
    kind: str = "GPipe",
    optimizer: Optional[Optimizer] = None,
    predictor: Optional[GradientPredictor] = None,
    schedule=None,
    lr: float = 1e-3,
    predictor_lr: float = 1e-4,
    metric_fn: Optional[MetricFn] = None,
    plateau_scheduler: bool = True,
    predictor_milestones: tuple[int, ...] = (20, 40),
    gp_optimizer: Optional[Optimizer] = None,
    batched_predictor: bool = True,
    callbacks: Iterable[Callback] = (),
    backend: Optional[BackendSpec] = None,
) -> TrainingEngine:
    """ADA-GP on a stage-partitioned pipeline (§3.7, measured Fig 20).

    Identical phase semantics to :func:`adagp_engine`, but every batch —
    BP and GP alike — executes on the event-driven micro-batch pipeline
    executor, one :class:`PipelineGPStrategy` for all phases so the
    per-stage device clocks stay continuous and Phase-GP streams
    measurably fill the schedule's bubbles.  The measured timeline is at
    ``engine.strategies[Phase.GP].executor.timeline``.

    ``model`` must be a top-level :class:`~repro.nn.Sequential` (what
    :func:`repro.models.build_mini` returns); the split happens lazily
    on the first training batch, balanced by the accel cost model.
    """
    if not nn.predictable_layers(model):
        raise ValueError("model has no predictable layers for ADA-GP")
    optimizer = optimizer or nn.SGD(model.parameters(), lr=lr, momentum=0.9)
    predictor = predictor or GradientPredictor.for_model(model, lr=predictor_lr)
    strategy = PipelineGPStrategy(
        num_stages=num_stages,
        micro_batches=micro_batches,
        kind=kind,
        batched=batched_predictor,
    )
    # One strategy serves all phases, so the engine-level backend scope
    # covers the executor's stage compute for BP and GP batches alike.
    return TrainingEngine(
        model,
        loss_fn,
        optimizer,
        strategies=strategy,
        schedule=schedule or HeuristicSchedule(),
        metric_fn=metric_fn,
        lr_scheduler=ReduceLROnPlateau(optimizer) if plateau_scheduler else None,
        predictor=predictor,
        gp_optimizer=gp_optimizer,
        predictor_scheduler=MultiStepLR(
            predictor.optimizer, milestones=list(predictor_milestones)
        ),
        callbacks=callbacks,
        backend=backend,
    )


def dni_engine(
    model: Module,
    loss_fn: LossFn,
    optimizer: Optional[Optimizer] = None,
    predictor: Optional[GradientPredictor] = None,
    lr: float = 1e-3,
    predictor_lr: float = 1e-4,
    synthetic_lr_scale: float = 0.1,
    metric_fn: Optional[MetricFn] = None,
    plateau_scheduler: bool = True,
    callbacks: Iterable[Callback] = (),
    backend: Optional[BackendSpec] = None,
) -> TrainingEngine:
    """DNI baseline: synthetic gradients every batch + full backprop.

    Differs from ADA-GP only in strategy wiring — every batch runs the
    :class:`DNIStrategy`, there is no phase schedule and no backward
    work is ever skipped (the paper's §2 comparison).
    """
    if not nn.predictable_layers(model):
        raise ValueError("model has no predictable layers for DNI")
    optimizer = optimizer or nn.SGD(model.parameters(), lr=lr, momentum=0.9)
    predictor = predictor or GradientPredictor.for_model(model, lr=predictor_lr)
    return TrainingEngine(
        model,
        loss_fn,
        optimizer,
        strategies=DNIStrategy(synthetic_lr_scale=synthetic_lr_scale),
        metric_fn=metric_fn,
        lr_scheduler=ReduceLROnPlateau(optimizer) if plateau_scheduler else None,
        predictor=predictor,
        callbacks=callbacks,
        backend=backend,
    )
