"""Evaluation metrics: MAPE/MSE (Fig 15), BLEU (Table 2), mAP (Table 3)."""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from .predictor import mean_absolute_percentage_error  # re-export

__all__ = [
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "bleu_score",
    "iou",
    "mean_average_precision",
    "detection_class_accuracy",
]


def mean_squared_error(actual: np.ndarray, predicted: np.ndarray) -> float:
    if actual.shape != predicted.shape:
        raise ValueError(f"shape mismatch: {actual.shape} vs {predicted.shape}")
    return float(np.mean((actual - predicted) ** 2))


# ----------------------------------------------------------------------
# BLEU (Papineni et al. 2002), for the Transformer experiment.
# ----------------------------------------------------------------------
def _ngram_counts(tokens: Sequence[int], n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def bleu_score(
    candidates: Sequence[Sequence[int]],
    references: Sequence[Sequence[int]],
    max_n: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus BLEU in [0, 100] with add-1 smoothing for empty orders."""
    if len(candidates) != len(references):
        raise ValueError(
            f"{len(candidates)} candidates vs {len(references)} references"
        )
    if not candidates:
        raise ValueError("bleu_score needs at least one sentence pair")
    matched = np.zeros(max_n)
    total = np.zeros(max_n)
    cand_len = 0
    ref_len = 0
    for cand, ref in zip(candidates, references):
        cand = list(cand)
        ref = list(ref)
        cand_len += len(cand)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            cand_counts = _ngram_counts(cand, n)
            ref_counts = _ngram_counts(ref, n)
            total[n - 1] += max(len(cand) - n + 1, 0)
            matched[n - 1] += sum(
                min(count, ref_counts[gram]) for gram, count in cand_counts.items()
            )
    precisions = []
    for n in range(max_n):
        if total[n] == 0:
            precisions.append(0.0)
            continue
        if matched[n] == 0 and smooth:
            precisions.append(1.0 / (2.0 * total[n]))
        else:
            precisions.append(matched[n] / total[n])
    if min(precisions) <= 0:
        return 0.0
    log_precision = float(np.mean([np.log(p) for p in precisions]))
    brevity = 1.0 if cand_len > ref_len else float(np.exp(1 - ref_len / max(cand_len, 1)))
    return 100.0 * brevity * float(np.exp(log_precision))


# ----------------------------------------------------------------------
# Detection metrics, for the YOLO experiment.
# ----------------------------------------------------------------------
Box = tuple[float, float, float, float]  # x1, y1, x2, y2


def iou(box_a: Box, box_b: Box) -> float:
    """Intersection-over-union of two (x1, y1, x2, y2) boxes."""
    x1 = max(box_a[0], box_b[0])
    y1 = max(box_a[1], box_b[1])
    x2 = min(box_a[2], box_b[2])
    y2 = min(box_a[3], box_b[3])
    inter = max(x2 - x1, 0.0) * max(y2 - y1, 0.0)
    area_a = max(box_a[2] - box_a[0], 0.0) * max(box_a[3] - box_a[1], 0.0)
    area_b = max(box_b[2] - box_b[0], 0.0) * max(box_b[3] - box_b[1], 0.0)
    union = area_a + area_b - inter
    if union <= 0:
        return 0.0
    return inter / union


def _average_precision(
    detections: list[tuple[int, float, Box]],  # (image_id, confidence, box)
    ground_truth: dict[int, list[Box]],
    iou_threshold: float,
) -> float:
    """All-point interpolated AP for one class."""
    num_gt = sum(len(boxes) for boxes in ground_truth.values())
    if num_gt == 0:
        return 0.0
    detections = sorted(detections, key=lambda d: -d[1])
    matched: dict[int, set[int]] = {img: set() for img in ground_truth}
    tp = np.zeros(len(detections))
    fp = np.zeros(len(detections))
    for i, (image_id, _conf, box) in enumerate(detections):
        candidates = ground_truth.get(image_id, [])
        best_iou, best_j = 0.0, -1
        for j, gt_box in enumerate(candidates):
            if j in matched.get(image_id, set()):
                continue
            overlap = iou(box, gt_box)
            if overlap > best_iou:
                best_iou, best_j = overlap, j
        if best_iou >= iou_threshold and best_j >= 0:
            tp[i] = 1
            matched.setdefault(image_id, set()).add(best_j)
        else:
            fp[i] = 1
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recalls = cum_tp / num_gt
    precisions = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    # All-point interpolation.
    ap = 0.0
    prev_recall = 0.0
    for r, p in zip(recalls, np.maximum.accumulate(precisions[::-1])[::-1]):
        ap += (r - prev_recall) * p
        prev_recall = r
    return float(ap)


def mean_average_precision(
    predictions: list[list[tuple]],  # per image: (class_id, conf, x1, y1, x2, y2)
    ground_truths: list[list[tuple]],  # per image: (class_id, x1, y1, x2, y2)
    num_classes: int,
    iou_threshold: float = 0.5,
) -> float:
    """mAP at a single IoU threshold (PascalVOC style, paper IOU=0.5)."""
    if len(predictions) != len(ground_truths):
        raise ValueError("predictions and ground truths must align per image")
    aps = []
    for class_id in range(num_classes):
        detections = []
        gt: dict[int, list[Box]] = {}
        for image_id, (preds, gts) in enumerate(zip(predictions, ground_truths)):
            for p in preds:
                if p[0] == class_id:
                    detections.append((image_id, p[1], (p[2], p[3], p[4], p[5])))
            boxes = [(g[1], g[2], g[3], g[4]) for g in gts if g[0] == class_id]
            if boxes:
                gt[image_id] = boxes
        if not gt:
            continue  # class absent from this evaluation set
        aps.append(_average_precision(detections, gt, iou_threshold))
    if not aps:
        raise ValueError("no ground-truth objects for any class")
    return float(np.mean(aps))


def detection_class_accuracy(
    prediction_grid: np.ndarray, target_grid: np.ndarray
) -> float:
    """Percent of object cells whose argmax class matches the target.

    This is the paper's "Class Acc" column of Table 3 (classification
    accuracy on cells that contain an object).
    """
    if prediction_grid.shape != target_grid.shape:
        raise ValueError(
            f"shape mismatch: {prediction_grid.shape} vs {target_grid.shape}"
        )
    obj_mask = target_grid[:, 0] > 0.5
    if not obj_mask.any():
        raise ValueError("no object cells in targets")
    pred_classes = prediction_grid[:, 5:].argmax(axis=1)
    true_classes = target_grid[:, 5:].argmax(axis=1)
    return float((pred_classes[obj_mask] == true_classes[obj_mask]).mean() * 100.0)
