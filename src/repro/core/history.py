"""Training history records shared by every engine-driven trainer."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class History:
    """Per-epoch training curves.

    ``bp_batches``/``gp_batches`` record the *true* number of batches the
    epoch ran in each phase: ``bp_batches`` counts true-gradient batches
    (warm-up and Phase BP both run full backprop), ``gp_batches`` counts
    prediction-only batches where backward was skipped.  A plain-BP run
    records every batch in ``bp_batches`` and zeros in ``gp_batches``
    (the engine replaced the old ``-1`` placeholder the BP trainer used
    to append), so ``sum(gp_batches) / (sum(bp_batches) +
    sum(gp_batches))`` is the realized GP share for any trainer.

    ``predictor_mape``/``predictor_mse`` hold one dict per epoch mapping
    predictable-layer index (forward order) to the epoch-mean prediction
    error — exactly the series paper Fig 15 plots for VGG13.  They stay
    empty when no predictor is attached (plain BP).
    """

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    gp_batches: list[int] = field(default_factory=list)
    bp_batches: list[int] = field(default_factory=list)
    predictor_mape: list[dict[int, float]] = field(default_factory=list)
    predictor_mse: list[dict[int, float]] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_metric(self) -> float:
        if not self.val_metric:
            raise ValueError("no epochs recorded")
        return max(self.val_metric)

    @property
    def final_metric(self) -> float:
        if not self.val_metric:
            raise ValueError("no epochs recorded")
        return self.val_metric[-1]

    def layer_series(self, layer_index: int, kind: str = "mape") -> list[float]:
        """Error-over-epochs series for one layer (Fig 15 curves)."""
        source = self.predictor_mape if kind == "mape" else self.predictor_mse
        return [epoch.get(layer_index, float("nan")) for epoch in source]
