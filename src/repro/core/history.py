"""Training history records shared by every engine-driven trainer."""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class History:
    """Per-epoch training curves.

    ``bp_batches``/``gp_batches`` record the *true* number of batches the
    epoch ran in each phase: ``bp_batches`` counts true-gradient batches
    (warm-up and Phase BP both run full backprop), ``gp_batches`` counts
    prediction-only batches where backward was skipped.  A plain-BP run
    records every batch in ``bp_batches`` and zeros in ``gp_batches``
    (the engine replaced the old ``-1`` placeholder the BP trainer used
    to append).  :attr:`gp_share` is the realized whole-run GP share and
    ``gp_fraction`` the per-epoch series (both recorded, not planned:
    an :class:`~repro.core.AdaptiveSchedule` earns its ratio from
    observed predictor quality, so realized shares are the ground truth
    the schedule-search subsystem optimizes against).

    ``predictor_mape``/``predictor_mse`` hold one dict per epoch mapping
    predictable-layer index (forward order) to the epoch-mean prediction
    error — exactly the series paper Fig 15 plots for VGG13.  They stay
    empty when no predictor is attached (plain BP).
    """

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    gp_batches: list[int] = field(default_factory=list)
    bp_batches: list[int] = field(default_factory=list)
    gp_fraction: list[float] = field(default_factory=list)
    predictor_mape: list[dict[int, float]] = field(default_factory=list)
    predictor_mse: list[dict[int, float]] = field(default_factory=list)

    def __setstate__(self, state: dict) -> None:
        # Checkpoints pickled before a field existed (e.g. pre-tune
        # ``gp_fraction``) restore with defaults for the missing fields
        # instead of AttributeError-ing on first use.
        self.__dict__.update(state)
        for spec in fields(self):
            if spec.name not in self.__dict__:
                self.__dict__[spec.name] = spec.default_factory()

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_metric(self) -> float:
        if not self.val_metric:
            raise ValueError("no epochs recorded")
        return max(self.val_metric)

    @property
    def final_metric(self) -> float:
        if not self.val_metric:
            raise ValueError("no epochs recorded")
        return self.val_metric[-1]

    @property
    def gp_share(self) -> float:
        """Realized whole-run GP share: prediction-only batches over all
        training batches.  Replaces the hand-computed
        ``sum(gp_batches) / (sum(bp_batches) + sum(gp_batches))``."""
        total = sum(self.bp_batches) + sum(self.gp_batches)
        if total == 0:
            raise ValueError("no training batches recorded")
        return sum(self.gp_batches) / total

    def layer_series(self, layer_index: int, kind: str = "mape") -> list[float]:
        """Error-over-epochs series for one layer (Fig 15 curves)."""
        source = self.predictor_mape if kind == "mape" else self.predictor_mse
        return [epoch.get(layer_index, float("nan")) for epoch in source]
