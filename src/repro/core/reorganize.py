"""Tensor reorganization (paper §3.6).

The predictor must output one gradient *row* per output unit of a layer
(``in_ch*k*k`` values per conv filter, ``in_features`` per linear
neuron).  Feeding raw activations would require a predictor input of
``batch * out_ch * W * H`` values — infeasible for real layers.  The
paper's reorganization:

1. average the output activations across the batch dimension
   (every sample contributes to the weight update), then
2. treat each output channel as its own *sample* for the predictor,

turning the activation ``(batch, out_ch, W, H)`` into a predictor input
of shape ``(out_ch, 1, W, H)``, paired with predictor outputs of shape
``(out_ch, in_ch*k*k)`` that match the weight-gradient layout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.layers.core import Conv2d, Linear
from ..nn.module import Module, PredictableMixin


def reorganize_activations(layer: Module, output: np.ndarray) -> np.ndarray:
    """Reorganize a layer's output activations for the predictor.

    Conv2d: ``(batch, out_ch, H, W) -> (out_ch, 1, H, W)`` via batch
    averaging.  Linear on 2-D activations: each output neuron becomes a
    ``(1, 1, 1)`` sample.  Linear on sequence activations
    ``(batch, seq, out)``: the sequence axis plays the role of the
    spatial width, giving ``(out, 1, 1, seq)`` — the direct analogue of
    the conv case (the adaptive pooling stage of the predictor absorbs
    the variable length).
    """
    if isinstance(layer, Conv2d):
        if output.ndim != 4:
            raise ValueError(f"conv activation must be 4-D, got {output.shape}")
        averaged = output.mean(axis=0)  # (out_ch, H, W)
        return averaged[:, None, :, :]
    if isinstance(layer, Linear):
        if output.ndim == 3:
            averaged = output.mean(axis=0)  # (seq, out)
            return np.ascontiguousarray(averaged.T)[:, None, None, :]
        flat = output.reshape(-1, output.shape[-1])
        averaged = flat.mean(axis=0)  # (out_features,)
        return averaged[:, None, None, None]
    raise TypeError(f"layer {type(layer).__name__} is not ADA-GP predictable")


def gradient_rows(layer: PredictableMixin) -> tuple[int, int]:
    """(output_units, row_size) of the layer's flattened gradient."""
    return layer.output_units(), layer.gradient_size()


def flatten_gradients(
    layer: PredictableMixin,
    weight_grad: np.ndarray,
    bias_grad: Optional[np.ndarray],
) -> np.ndarray:
    """Pack weight (+bias) gradients into per-output-unit rows."""
    units, row = gradient_rows(layer)
    flat_w = weight_grad.reshape(units, -1)
    if layer.bias is not None:
        if bias_grad is None:
            raise ValueError("layer has a bias but no bias gradient given")
        return np.concatenate([flat_w, bias_grad.reshape(units, 1)], axis=1)
    if flat_w.shape[1] != row:
        raise ValueError(
            f"gradient row {flat_w.shape[1]} != expected {row} for "
            f"{type(layer).__name__}"
        )
    return flat_w


def unflatten_gradients(
    layer: PredictableMixin, rows: np.ndarray
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Inverse of :func:`flatten_gradients`."""
    units, row = gradient_rows(layer)
    if rows.shape != (units, row):
        raise ValueError(
            f"rows shape {rows.shape} != expected ({units}, {row})"
        )
    if layer.bias is not None:
        weight_part = rows[:, :-1]
        bias_grad = np.ascontiguousarray(rows[:, -1])
    else:
        weight_part = rows
        bias_grad = None
    weight_grad = np.ascontiguousarray(weight_part).reshape(layer.weight.data.shape)
    return weight_grad, bias_grad
