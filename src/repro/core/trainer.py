"""BP baseline trainer and the ADA-GP trainer (paper §3).

Both trainers consume any :class:`~repro.nn.Module` whose ``forward``
takes the batch inputs (an array, or a tuple for multi-input models like
the seq2seq Transformer) and whose ``backward`` accepts the loss
gradient.  Loss functions return ``(loss_value, grad_wrt_outputs)``.

The ADA-GP trainer implements the three phases:

* **Warm Up / Phase BP** — standard backprop updates the model; the
  predictor additionally trains on every predictable layer's true
  gradients (its predictions are computed but *not* applied, §3.3).
* **Phase GP** — backprop is skipped; a forward hook updates each
  predictable layer with predicted gradients the moment that layer's
  forward pass completes (§3.4), mirroring the per-layer immediacy the
  hardware designs exploit.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Optional

import numpy as np

from .. import nn
from ..nn.module import Module, PredictableMixin
from ..nn.optim import Optimizer, ReduceLROnPlateau, MultiStepLR
from .history import History
from .predictor import GradientPredictor
from .schedule import HeuristicSchedule, Phase

Batch = tuple  # (inputs, targets)
LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]
MetricFn = Callable[[np.ndarray, np.ndarray], float]
BatchesFn = Callable[[], Iterable[Batch]]


class BPTrainer:
    """Plain backpropagation baseline (the paper's comparison point)."""

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        optimizer: Optional[Optimizer] = None,
        lr: float = 1e-3,
        metric_fn: Optional[MetricFn] = None,
        plateau_scheduler: bool = True,
    ) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer or nn.SGD(model.parameters(), lr=lr, momentum=0.9)
        self.metric_fn = metric_fn
        self.scheduler = (
            ReduceLROnPlateau(self.optimizer) if plateau_scheduler else None
        )
        self.history = History()

    # ------------------------------------------------------------------
    def train_batch(self, inputs, targets) -> float:
        """One forward + backward + optimizer step; returns the loss."""
        self.model.train()
        outputs = self.model(inputs)
        loss, grad = self.loss_fn(outputs, targets)
        self.optimizer.zero_grad()
        self.model.backward(grad)
        self.optimizer.step()
        return loss

    def train_epoch(self, batches: Iterable[Batch]) -> float:
        """Train over an iterable of batches; returns the mean loss."""
        losses = [self.train_batch(inputs, targets) for inputs, targets in batches]
        if not losses:
            raise ValueError("train_epoch received no batches")
        return float(np.mean(losses))

    def evaluate(self, batches: Iterable[Batch]) -> tuple[float, float]:
        """Mean (loss, metric) over validation batches."""
        self.model.eval()
        losses: list[float] = []
        metrics: list[float] = []
        for inputs, targets in batches:
            outputs = self.model(inputs)
            loss, _ = self.loss_fn(outputs, targets)
            losses.append(loss)
            if self.metric_fn is not None:
                metrics.append(self.metric_fn(outputs, targets))
        self.model.train()
        mean_metric = float(np.mean(metrics)) if metrics else float("nan")
        return float(np.mean(losses)), mean_metric

    def fit(
        self, train_batches: BatchesFn, val_batches: BatchesFn, epochs: int
    ) -> History:
        """Run the full train/validate loop and record History."""
        for _epoch in range(epochs):
            train_loss = self.train_epoch(train_batches())
            val_loss, val_metric = self.evaluate(val_batches())
            if self.scheduler is not None:
                self.scheduler.step(val_loss)
            self.history.train_loss.append(train_loss)
            self.history.val_loss.append(val_loss)
            self.history.val_metric.append(val_metric)
            self.history.bp_batches.append(-1)
            self.history.gp_batches.append(0)
        return self.history


class AdaGPTrainer:
    """Adaptive gradient-prediction trainer (the paper's algorithm)."""

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        optimizer: Optional[Optimizer] = None,
        predictor: Optional[GradientPredictor] = None,
        schedule: Optional[HeuristicSchedule] = None,
        lr: float = 1e-3,
        predictor_lr: float = 1e-4,
        metric_fn: Optional[MetricFn] = None,
        plateau_scheduler: bool = True,
        predictor_milestones: tuple[int, ...] = (20, 40),
        gp_optimizer: Optional[Optimizer] = None,
    ) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer or nn.SGD(model.parameters(), lr=lr, momentum=0.9)
        self.predictor = predictor or GradientPredictor.for_model(
            model, lr=predictor_lr
        )
        # Optimizer used to *apply* predicted gradients in Phase GP.  The
        # accelerator applies in-flight updates with a plain MAC datapath
        # (SGD-style, §3.7/§4.2); when the software optimizer is Adam,
        # pass an SGD instance here to mirror the hardware — Adam's
        # per-element normalization would otherwise blow small predicted
        # gradients up into full-size steps.
        self.gp_optimizer = gp_optimizer or self.optimizer
        self.schedule = schedule or HeuristicSchedule()
        self.metric_fn = metric_fn
        self.scheduler = (
            ReduceLROnPlateau(self.optimizer) if plateau_scheduler else None
        )
        self.predictor_scheduler = MultiStepLR(
            self.predictor.optimizer, milestones=list(predictor_milestones)
        )
        self.layers: list[PredictableMixin] = nn.predictable_layers(model)
        if not self.layers:
            raise ValueError("model has no predictable layers for ADA-GP")
        self._layer_index = {id(layer): i for i, layer in enumerate(self.layers)}
        self._activations: dict[int, np.ndarray] = {}
        self.history = History()
        self.current_epoch = 0

    # ------------------------------------------------------------------
    # Hooks.
    # ------------------------------------------------------------------
    def _install_bp_hooks(self) -> None:
        """Phase BP: capture each layer's output for predictor training."""

        def hook(layer: Module, output: np.ndarray) -> None:
            self._activations[id(layer)] = output

        for layer in self.layers:
            layer.forward_hook = hook

    def _install_gp_hooks(self) -> None:
        """Phase GP: predict + apply the update as forward proceeds (§3.4)."""

        def hook(layer: Module, output: np.ndarray) -> None:
            weight_grad, bias_grad = self.predictor.predict(layer, output)
            self.gp_optimizer.apply_gradient(layer.weight, weight_grad)
            if layer.bias is not None and bias_grad is not None:
                self.gp_optimizer.apply_gradient(layer.bias, bias_grad)

        for layer in self.layers:
            layer.forward_hook = hook

    def _remove_hooks(self) -> None:
        for layer in self.layers:
            layer.forward_hook = None

    # ------------------------------------------------------------------
    # Phase steps.
    # ------------------------------------------------------------------
    def train_batch_bp(
        self, inputs, targets, stats: Optional[dict] = None
    ) -> float:
        """Warm Up / Phase BP batch: backprop + predictor training."""
        self.model.train()
        self._activations.clear()
        self._install_bp_hooks()
        try:
            outputs = self.model(inputs)
            loss, grad = self.loss_fn(outputs, targets)
            self.optimizer.zero_grad()
            self.model.backward(grad)
            self.optimizer.step()
        finally:
            self._remove_hooks()
        # Train the predictor on every layer's true gradients (§3.3).
        for layer in self.layers:
            output = self._activations.get(id(layer))
            if output is None or layer.weight.grad is None:
                continue
            bias_grad = layer.bias.grad if layer.bias is not None else None
            mse, mape = self.predictor.train_step(
                layer, output, layer.weight.grad, bias_grad
            )
            if hasattr(self.schedule, "observe_mape"):
                self.schedule.observe_mape(mape)
            if stats is not None:
                index = self._layer_index[id(layer)]
                stats["mse"][index].append(mse)
                stats["mape"][index].append(mape)
        return loss

    def train_batch_gp(self, inputs, targets) -> float:
        """Phase GP batch: forward-only with per-layer predicted updates."""
        self.model.train()
        self._install_gp_hooks()
        try:
            outputs = self.model(inputs)
        finally:
            self._remove_hooks()
        loss, _ = self.loss_fn(outputs, targets)  # monitoring only
        return loss

    # ------------------------------------------------------------------
    def train_epoch(
        self, batches: Iterable[Batch], epoch: Optional[int] = None
    ) -> dict:
        """Train one epoch under the phase schedule; returns stats."""
        epoch = self.current_epoch if epoch is None else epoch
        stats = {
            "mse": defaultdict(list),
            "mape": defaultdict(list),
        }
        losses: list[float] = []
        counts = {Phase.WARMUP: 0, Phase.BP: 0, Phase.GP: 0}
        for batch_index, (inputs, targets) in enumerate(batches):
            phase = self.schedule.phase_for(epoch, batch_index)
            counts[phase] += 1
            if phase == Phase.GP:
                losses.append(self.train_batch_gp(inputs, targets))
            else:
                losses.append(self.train_batch_bp(inputs, targets, stats))
        if not losses:
            raise ValueError("train_epoch received no batches")
        return {
            "loss": float(np.mean(losses)),
            "counts": counts,
            "mse": {k: float(np.mean(v)) for k, v in stats["mse"].items()},
            "mape": {k: float(np.mean(v)) for k, v in stats["mape"].items()},
        }

    def evaluate(self, batches: Iterable[Batch]) -> tuple[float, float]:
        """Mean (loss, metric) over validation batches, hooks disabled."""
        self.model.eval()
        self._remove_hooks()
        losses: list[float] = []
        metrics: list[float] = []
        for inputs, targets in batches:
            outputs = self.model(inputs)
            loss, _ = self.loss_fn(outputs, targets)
            losses.append(loss)
            if self.metric_fn is not None:
                metrics.append(self.metric_fn(outputs, targets))
        self.model.train()
        mean_metric = float(np.mean(metrics)) if metrics else float("nan")
        return float(np.mean(losses)), mean_metric

    def fit(
        self, train_batches: BatchesFn, val_batches: BatchesFn, epochs: int
    ) -> History:
        """Run warm-up / Phase BP / Phase GP training end-to-end.

        Each epoch is scheduled per batch by ``self.schedule``; validation
        runs after every epoch and both LR schedulers step.  Per-layer
        predictor errors (Fig 15's series) accumulate in ``self.history``.
        """
        for _ in range(epochs):
            epoch_stats = self.train_epoch(train_batches(), self.current_epoch)
            val_loss, val_metric = self.evaluate(val_batches())
            if self.scheduler is not None:
                self.scheduler.step(val_loss)
            self.predictor_scheduler.step()
            counts = epoch_stats["counts"]
            self.history.train_loss.append(epoch_stats["loss"])
            self.history.val_loss.append(val_loss)
            self.history.val_metric.append(val_metric)
            self.history.bp_batches.append(counts[Phase.BP] + counts[Phase.WARMUP])
            self.history.gp_batches.append(counts[Phase.GP])
            self.history.predictor_mse.append(epoch_stats["mse"])
            self.history.predictor_mape.append(epoch_stats["mape"])
            self.current_epoch += 1
        return self.history
