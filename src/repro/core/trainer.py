"""BP baseline trainer and the ADA-GP trainer (paper §3) — engine shims.

Historically this module carried three hand-rolled copies of the
train/eval/fit loop; the loop now lives once in
:class:`~repro.core.engine.TrainingEngine` with per-batch behavior
factored into :mod:`~repro.core.engine.strategies`.  ``BPTrainer`` and
``AdaGPTrainer`` remain as thin compatibility shims with their original
constructor signatures and ``fit()`` semantics, delegating everything to
an engine built by :func:`~repro.core.engine.bp_engine` /
:func:`~repro.core.engine.adagp_engine`.  New code should use the engine
API directly (callbacks, checkpointing and early stopping come with it).

The ADA-GP phases (unchanged semantics):

* **Warm Up / Phase BP** — standard backprop updates the model; the
  predictor additionally trains on every predictable layer's true
  gradients (§3.3), through the batched fast path by default.
* **Phase GP** — backprop is skipped; a forward hook updates each
  predictable layer with predicted gradients the moment that layer's
  forward pass completes (§3.4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from ..nn.module import Module, PredictableMixin
from ..nn.optim import Optimizer
from .engine import TrainingEngine, adagp_engine, bp_engine
from .engine.engine import Batch, BatchesFn, LossFn, MetricFn
from .history import History
from .predictor import GradientPredictor
from .schedule import HeuristicSchedule, Phase

__all__ = ["BPTrainer", "AdaGPTrainer", "Batch", "LossFn", "MetricFn", "BatchesFn"]


class BPTrainer:
    """Plain backpropagation baseline (the paper's comparison point)."""

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        optimizer: Optional[Optimizer] = None,
        lr: float = 1e-3,
        metric_fn: Optional[MetricFn] = None,
        plateau_scheduler: bool = True,
    ) -> None:
        self.engine: TrainingEngine = bp_engine(
            model,
            loss_fn,
            optimizer=optimizer,
            lr=lr,
            metric_fn=metric_fn,
            plateau_scheduler=plateau_scheduler,
        )

    # -- engine attribute passthroughs ---------------------------------
    @property
    def model(self) -> Module:
        return self.engine.model

    @property
    def loss_fn(self) -> LossFn:
        return self.engine.loss_fn

    @property
    def optimizer(self) -> Optimizer:
        return self.engine.optimizer

    @property
    def metric_fn(self) -> Optional[MetricFn]:
        return self.engine.metric_fn

    @property
    def scheduler(self):
        return self.engine.lr_scheduler

    @property
    def history(self) -> History:
        return self.engine.history

    # ------------------------------------------------------------------
    def train_batch(self, inputs, targets) -> float:
        """One forward + backward + optimizer step; returns the loss."""
        return self.engine.train_batch(inputs, targets).loss

    def train_epoch(self, batches: Iterable[Batch]) -> float:
        """Train over an iterable of batches; returns the mean loss."""
        return self.engine.train_epoch(batches).loss

    def evaluate(self, batches: Iterable[Batch]) -> tuple[float, float]:
        """Mean (loss, metric) over validation batches."""
        return self.engine.evaluate(batches)

    def fit(
        self, train_batches: BatchesFn, val_batches: BatchesFn, epochs: int
    ) -> History:
        """Run the full train/validate loop and record History."""
        return self.engine.fit(train_batches, val_batches, epochs)


class AdaGPTrainer:
    """Adaptive gradient-prediction trainer (the paper's algorithm)."""

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        optimizer: Optional[Optimizer] = None,
        predictor: Optional[GradientPredictor] = None,
        schedule: Optional[HeuristicSchedule] = None,
        lr: float = 1e-3,
        predictor_lr: float = 1e-4,
        metric_fn: Optional[MetricFn] = None,
        plateau_scheduler: bool = True,
        predictor_milestones: tuple[int, ...] = (20, 40),
        gp_optimizer: Optional[Optimizer] = None,
        batched_predictor: bool = True,
    ) -> None:
        self.engine: TrainingEngine = adagp_engine(
            model,
            loss_fn,
            optimizer=optimizer,
            predictor=predictor,
            schedule=schedule,
            lr=lr,
            predictor_lr=predictor_lr,
            metric_fn=metric_fn,
            plateau_scheduler=plateau_scheduler,
            predictor_milestones=predictor_milestones,
            gp_optimizer=gp_optimizer,
            batched_predictor=batched_predictor,
        )

    # -- engine attribute passthroughs ---------------------------------
    @property
    def model(self) -> Module:
        return self.engine.model

    @property
    def loss_fn(self) -> LossFn:
        return self.engine.loss_fn

    @property
    def optimizer(self) -> Optimizer:
        return self.engine.optimizer

    @property
    def gp_optimizer(self) -> Optimizer:
        return self.engine.gp_optimizer

    @property
    def predictor(self) -> GradientPredictor:
        return self.engine.predictor

    @property
    def schedule(self):
        return self.engine.schedule

    @property
    def metric_fn(self) -> Optional[MetricFn]:
        return self.engine.metric_fn

    @property
    def scheduler(self):
        return self.engine.lr_scheduler

    @property
    def predictor_scheduler(self):
        return self.engine.predictor_scheduler

    @property
    def layers(self) -> list[PredictableMixin]:
        return self.engine.layers

    @property
    def history(self) -> History:
        return self.engine.history

    @property
    def current_epoch(self) -> int:
        return self.engine.current_epoch

    # ------------------------------------------------------------------
    # Phase steps.
    # ------------------------------------------------------------------
    def train_batch_bp(
        self, inputs, targets, stats: Optional[dict] = None
    ) -> float:
        """Warm Up / Phase BP batch: backprop + predictor training."""
        result = self.engine.train_batch(inputs, targets, Phase.BP)
        if stats is not None and result.predictor_mse is not None:
            for index, value in result.predictor_mse.items():
                stats["mse"][index].append(value)
            for index, value in result.predictor_mape.items():
                stats["mape"][index].append(value)
        return result.loss

    def train_batch_gp(self, inputs, targets) -> float:
        """Phase GP batch: forward-only with per-layer predicted updates."""
        return self.engine.train_batch(inputs, targets, Phase.GP).loss

    # ------------------------------------------------------------------
    def train_epoch(
        self, batches: Iterable[Batch], epoch: Optional[int] = None
    ) -> dict:
        """Train one epoch under the phase schedule; returns stats."""
        return self.engine.train_epoch(batches, epoch).legacy_dict()

    def evaluate(self, batches: Iterable[Batch]) -> tuple[float, float]:
        """Mean (loss, metric) over validation batches, hooks disabled."""
        return self.engine.evaluate(batches)

    def fit(
        self, train_batches: BatchesFn, val_batches: BatchesFn, epochs: int
    ) -> History:
        """Run warm-up / Phase BP / Phase GP training end-to-end.

        Each epoch is scheduled per batch by ``self.schedule``; validation
        runs after every epoch and both LR schedulers step.  Per-layer
        predictor errors (Fig 15's series) accumulate in ``self.history``.
        """
        return self.engine.fit(train_batches, val_batches, epochs)

    # Kept for callers that built per-epoch stats dicts themselves.
    @staticmethod
    def empty_stats() -> dict:
        """A stats accumulator in the shape ``train_batch_bp`` fills."""
        return {"mse": defaultdict(list), "mape": defaultdict(list)}
