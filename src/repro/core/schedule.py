"""Phase scheduling: when to backpropagate and when to predict (§3.1, §3.5).

ADA-GP runs three phases:

* **Warm Up** — the first ``L`` epochs train purely with backprop while
  the predictor learns from true gradients.
* **Phase BP / Phase GP** — afterwards, every epoch alternates ``k``
  gradient-prediction batches with ``m`` backprop batches.

The paper's shipped heuristic (§3.5) fixes the ``k:m`` ratio per epoch
window: 4:1 for 4 epochs, 3:1 for 4 epochs, 2:1 for 4 epochs, then 1:1
for the rest of training.  :class:`HeuristicSchedule` reproduces it;
:class:`AdaptiveSchedule` implements the adaptive variant sketched in
§3.5 (ratio driven by observed predictor quality) as an extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Phase(str, Enum):
    """Training phase for a single batch."""

    WARMUP = "warmup"  # backprop + predictor training, pre-alternation
    BP = "bp"  # backprop + predictor training
    GP = "gp"  # predicted gradients only, backprop skipped


# The §3.5 ratio ladder: (epochs_in_window, (k, m)).
PAPER_RATIO_LADDER: tuple[tuple[int, tuple[int, int]], ...] = (
    (4, (4, 1)),
    (4, (3, 1)),
    (4, (2, 1)),
)
PAPER_FINAL_RATIO: tuple[int, int] = (1, 1)


@dataclass
class HeuristicSchedule:
    """The paper's fixed ratio ladder (§3.5).

    ``warmup_epochs`` is the paper's ``L`` (e.g. 10 for the full runs;
    the mini experiments use smaller values).  Within an epoch, batches
    cycle GP-first: ``k`` GP batches then ``m`` BP batches, matching
    "Initially, it proceeds with Phase GP ... for k batches before
    switching to Phase BP for m batches".
    """

    warmup_epochs: int = 10
    ladder: tuple[tuple[int, tuple[int, int]], ...] = PAPER_RATIO_LADDER
    final_ratio: tuple[int, int] = PAPER_FINAL_RATIO

    def ratio_for_epoch(self, epoch: int) -> tuple[int, int] | None:
        """(k, m) for an epoch, or None during warm-up."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        if epoch < self.warmup_epochs:
            return None
        offset = epoch - self.warmup_epochs
        for window, ratio in self.ladder:
            if offset < window:
                return ratio
            offset -= window
        return self.final_ratio

    def phase_for(self, epoch: int, batch_index: int) -> Phase:
        """Phase of batch ``batch_index`` (0-based) within ``epoch``."""
        ratio = self.ratio_for_epoch(epoch)
        if ratio is None:
            return Phase.WARMUP
        k, m = ratio
        position = batch_index % (k + m)
        return Phase.GP if position < k else Phase.BP

    def gp_fraction(self, epoch: int) -> float:
        """Fraction of batches run in Phase GP during ``epoch``."""
        ratio = self.ratio_for_epoch(epoch)
        if ratio is None:
            return 0.0
        k, m = ratio
        return k / (k + m)

    # -- state / config round-trip (checkpointing and schedule search) --

    def state_dict(self) -> dict:
        """Mutable state; the heuristic ladder is stateless."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        if state:
            raise ValueError(
                f"HeuristicSchedule carries no state, got keys {sorted(state)}"
            )

    def to_config(self) -> dict:
        """JSON-safe constructor arguments (inverse of :meth:`from_config`)."""
        return {
            "kind": "heuristic",
            "warmup_epochs": self.warmup_epochs,
            "ladder": [[window, list(ratio)] for window, ratio in self.ladder],
            "final_ratio": list(self.final_ratio),
        }

    @classmethod
    def from_config(cls, config: dict) -> "HeuristicSchedule":
        kind = config.get("kind", "heuristic")
        if kind != "heuristic":
            raise ValueError(f"expected kind 'heuristic', got {kind!r}")
        return cls(
            warmup_epochs=int(config["warmup_epochs"]),
            ladder=tuple(
                (int(window), (int(ratio[0]), int(ratio[1])))
                for window, ratio in config["ladder"]
            ),
            final_ratio=(
                int(config["final_ratio"][0]),
                int(config["final_ratio"][1]),
            ),
        )


@dataclass
class AdaptiveSchedule:
    """Quality-driven ratio control (the general algorithm of §3.5).

    The paper motivates adapting ``m`` upward as training converges
    because "the gradients' changes need to be increasingly precise".
    This controller picks the ratio from the most recent predictor MAPE
    (averaged over layers): better prediction quality earns more GP
    batches, and the available ratios shrink toward 1:1 as in the paper.
    Call :meth:`observe_mape` after every Phase BP batch.
    """

    warmup_epochs: int = 10
    thresholds: tuple[float, ...] = (2.0, 5.0, 10.0)  # MAPE % cut-offs
    ratios: tuple[tuple[int, int], ...] = ((4, 1), (3, 1), (2, 1), (1, 1))
    _recent_mape: float = field(default=float("inf"), repr=False)

    def __post_init__(self) -> None:
        if len(self.ratios) != len(self.thresholds) + 1:
            raise ValueError("need exactly one more ratio than thresholds")

    def observe_mape(self, mape: float) -> None:
        """Record the latest predictor MAPE (exponential smoothing)."""
        if self._recent_mape == float("inf"):
            self._recent_mape = mape
        else:
            self._recent_mape = 0.7 * self._recent_mape + 0.3 * mape

    def ratio_for_epoch(self, epoch: int) -> tuple[int, int] | None:
        """(k, m) chosen from the smoothed MAPE, or None during warm-up."""
        if epoch < self.warmup_epochs:
            return None
        for threshold, ratio in zip(self.thresholds, self.ratios):
            if self._recent_mape <= threshold:
                return ratio
        return self.ratios[-1]

    def phase_for(self, epoch: int, batch_index: int) -> Phase:
        """Phase of one batch under the currently-earned ratio."""
        ratio = self.ratio_for_epoch(epoch)
        if ratio is None:
            return Phase.WARMUP
        k, m = ratio
        position = batch_index % (k + m)
        return Phase.GP if position < k else Phase.BP

    def gp_fraction(self, epoch: int) -> float:
        """Fraction of batches run in Phase GP during ``epoch``."""
        ratio = self.ratio_for_epoch(epoch)
        if ratio is None:
            return 0.0
        k, m = ratio
        return k / (k + m)

    # -- state / config round-trip (checkpointing and schedule search) --

    def state_dict(self) -> dict:
        """The smoothed predictor quality the controller has earned so
        far — everything :meth:`observe_mape` mutates.  Restoring it
        reproduces ratio decisions bit-identically across a
        checkpoint/resume boundary."""
        return {"_recent_mape": self._recent_mape}

    def load_state_dict(self, state: dict) -> None:
        self._recent_mape = float(state["_recent_mape"])

    def to_config(self) -> dict:
        """JSON-safe constructor arguments (state excluded; see
        :meth:`state_dict`)."""
        return {
            "kind": "adaptive",
            "warmup_epochs": self.warmup_epochs,
            "thresholds": [float(t) for t in self.thresholds],
            "ratios": [list(ratio) for ratio in self.ratios],
        }

    @classmethod
    def from_config(cls, config: dict) -> "AdaptiveSchedule":
        kind = config.get("kind", "adaptive")
        if kind != "adaptive":
            raise ValueError(f"expected kind 'adaptive', got {kind!r}")
        return cls(
            warmup_epochs=int(config["warmup_epochs"]),
            thresholds=tuple(float(t) for t in config["thresholds"]),
            ratios=tuple(
                (int(ratio[0]), int(ratio[1])) for ratio in config["ratios"]
            ),
        )


SCHEDULE_KINDS = {
    "heuristic": HeuristicSchedule,
    "adaptive": AdaptiveSchedule,
}


def schedule_from_config(config: dict) -> HeuristicSchedule | AdaptiveSchedule:
    """Rebuild either schedule class from its :meth:`to_config` dict.

    The ``kind`` key dispatches; configs are JSON-safe, so schedules can
    travel through the tune subsystem's trial journal and come back as
    working objects.
    """
    try:
        kind = config["kind"]
    except KeyError:
        raise ValueError("schedule config needs a 'kind' key") from None
    try:
        cls = SCHEDULE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown schedule kind {kind!r}; choose from {sorted(SCHEDULE_KINDS)}"
        ) from None
    return cls.from_config(config)


def phase_counts(
    schedule: HeuristicSchedule | AdaptiveSchedule,
    num_epochs: int,
    batches_per_epoch: int,
) -> dict[Phase, int]:
    """Count batches per phase over a whole training run.

    Used by the accelerator and pipeline simulators to weight per-batch
    costs into end-to-end training costs.  Computed arithmetically per
    epoch (full-ImageNet runs have tens of thousands of batches per
    epoch, so per-batch iteration would dominate the simulators).
    """
    counts = {Phase.WARMUP: 0, Phase.BP: 0, Phase.GP: 0}
    for epoch in range(num_epochs):
        ratio = schedule.ratio_for_epoch(epoch)
        if ratio is None:
            counts[Phase.WARMUP] += batches_per_epoch
            continue
        k, m = ratio
        cycle = k + m
        full_cycles, remainder = divmod(batches_per_epoch, cycle)
        gp = full_cycles * k + min(remainder, k)
        counts[Phase.GP] += gp
        counts[Phase.BP] += batches_per_epoch - gp
    return counts
