"""Learning-rate schedulers.

The paper (§5.2) uses ``ReduceLROnPlateau`` (default parameters) for the
DNN model and ``MultiStepLR`` for the predictor; both are reproduced with
PyTorch-compatible semantics.
"""

from __future__ import annotations

from typing import Sequence

from .optimizers import Optimizer


class LRScheduler:
    """Base class; subclasses mutate ``optimizer.lr`` on ``step``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class MultiStepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(
        self,
        optimizer: Optimizer,
        milestones: Sequence[int],
        gamma: float = 0.1,
    ) -> None:
        super().__init__(optimizer)
        if sorted(milestones) != list(milestones):
            raise ValueError(f"milestones must be increasing, got {milestones}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.milestones = list(milestones)
        self.gamma = gamma

    def step(self) -> None:
        self.last_epoch += 1
        decays = sum(1 for m in self.milestones if m <= self.last_epoch)
        self.optimizer.lr = self.base_lr * (self.gamma**decays)


class ReduceLROnPlateau(LRScheduler):
    """Reduce LR when a monitored metric stops improving.

    Defaults match PyTorch: mode='min', factor=0.1, patience=10.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        mode: str = "min",
        factor: float = 0.1,
        patience: int = 10,
        threshold: float = 1e-4,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.mode = mode
        self.factor = factor
        self.patience = patience
        self.threshold = threshold
        self.min_lr = min_lr
        self.best: float | None = None
        self.num_bad_epochs = 0

    def _is_better(self, metric: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return metric < self.best * (1.0 - self.threshold)
        return metric > self.best * (1.0 + self.threshold)

    def step(self, metric: float) -> None:
        self.last_epoch += 1
        if self._is_better(metric):
            self.best = metric
            self.num_bad_epochs = 0
        else:
            self.num_bad_epochs += 1
        if self.num_bad_epochs > self.patience:
            new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
            self.optimizer.lr = new_lr
            self.num_bad_epochs = 0
