"""Optimizers with per-parameter stepping.

``step_param`` exists because ADA-GP Phase GP updates a layer's weights
immediately after that layer's forward pass finishes — long before the
rest of the network has run — so the optimizer must be able to step one
parameter at a time while keeping its state (momentum, Adam moments)
consistent with whole-model steps.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._param_ids = {id(p) for p in self.parameters}

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is not None:
                self.step_param(param)

    def step_param(self, param: Parameter) -> None:
        """Apply one update to a single parameter using ``param.grad``."""
        raise NotImplementedError

    def apply_gradient(self, param: Parameter, grad: np.ndarray) -> None:
        """Step ``param`` with an externally supplied gradient.

        This is the Phase-GP entry point: predicted gradients never touch
        ``param.grad`` (which may be mid-accumulation elsewhere).
        """
        saved = param.grad
        param.grad = np.asarray(grad, dtype=np.float32)
        try:
            self.step_param(param)
        finally:
            param.grad = saved

    def apply_gradients(
        self, updates: Sequence[tuple[Parameter, np.ndarray]]
    ) -> None:
        """Apply many externally supplied gradients in one call.

        The grouped entry point of the batched Phase-GP path: one call
        applies every predicted (parameter, gradient) pair collected
        over a forward pass, in order.
        """
        for param, grad in updates:
            self.apply_gradient(param, grad)

    def owns(self, param: Parameter) -> bool:
        return id(param) in self._param_ids


class SGD(Optimizer):
    """SGD with momentum and weight decay (paper: model optimizer)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step_param(self, param: Parameter) -> None:
        if param.grad is None:
            return
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[id(param)] = velocity
            update = velocity
        else:
            update = grad
        param.data -= self.lr * update
        param.bump_version()


class Adam(Optimizer):
    """Adam (paper: predictor optimizer, lr=1e-4)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def step_param(self, param: Parameter) -> None:
        if param.grad is None:
            return
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        beta1, beta2 = self.betas
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        t = self._t.get(key, 0) + 1
        m = beta1 * m + (1 - beta1) * grad
        v = beta2 * v + (1 - beta2) * grad**2
        self._m[key], self._v[key], self._t[key] = m, v, t
        m_hat = m / (1 - beta1**t)
        v_hat = v / (1 - beta2**t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        param.bump_version()
