"""Optimizers and learning-rate schedulers."""

from .optimizers import Adam, Optimizer, SGD
from .schedulers import LRScheduler, MultiStepLR, ReduceLROnPlateau

__all__ = [
    "Adam",
    "Optimizer",
    "SGD",
    "LRScheduler",
    "MultiStepLR",
    "ReduceLROnPlateau",
]
