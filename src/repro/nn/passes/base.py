"""Pass protocol, fold planning and version-keyed fold caching.

A *pass* recognizes a contiguous run of layers inside a ``Sequential``
that a forward-only (no-grad) execution can replace with one cheaper
op — conv+BN collapsing into a single rescaled convolution, an
activation applied in place on its producer's output, and so on.  The
:class:`PassPipeline` walks the layer list once per no-grad forward and
produces a *plan*: the original modules interleaved with
:class:`FoldedOp` replacements.  Matching is structural and cheap
(isinstance checks, mode/hook eligibility); the expensive part — folded
weights derived from layer parameters — is computed inside the fold's
``run`` and memoized in a :class:`FoldCache` keyed on the parameters'
mutation versions, so any optimizer step (a Phase-GP predicted update
included), ``load_state_dict`` or running-stats refresh invalidates it
on the next lookup.

Backends opt in by returning a pipeline from
:meth:`~repro.nn.backend.base.Backend.fold_pipeline`; the reference
NumPy backend returns ``None`` and keeps the exact layer-by-layer
semantics.  See DESIGN.md §10 for the walkthrough of adding a fold.
"""

from __future__ import annotations

import weakref
from typing import Callable, Optional, Sequence

import numpy as np

from ..module import NO_GRAD, Module


class FoldedOp:
    """A planned replacement for a contiguous run of layers.

    ``run(x)`` computes what the replaced layers would have produced in
    a forward-only pass; :meth:`mark_no_grad` then leaves each replaced
    layer exactly as a plain no-grad forward would have — backward
    caches set to the ``NO_GRAD`` sentinel (so ``backward`` raises the
    precise error) and any releasable cache value returned to its pool.
    """

    __slots__ = ("layers", "run", "pass_name")

    def __init__(
        self,
        layers: Sequence[Module],
        run: Callable[[np.ndarray], np.ndarray],
        pass_name: str,
    ) -> None:
        self.layers = tuple(layers)
        self.run = run
        self.pass_name = pass_name

    def mark_no_grad(self) -> None:
        for layer in self.layers:
            for key, value in layer.__dict__.items():
                if key.startswith("_cache") or key in layer._extra_cache_attrs:
                    release = getattr(value, "release", None)
                    if callable(release):
                        release()
                    layer.__dict__[key] = NO_GRAD

    def __repr__(self) -> str:
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"FoldedOp({self.pass_name}: {inner})"


class Pass:
    """One rewrite rule over the module graph.

    ``match(layers, index)`` inspects the run starting at ``index`` and
    returns a :class:`FoldedOp` covering however many layers it folds,
    or ``None``.  Matching must be side-effect free: the pipeline calls
    it on every no-grad forward (eligibility — train/eval mode, hooks —
    changes between batches), so anything expensive belongs in the
    returned op's ``run`` behind a :class:`FoldCache`.
    """

    name: str = "abstract"

    def match(self, layers: Sequence[Module], index: int) -> Optional[FoldedOp]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FoldCache:
    """Version-guarded cache of arrays derived from layer parameters.

    Entries key on the ``id()`` of the source layers and store the
    version tuple they were computed from plus weakrefs to the layers
    themselves: a lookup hits only when the versions still match *and*
    the weakrefs still point at those exact layers (``id()`` reuse after
    GC can never serve a stale fold).  Dead entries evict themselves via
    weakref callbacks, so the cache cannot grow with discarded models.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple] = {}
        # Hit/miss counters for repro.obs.bridge_fold_cache: a miss is
        # any lookup that recomputes (absent, version-stale, or id
        # reuse), which is exactly the fold work the caller pays for.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, layers: Sequence[Module], versions: tuple):
        key = tuple(id(layer) for layer in layers)
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry[0] == versions
            and all(ref() is layer for ref, layer in zip(entry[2], layers))
        ):
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store(self, layers: Sequence[Module], versions: tuple, value):
        key = tuple(id(layer) for layer in layers)
        evict = lambda _ref, key=key: self._entries.pop(key, None)  # noqa: E731
        self._entries[key] = (
            versions,
            value,
            tuple(weakref.ref(layer, evict) for layer in layers),
        )
        return value

    def clear(self) -> None:
        self._entries.clear()


class PassPipeline:
    """An ordered set of passes applied greedily, first match wins.

    ``plan`` walks the layer list left to right; at each position the
    passes are tried in registration order and the first match consumes
    its layers.  Pass order therefore encodes priority — register the
    longest/most-profitable patterns first so e.g. conv+BN+ReLU wins
    over BN+ReLU at the shared BatchNorm position.
    """

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes = tuple(passes)

    def plan(self, layers: Sequence[Module]) -> Optional[list]:
        """Fold plan for ``layers``: modules interleaved with
        :class:`FoldedOp` entries, or ``None`` when nothing matched (the
        caller keeps its plain loop, paying zero overhead)."""
        plan: list = []
        folded = False
        index, count = 0, len(layers)
        while index < count:
            op = None
            for pipeline_pass in self.passes:
                op = pipeline_pass.match(layers, index)
                if op is not None:
                    break
            if op is not None:
                plan.append(op)
                index += len(op.layers)
                folded = True
            else:
                plan.append(layers[index])
                index += 1
        return plan if folded else None

    def clear_caches(self) -> None:
        """Drop every pass's precomputed fold arrays."""
        for pipeline_pass in self.passes:
            cache = getattr(pipeline_pass, "cache", None)
            if cache is not None:
                cache.clear()

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"PassPipeline([{names}])"
