"""The built-in fold passes: conv+BN(+ReLU), BN+ReLU, linear+activation.

Every pass follows the same eligibility rules the original one-off
conv+BN special case enforced:

* **no hooks** on any folded layer — a forward hook needs that layer's
  own output, which a fold never materializes;
* **running statistics only** for batch-norm folds — batch-stat
  normalization cannot be precomputed because the statistics depend on
  the output being folded away — so train-mode BN keeps the exact
  layer-by-layer path;
* **exact type matches** (``type(...) is``) — a subclass may override
  ``forward`` and silently lose its behaviour under a fold.

Folded ``run`` closures execute on :func:`current_backend`, so the same
plan runs on the fused BLAS backend and the native compiled backend
alike, and they re-validate input shapes with the same errors the
replaced layers would have raised.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..backend import current_backend
from ..layers.activations import ReLU, Sigmoid, Tanh
from ..layers.core import Conv2d, Linear
from ..layers.norm import BatchNorm1d, BatchNorm2d
from ..module import Module
from .. import functional as F
from .base import FoldCache, FoldedOp, Pass


def _hook_free(*layers: Module) -> bool:
    return all(layer.forward_hook is None for layer in layers)


class ConvBNReLUPass(Pass):
    """``Conv2d -> BatchNorm2d (-> ReLU)`` as one rescaled convolution.

    ``y = gamma * (conv(x) - mean) * inv_std + beta`` collapses into a
    single convolution with ``W' = W * s`` and
    ``b' = beta + s * (conv_bias - mean)`` where
    ``s = gamma / sqrt(running_var + eps)`` per output channel.  The
    folded weights are cached per (conv, bn) pair, keyed on the
    parameters' mutation versions plus the BN stats version.
    """

    name = "conv_bn_relu"

    def __init__(self) -> None:
        self.cache = FoldCache()

    @staticmethod
    def _versions(conv: Conv2d, bn: BatchNorm2d) -> tuple:
        return (
            conv.weight.version,
            conv.bias.version if conv.bias is not None else -1,
            bn.weight.version,
            bn.bias.version,
            bn.stats_version,
        )

    def _folded_params(self, conv: Conv2d, bn: BatchNorm2d):
        versions = self._versions(conv, bn)
        params = self.cache.lookup((conv, bn), versions)
        if params is None:
            scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
            weight = (
                conv.weight.data * scale[:, None, None, None]
            ).astype(np.float32)
            conv_bias = (
                conv.bias.data if conv.bias is not None else np.float32(0.0)
            )
            bias = (
                bn.bias.data + scale * (conv_bias - bn.running_mean)
            ).astype(np.float32)
            params = self.cache.store((conv, bn), versions, (weight, bias))
        return params

    def match(self, layers: Sequence[Module], index: int) -> Optional[FoldedOp]:
        if index + 1 >= len(layers):
            return None
        conv, bn = layers[index], layers[index + 1]
        if type(conv) is not Conv2d or type(bn) is not BatchNorm2d:
            return None
        if bn.training or bn.num_features != conv.out_channels:
            return None
        if not _hook_free(conv, bn):
            return None
        matched = [conv, bn]
        relu = (
            index + 2 < len(layers)
            and type(layers[index + 2]) is ReLU
            and layers[index + 2].forward_hook is None
        )
        if relu:
            matched.append(layers[index + 2])

        def run(x: np.ndarray, conv=conv, bn=bn, relu=relu) -> np.ndarray:
            if x.ndim != 4 or x.shape[1] != conv.in_channels:
                raise ValueError(
                    f"Conv2d expected NCHW input with {conv.in_channels} "
                    f"channels, got shape {x.shape}"
                )
            weight, bias = self._folded_params(conv, bn)
            out, ctx = current_backend().conv2d_forward(
                x, weight, bias, conv.stride, conv.padding
            )
            ctx.release()
            if relu:
                np.maximum(out, 0.0, out=out)
            return out

        return FoldedOp(matched, run, self.name)


class BNReLUPass(Pass):
    """Eval-mode ``BatchNorm -> ReLU`` as one in-place affine + clamp.

    With running statistics the norm is a fixed per-channel affine
    ``x * s + t`` (``s = gamma * inv_std``, ``t = beta - mean * s``), so
    the pair runs as one multiply, one add and an in-place ``maximum``
    instead of materializing ``x_hat`` and an intermediate output.
    Matches both 2-D (NCHW) and 1-D (NC) batch norm.
    """

    name = "bn_relu"

    def __init__(self) -> None:
        self.cache = FoldCache()

    def _affine(self, bn):
        versions = (bn.weight.version, bn.bias.version, bn.stats_version)
        params = self.cache.lookup((bn,), versions)
        if params is None:
            inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
            scale = (bn.weight.data * inv_std).astype(np.float32)
            shift = (bn.bias.data - bn.running_mean * scale).astype(np.float32)
            params = self.cache.store((bn,), versions, (scale, shift))
        return params

    def match(self, layers: Sequence[Module], index: int) -> Optional[FoldedOp]:
        if index + 1 >= len(layers):
            return None
        bn, act = layers[index], layers[index + 1]
        if type(bn) not in (BatchNorm2d, BatchNorm1d) or type(act) is not ReLU:
            return None
        if bn.training or not _hook_free(bn, act):
            return None
        ndim = 4 if type(bn) is BatchNorm2d else 2

        def run(x: np.ndarray, bn=bn, ndim=ndim) -> np.ndarray:
            if x.ndim != ndim or x.shape[1] != bn.num_features:
                raise ValueError(
                    f"{type(bn).__name__} expected {ndim}-D input with "
                    f"{bn.num_features} channels, got {x.shape}"
                )
            scale, shift = self._affine(bn)
            if ndim == 4:
                scale = scale[None, :, None, None]
                shift = shift[None, :, None, None]
            out = x * scale
            out += shift
            np.maximum(out, 0.0, out=out)
            return out

        return FoldedOp((bn, act), run, self.name)


class LinearActivationPass(Pass):
    """``Linear -> ReLU/Tanh/Sigmoid`` with the activation applied in
    place on the GEMM output.

    Nothing to precompute (the weights are read live at run time, so
    there is no staleness to invalidate); the fold saves the module
    dispatch and, for ReLU/Tanh, the activation's output allocation.
    """

    name = "linear_activation"

    cache = None

    _APPLY = {
        ReLU: lambda out: np.maximum(out, 0.0, out=out),
        Tanh: lambda out: np.tanh(out, out=out),
        # Sigmoid routes through the numerically-stable functional
        # (which allocates); exactness beats saving one buffer here.
        Sigmoid: lambda out: F.sigmoid(out),
    }

    def match(self, layers: Sequence[Module], index: int) -> Optional[FoldedOp]:
        if index + 1 >= len(layers):
            return None
        linear, act = layers[index], layers[index + 1]
        apply_act = self._APPLY.get(type(act))
        if type(linear) is not Linear or apply_act is None:
            return None
        if not _hook_free(linear, act):
            return None

        def run(x: np.ndarray, linear=linear, apply_act=apply_act) -> np.ndarray:
            if x.shape[-1] != linear.in_features:
                raise ValueError(
                    f"Linear expected last dim {linear.in_features}, "
                    f"got {x.shape}"
                )
            out = current_backend().linear_forward(
                x,
                linear.weight.data,
                linear.bias.data if linear.bias is not None else None,
            )
            return apply_act(out)

        return FoldedOp((linear, act), run, self.name)
