"""`repro.nn.passes` — graph-rewrite passes for forward-only execution.

The pipeline generalizes what used to be a single hard-coded conv+BN
fold inside the fused backend: a :class:`~.base.Pass` recognizes a
pattern over a ``Sequential``'s layer list, a
:class:`~.base.PassPipeline` plans the rewrites, and ``Sequential``
executes the plan on no-grad forwards for any backend whose
``fold_pipeline()`` opts in (DESIGN.md §10).  New folds are new passes,
not special cases.
"""

from typing import Optional

from .base import FoldCache, FoldedOp, Pass, PassPipeline
from .folds import BNReLUPass, ConvBNReLUPass, LinearActivationPass

_DEFAULT: Optional[PassPipeline] = None


def default_pipeline() -> PassPipeline:
    """The process-wide pipeline the built-in fast backends consume.

    A lazy singleton so its fold caches are shared across backends —
    the folded arrays depend only on layer parameters, never on the
    executing substrate.  Longest pattern first: conv+BN+ReLU must win
    over BN+ReLU at the shared BatchNorm position.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PassPipeline(
            (ConvBNReLUPass(), BNReLUPass(), LinearActivationPass())
        )
    return _DEFAULT


__all__ = [
    "BNReLUPass",
    "ConvBNReLUPass",
    "FoldCache",
    "FoldedOp",
    "LinearActivationPass",
    "Pass",
    "PassPipeline",
    "default_pipeline",
]
