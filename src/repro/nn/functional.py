"""Stateless array operations used by :mod:`repro.nn` layers.

Everything operates on ``float32`` NumPy arrays in NCHW layout.  The
convolution primitives use an im2col formulation so the heavy lifting is
a single GEMM, which also mirrors how the accelerator model in
:mod:`repro.accel` costs a convolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def pad2d(x: np.ndarray, padding: int, fill_value: float = 0.0) -> np.ndarray:
    """Pad the two trailing spatial dims of an NCHW tensor.

    ``fill_value`` defaults to zero (convolution semantics); max-pooling
    pads with ``-inf`` so padded positions can never win the max.
    """
    if padding == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
        constant_values=fill_value,
    )


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    fill_value: float = 0.0,
    out: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, int, int]:
    """Unfold an NCHW tensor into convolution columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(batch, channels * kernel * kernel, out_h * out_w)``.  Padded
    positions hold ``fill_value``.  ``out``, if given, receives the
    columns in place (a backend workspace buffer of exactly that shape)
    and is returned as ``cols``.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    xp = pad2d(x, padding, fill_value)
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kernel, kernel), (2, 3))
    # windows: (batch, channels, H', W', kernel, kernel) -> strided sampling.
    windows = windows[:, :, ::stride, ::stride, :, :]
    src = windows.transpose(0, 1, 4, 5, 2, 3)
    cols_shape = (batch, channels * kernel * kernel, out_h * out_w)
    if out is None:
        return np.ascontiguousarray(src).reshape(cols_shape), out_h, out_w
    if out.shape != cols_shape or out.dtype != x.dtype:
        raise ValueError(
            f"im2col out buffer has shape {out.shape}/{out.dtype}, "
            f"need {cols_shape}/{x.dtype}"
        )
    np.copyto(out.reshape(batch, channels, kernel, kernel, out_h, out_w), src)
    return out, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold convolution columns back into an NCHW tensor (adjoint of im2col)."""
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    reshaped = cols.reshape(batch, channels, kernel, kernel, out_h, out_w)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += reshaped[:, :, ky, kx]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, slope: float = 0.1) -> np.ndarray:
    return np.where(x > 0.0, x, slope * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as a ``(len(labels), num_classes)`` float32
    one-hot matrix.

    Labels must be a non-empty integer vector; trailing singleton dims
    (``(N, 1)`` column vectors) are flattened, any other multi-dim shape
    raises — indexing ``labels.shape[0]`` on e.g. a ``(4, 3)`` array
    would silently produce 4 garbage rows.
    """
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("one_hot received an empty label array")
    if labels.ndim != 1:
        if all(dim == 1 for dim in labels.shape[1:]):
            labels = labels.reshape(-1)  # (N, 1)-style column vectors
        else:
            raise ValueError(
                f"one_hot expects a 1-D label vector, got shape {labels.shape}"
            )
    if not np.issubdtype(labels.dtype, np.integer):
        raise ValueError(
            f"one_hot expects integer labels, got dtype {labels.dtype}"
        )
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(
            f"labels must lie in [0, {num_classes}); "
            f"got range [{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def adaptive_pool_splits(in_size: int, out_size: int) -> list[tuple[int, int]]:
    """Start/end indices of adaptive pooling windows (PyTorch-compatible)."""
    if out_size <= 0:
        raise ValueError("adaptive pool output size must be positive")
    splits = []
    for i in range(out_size):
        start = (i * in_size) // out_size
        end = -(-((i + 1) * in_size) // out_size)  # ceil division
        splits.append((start, end))
    return splits


def _splits_tile(starts: np.ndarray, ends: np.ndarray, size: int) -> bool:
    """True when adaptive windows exactly tile the axis (no overlap)."""
    return (
        starts[0] == 0
        and ends[-1] == size
        and bool(np.all(ends[:-1] == starts[1:]))
    )


def _window_sums(x: np.ndarray, splits: list[tuple[int, int]], axis: int) -> np.ndarray:
    """Per-window sums along ``axis`` for adaptive pooling windows.

    Tiling windows reduce in one :func:`np.add.reduceat`; overlapping
    windows (``in_size % out_size != 0`` can overlap by construction)
    fall back to cumulative-sum differences.
    """
    starts = np.array([s for s, _ in splits])
    ends = np.array([e for _, e in splits])
    if _splits_tile(starts, ends, x.shape[axis]):
        return np.add.reduceat(x, starts, axis=axis)
    csum = np.cumsum(x, axis=axis)
    zero_shape = list(x.shape)
    zero_shape[axis] = 1
    csum = np.concatenate([np.zeros(zero_shape, dtype=csum.dtype), csum], axis=axis)
    return csum.take(ends, axis=axis) - csum.take(starts, axis=axis)


def adaptive_avg_pool2d(x: np.ndarray, out_hw: tuple[int, int]) -> np.ndarray:
    """Average-pool an NCHW tensor to an exact output spatial size."""
    out_h, out_w = out_hw
    batch, channels, height, width = x.shape
    if (height, width) == (out_h, out_w):
        return x.copy()
    rows = adaptive_pool_splits(height, out_h)
    cols = adaptive_pool_splits(width, out_w)
    sums = _window_sums(_window_sums(x, rows, axis=2), cols, axis=3)
    areas = np.outer(
        [r1 - r0 for r0, r1 in rows], [c1 - c0 for c0, c1 in cols]
    ).astype(x.dtype)
    return sums / areas


def adaptive_avg_pool2d_backward(
    grad_out: np.ndarray, input_shape: tuple[int, int, int, int]
) -> np.ndarray:
    """Backward of :func:`adaptive_avg_pool2d`: scatter each output
    cell's gradient uniformly over its window.  The separable scatter is
    ``expand(rows) . grad . expand(cols)`` — ``np.repeat`` when windows
    tile the axis, an indicator-matrix matmul when they overlap."""
    _, _, height, width = input_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    if (height, width) == (out_h, out_w):
        return grad_out.copy()
    rows = adaptive_pool_splits(height, out_h)
    cols = adaptive_pool_splits(width, out_w)
    row_lens = np.array([r1 - r0 for r0, r1 in rows])
    col_lens = np.array([c1 - c0 for c0, c1 in cols])
    areas = np.outer(row_lens, col_lens).astype(grad_out.dtype)
    scaled = grad_out / areas
    row_starts = np.array([r0 for r0, _ in rows])
    row_ends = np.array([r1 for _, r1 in rows])
    col_starts = np.array([c0 for c0, _ in cols])
    col_ends = np.array([c1 for _, c1 in cols])
    if _splits_tile(row_starts, row_ends, height):
        expanded = np.repeat(scaled, row_lens, axis=2)
    else:
        indicator = np.zeros((out_h, height), dtype=grad_out.dtype)
        for i, (r0, r1) in enumerate(rows):
            indicator[i, r0:r1] = 1.0
        # Reference substrate beneath dispatch: Backend.adaptive_avg_pool2d
        # defaults to these functions, so routing this matmul back through
        # current_backend() would recurse.
        expanded = np.matmul(  # repro: noqa[backend-dispatch]
            indicator.T, scaled.reshape(-1, out_h, out_w)
        ).reshape(grad_out.shape[0], grad_out.shape[1], height, out_w)
    if _splits_tile(col_starts, col_ends, width):
        return np.repeat(expanded, col_lens, axis=3)
    indicator = np.zeros((out_w, width), dtype=grad_out.dtype)
    for j, (c0, c1) in enumerate(cols):
        indicator[j, c0:c1] = 1.0
    # Same reference-substrate exemption as the row matmul above.
    return np.matmul(expanded, indicator)  # repro: noqa[backend-dispatch]
