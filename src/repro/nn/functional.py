"""Stateless array operations used by :mod:`repro.nn` layers.

Everything operates on ``float32`` NumPy arrays in NCHW layout.  The
convolution primitives use an im2col formulation so the heavy lifting is
a single GEMM, which also mirrors how the accelerator model in
:mod:`repro.accel` costs a convolution.
"""

from __future__ import annotations

import numpy as np


def pad2d(x: np.ndarray, padding: int, fill_value: float = 0.0) -> np.ndarray:
    """Pad the two trailing spatial dims of an NCHW tensor.

    ``fill_value`` defaults to zero (convolution semantics); max-pooling
    pads with ``-inf`` so padded positions can never win the max.
    """
    if padding == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
        constant_values=fill_value,
    )


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int, fill_value: float = 0.0
) -> tuple[np.ndarray, int, int]:
    """Unfold an NCHW tensor into convolution columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(batch, channels * kernel * kernel, out_h * out_w)``.  Padded
    positions hold ``fill_value``.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    xp = pad2d(x, padding, fill_value)
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kernel, kernel), (2, 3))
    # windows: (batch, channels, H', W', kernel, kernel) -> strided sampling.
    windows = windows[:, :, ::stride, ::stride, :, :]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels * kernel * kernel, out_h * out_w
    )
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold convolution columns back into an NCHW tensor (adjoint of im2col)."""
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    reshaped = cols.reshape(batch, channels, kernel, kernel, out_h, out_w)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += reshaped[:, :, ky, kx]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, slope: float = 0.1) -> np.ndarray:
    return np.where(x > 0.0, x, slope * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as a float32 one-hot matrix."""
    labels = np.asarray(labels)
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError(
            f"labels must lie in [0, {num_classes}); "
            f"got range [{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def adaptive_pool_splits(in_size: int, out_size: int) -> list[tuple[int, int]]:
    """Start/end indices of adaptive pooling windows (PyTorch-compatible)."""
    if out_size <= 0:
        raise ValueError("adaptive pool output size must be positive")
    splits = []
    for i in range(out_size):
        start = (i * in_size) // out_size
        end = -(-((i + 1) * in_size) // out_size)  # ceil division
        splits.append((start, end))
    return splits


def adaptive_avg_pool2d(x: np.ndarray, out_hw: tuple[int, int]) -> np.ndarray:
    """Average-pool an NCHW tensor to an exact output spatial size."""
    out_h, out_w = out_hw
    batch, channels, height, width = x.shape
    if (height, width) == (out_h, out_w):
        return x.copy()
    rows = adaptive_pool_splits(height, out_h)
    cols = adaptive_pool_splits(width, out_w)
    out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
    for i, (r0, r1) in enumerate(rows):
        for j, (c0, c1) in enumerate(cols):
            out[:, :, i, j] = x[:, :, r0:r1, c0:c1].mean(axis=(2, 3))
    return out


def adaptive_avg_pool2d_backward(
    grad_out: np.ndarray, input_shape: tuple[int, int, int, int]
) -> np.ndarray:
    """Backward of :func:`adaptive_avg_pool2d`."""
    _, _, height, width = input_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    if (height, width) == (out_h, out_w):
        return grad_out.copy()
    rows = adaptive_pool_splits(height, out_h)
    cols = adaptive_pool_splits(width, out_w)
    grad_in = np.zeros(input_shape, dtype=grad_out.dtype)
    for i, (r0, r1) in enumerate(rows):
        for j, (c0, c1) in enumerate(cols):
            area = (r1 - r0) * (c1 - c0)
            grad_in[:, :, r0:r1, c0:c1] += (
                grad_out[:, :, i : i + 1, j : j + 1] / area
            )
    return grad_in
