"""FusedBackend: reshaped-BLAS ops with an im2col workspace pool.

Same math as :class:`~.numpy_backend.NumpyBackend`, different substrate
idiom (per-op equivalence is pinned at ``atol <= 1e-5`` by
``tests/nn/test_backend.py``):

* GEMM-shaped contractions run as direct ``np.matmul`` on reshaped
  views instead of generic ``einsum(optimize=True)``, whose per-call
  contraction-path search is pure overhead at these sizes.
* The einsum that remains (the conv weight-gradient batched GEMM, where
  einsum's internal strategy beats a tensordot transpose-copy) reuses a
  cached contraction path keyed by (formula, shapes).
* im2col columns live in a :class:`WorkspacePool` — a free-list of
  scratch buffers keyed by shape — so a layer's forward -> backward pair
  and consecutive batches of the same shape recycle one allocation
  instead of malloc/free-ing the largest tensors of the step.  Buffers
  are checked out per forward (micro-batched pipelines hold several in
  flight) and returned by the matching backward, or by
  ``Module.clear_caches`` for forward-only (Phase-GP) batches.
* 1x1 stride-1 convolutions skip im2col entirely: the input *is* the
  column matrix as a reshape view and the forward is one batched matmul
  — the bottleneck-conv fast path that dominates ResNet-style models.
* Forward-only (``nn.no_grad``) streams run through the shared fold
  pipeline (:mod:`repro.nn.passes`): conv+BN(+ReLU) collapses into one
  GEMM with per-channel-rescaled weights, BN+ReLU into an in-place
  affine, linear+activation into a GEMM with the activation applied in
  place — version-cache invalidation and eligibility rules live with
  the passes (DESIGN.md §8, §10).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from .base import ConvCtx, register_backend
from .numpy_backend import NumpyBackend


class WorkspacePool:
    """Free-list of reusable scratch buffers keyed by (shape, dtype).

    ``acquire`` pops a parked buffer or allocates a fresh one; callers
    that are done with a buffer ``release`` it back.  Never-released
    buffers are simply garbage-collected when their owner drops them, so
    forward-only streams cannot leak; ``max_per_key`` bounds how many
    same-shaped buffers park at once (micro-batched pipelines check out
    several before any is returned).
    """

    def __init__(self, max_per_key: int = 8) -> None:
        self.max_per_key = max_per_key
        self._free: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        # Buffers currently checked out (acquired, not yet released).
        # Zero after a forward-only step means the stream ran
        # allocation-clean: every workspace went straight back.
        self.outstanding = 0

    def acquire(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        self.outstanding += 1
        key = (tuple(shape), np.dtype(dtype).str)
        parked = self._free.get(key)
        if parked:
            self.hits += 1
            return parked.pop()
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, array: np.ndarray) -> None:
        # Deliberately unclamped: a negative value is the visible
        # symptom of a release-without-acquire (or double-release)
        # accounting bug, which clamping at zero would absorb — and
        # would let a same-sized genuine leak read as balanced.
        self.outstanding -= 1
        key = (array.shape, array.dtype.str)
        parked = self._free.setdefault(key, [])
        if len(parked) < self.max_per_key and not any(
            buf is array for buf in parked
        ):
            parked.append(array)

    def parked_bytes(self) -> int:
        return sum(
            buf.nbytes for parked in self._free.values() for buf in parked
        )

    def parked_bytes_by_dtype(self) -> dict[str, int]:
        """Parked bytes per dtype string (e.g. ``{"<f4": 262144}``)."""
        by_dtype: dict[str, int] = {}
        for (_shape, dtype), parked in self._free.items():
            if parked:
                by_dtype[dtype] = by_dtype.get(dtype, 0) + sum(
                    buf.nbytes for buf in parked
                )
        return by_dtype

    def stats(self) -> dict:
        """Counters for benchmark records (peak-allocation proxy)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "outstanding": self.outstanding,
            "parked_bytes": self.parked_bytes(),
            "parked_bytes_by_dtype": self.parked_bytes_by_dtype(),
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._free.clear()


class FusedBackend(NumpyBackend):
    """BLAS-matmul ops, cached contraction paths, pooled im2col buffers."""

    name = "fused"

    def __init__(self, max_buffers_per_shape: int = 8) -> None:
        self.pool = WorkspacePool(max_per_key=max_buffers_per_shape)
        self._paths: dict[tuple, list] = {}

    # -- workspace management --------------------------------------------
    def acquire_cols(self, shape, dtype) -> Optional[np.ndarray]:
        return self.pool.acquire(shape, dtype)

    def release(self, array: np.ndarray) -> None:
        self.pool.release(array)

    def clear_workspaces(self) -> None:
        self.pool.clear()

    def reset_stats(self) -> None:
        self.pool.reset_stats()

    # -- no-grad graph rewriting -----------------------------------------
    def fold_pipeline(self):
        # Lazy import: the passes package imports the layer classes,
        # which import this package back at module load.
        from ..passes import default_pipeline

        return default_pipeline()

    # -- cached einsum contraction paths ---------------------------------
    def _einsum(self, formula: str, *operands: np.ndarray, dtype=None):
        key = (formula, tuple(op.shape for op in operands), dtype)
        path = self._paths.get(key)
        if path is None:
            path, _ = np.einsum_path(formula, *operands, optimize="optimal")
            self._paths[key] = path
        return np.einsum(formula, *operands, optimize=path, dtype=dtype)

    # -- unfold into pooled workspace ------------------------------------
    def unfold(self, x, kernel, stride, padding, fill_value=0.0):
        batch, channels, height, width = x.shape
        out_h = F.conv_output_size(height, kernel, stride, padding)
        out_w = F.conv_output_size(width, kernel, stride, padding)
        buf = self.pool.acquire(
            (batch, channels * kernel * kernel, out_h * out_w), x.dtype
        )
        return F.im2col(x, kernel, stride, padding, fill_value, out=buf)

    # -- convolution -----------------------------------------------------
    @staticmethod
    def _is_pointwise(kernel: int, stride: int, padding: int) -> bool:
        return kernel == 1 and stride == 1 and padding == 0

    def conv2d_forward(self, x, weight, bias, stride, padding):
        out_channels, _, kernel, _ = weight.shape
        batch = x.shape[0]
        if self._is_pointwise(kernel, stride, padding):
            # 1x1 fast path: the input already is the column matrix.
            out_h, out_w = x.shape[2], x.shape[3]
            cols = x.reshape(batch, x.shape[1], out_h * out_w)
            pooled = False
        else:
            cols, out_h, out_w = self.unfold(x, kernel, stride, padding)
            pooled = True
        w_flat = weight.reshape(out_channels, -1)
        out = np.matmul(w_flat, cols)
        if bias is not None:
            out += bias[None, :, None]
        ctx = ConvCtx(self, cols, x.shape, kernel, stride, padding, pooled=pooled)
        return out.reshape(batch, out_channels, out_h, out_w), ctx

    def conv2d_backward(self, grad_out, weight, ctx, with_bias=False):
        if ctx.released:
            # The cols workspace went back to the pool (first backward or
            # clear_caches) and may have been overwritten by another
            # layer; recomputing from it would be silent corruption.
            raise RuntimeError(
                "conv2d_backward called on a released context; run the "
                "layer's forward again before a second backward"
            )
        batch = grad_out.shape[0]
        out_channels = weight.shape[0]
        g_flat = grad_out.reshape(batch, out_channels, -1)
        # Batched-GEMM contraction over (batch, positions); the cached
        # path skips einsum's per-call contraction search (and measures
        # ~2x faster than the tensordot transpose-copy formulation).
        grad_w = self._einsum("bol,bkl->ok", g_flat, ctx.cols).reshape(
            weight.shape
        )
        grad_b = g_flat.sum(axis=(0, 2)) if with_bias else None
        w_flat = weight.reshape(out_channels, -1)
        if self._is_pointwise(ctx.kernel, ctx.stride, ctx.padding):
            grad_x = np.matmul(w_flat.T, g_flat).reshape(ctx.x_shape)
        else:
            grad_cols = np.matmul(
                w_flat.T, g_flat, out=self.pool.acquire(ctx.cols.shape, g_flat.dtype)
            )
            grad_x = self.fold(
                grad_cols, ctx.x_shape, ctx.kernel, ctx.stride, ctx.padding
            )
            self.pool.release(grad_cols)
            ctx.release()
        return grad_x, grad_w, grad_b

    # -- linear ----------------------------------------------------------
    def linear_forward(self, x, weight, bias):
        if x.ndim == 2:
            out = np.matmul(x, weight.T)
        else:
            x2 = x.reshape(-1, x.shape[-1])
            out = np.matmul(x2, weight.T).reshape(
                x.shape[:-1] + (weight.shape[0],)
            )
        if bias is not None:
            out += bias
        return out

    # -- attention contractions ------------------------------------------
    # Batched matmul on (swapaxes) views, the same reshaped-GEMM trick
    # as the convolutions: the head contraction is a stacked GEMM whose
    # 2-D slices keep one unit-stride axis, so BLAS takes them via its
    # lda/transpose flags without materializing copies.  This replaced
    # the cached-path einsums, which measured at ~0.98x of the reference
    # (einsum path search amortized but per-call dispatch overhead not);
    # direct matmul measures 1.1-3.8x across the four contractions on
    # both contiguous and split-heads-view operands.
    def attn_scores(self, q, k):
        return np.matmul(q, k.swapaxes(2, 3))

    def attn_context(self, p, v):
        return np.matmul(p, v)

    def attn_context_t(self, p, g):
        return np.matmul(p.swapaxes(2, 3), g)

    # Batch-norm moments deliberately inherit the reference two-pass
    # mean/var: measurement showed NumPy's pairwise-summation reductions
    # are already optimal here, and every single-pass sum-of-squares
    # variant either loses to it or breaks the atol<=1e-5 equivalence
    # pin through catastrophic cancellation on offset activations.


register_backend("fused", FusedBackend)
